"""Tests for configuration presets and validation (incl. Table 1)."""

import dataclasses

import pytest

from repro.config import (
    GB,
    HDD_PROFILE,
    SSD_PROFILE,
    ClusterConfig,
    StorageProfile,
    YarnConfig,
    default_cluster,
)


def test_table1_constants():
    """Table 1: replication 3, block size 134,217,728, FS preemption on."""
    yarn = YarnConfig()
    assert yarn.dfs_replication == 3
    assert yarn.dfs_block_size == 134_217_728
    assert yarn.fairscheduler_preemption is True
    assert yarn.preemption_timeout == 5.0


def test_testbed_shape():
    """§7.1: eight workers, 12 cores each, 1 core/2GB maps, 1 core/8GB reduces."""
    cfg = default_cluster()
    assert cfg.n_workers == 8
    assert cfg.cores_per_node == 12
    assert cfg.total_cores == 96
    assert cfg.yarn.map_task_vcores == 1
    assert cfg.yarn.map_task_memory == 2 * GB
    assert cfg.yarn.reduce_task_memory == 8 * GB


def test_storage_profiles():
    assert HDD_PROFILE.discipline == "fcfs"
    assert HDD_PROFILE.flush_threshold > 0          # Fig. 7 storms
    assert SSD_PROFILE.write_cost > HDD_PROFILE.write_cost  # flash asymmetry
    assert SSD_PROFILE.peak_rate > HDD_PROFILE.peak_rate


def test_rate_curve_monotone_saturating():
    r = [HDD_PROFILE.rate_at(n) for n in range(0, 20)]
    assert r[0] == 0.0
    assert all(b >= a for a, b in zip(r[1:], r[2:]))
    assert r[-1] <= HDD_PROFILE.peak_rate


def test_profile_validation():
    with pytest.raises(ValueError):
        StorageProfile(name="x", peak_rate=0.0, n_half=0.0)
    with pytest.raises(ValueError):
        StorageProfile(name="x", peak_rate=1.0, n_half=-1.0)
    with pytest.raises(ValueError):
        StorageProfile(name="x", peak_rate=1.0, n_half=0.0, read_cost=0.0)
    with pytest.raises(ValueError):
        StorageProfile(name="x", peak_rate=1.0, n_half=0.0, flush_factor=0.0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=0)
    with pytest.raises(ValueError):
        ClusterConfig(scale=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(scale=2.0)
    with pytest.raises(ValueError):
        ClusterConfig(block_scale=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(io_chunk=0)


def test_scaled_floors_at_one_chunk():
    cfg = default_cluster(scale=1 / 1024)
    assert cfg.scaled(1) == cfg.io_chunk
    assert cfg.scaled(1024 * GB) == 1 * GB


def test_sim_block_size():
    cfg = default_cluster()
    assert cfg.sim_block_size == int(134_217_728 * cfg.block_scale)
    tiny = dataclasses.replace(cfg, block_scale=1e-6)
    assert tiny.sim_block_size == cfg.io_chunk  # floored


def test_with_storage_swaps_profile():
    cfg = default_cluster().with_storage(SSD_PROFILE)
    assert cfg.storage is SSD_PROFILE
    assert cfg.n_workers == 8
