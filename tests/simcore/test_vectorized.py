"""DeviceBank vs the event-driven StorageDevice, request by request.

The vectorized bank claims to reproduce the device model's closed-loop
behavior — B(n) curve, FCFS/PS virtual time, flush storms, drain tail —
in closed form.  These tests drive the *actual* engine device with the
same closed-loop workload and compare completion times one-to-one.
"""

import itertools

import pytest

np = pytest.importorskip("numpy")

from dataclasses import replace

from repro.config import HDD_PROFILE, MB, SSD_PROFILE, StorageProfile
from repro.simcore import Simulator
from repro.simcore.vectorized import DeviceBank
from repro.storage.device import StorageDevice


def drive_engine(profile, n_requests, workers, nbytes, is_write, rate_factor=1.0):
    """Closed-loop engine run: request k submitted when k-workers completes."""
    sim = Simulator()
    dev = StorageDevice(sim, profile)
    if rate_factor != 1.0:
        dev.set_rate_factor(rate_factor)
    submit = [0.0] * n_requests
    comp = [0.0] * n_requests
    counter = itertools.count()

    def worker():
        while True:
            k = next(counter)
            if k >= n_requests:
                return
            submit[k] = sim.now
            ev = dev.submit("write" if is_write[k] else "read", nbytes)
            yield ev
            comp[k] = sim.now

    procs = [sim.process(worker(), name=f"w{i}") for i in range(workers)]
    sim.run(until=sim.all_of(procs))
    return np.asarray(submit), np.asarray(comp)


def assert_matches_engine(profile, n_requests, workers, nbytes, is_write,
                          rate_factor=1.0):
    submit, comp = drive_engine(
        profile, n_requests, workers, nbytes, is_write, rate_factor
    )
    bank = DeviceBank(profile, n_devices=1, rate_factor=rate_factor)
    res = bank.run_closed_loop(
        n_requests, nbytes, is_write=is_write, workers=workers
    )
    np.testing.assert_allclose(res.submit_times[0], submit, rtol=1e-9, atol=1e-6)
    np.testing.assert_allclose(res.completion_times[0], comp, rtol=1e-9, atol=1e-6)


WRITE_HALF = lambda K, W: [(k // W) % 2 == 0 for k in range(K)]  # noqa: E731


class TestFcfsEquivalence:
    def test_reads_only_no_storms(self):
        assert_matches_engine(
            SSD_PROFILE, 96, 8, 1 * MB, [False] * 96
        )

    def test_mixed_ops_write_cost(self):
        # SSD write asymmetry: write work = 3x read work.
        assert_matches_engine(SSD_PROFILE, 96, 8, 1 * MB, WRITE_HALF(96, 8))

    def test_flush_storms(self):
        # Shrunk threshold so a few hundred requests cross it repeatedly.
        prof = replace(HDD_PROFILE, flush_threshold=24 * MB)
        is_write = WRITE_HALF(320, 8)
        assert_matches_engine(prof, 320, 8, 1 * MB, is_write)
        bank = DeviceBank(prof, n_devices=1)
        res = bank.run_closed_loop(320, 1 * MB, is_write=is_write, workers=8)
        assert res.storms > 0

    def test_all_writes_back_to_back_storms(self):
        prof = replace(HDD_PROFILE, flush_threshold=16 * MB, flush_duration=2.0)
        assert_matches_engine(prof, 200, 4, 1 * MB, [True] * 200)

    def test_drain_tail_uses_bn_curve(self):
        # K barely above W: almost the whole run is the shrinking tail.
        assert_matches_engine(HDD_PROFILE, 12, 8, 4 * MB, [False] * 12)

    def test_fewer_requests_than_workers(self):
        assert_matches_engine(HDD_PROFILE, 5, 8, 4 * MB, [False] * 5)

    def test_single_worker(self):
        assert_matches_engine(HDD_PROFILE, 40, 1, 4 * MB, WRITE_HALF(40, 1))

    def test_fail_slow_rate_factor(self):
        assert_matches_engine(
            HDD_PROFILE, 64, 8, 4 * MB, [False] * 64, rate_factor=0.35
        )

    def test_rate_factor_vector_batches_degraded_fleet(self):
        prof = SSD_PROFILE
        factors = [1.0, 0.5, 0.25]
        bank = DeviceBank(prof, n_devices=3, rate_factor=factors)
        res = bank.run_closed_loop(96, 1 * MB, workers=8)
        for row, f in enumerate(factors):
            _, comp = drive_engine(prof, 96, 8, 1 * MB, [False] * 96, f)
            np.testing.assert_allclose(
                res.completion_times[row], comp, rtol=1e-9, atol=1e-6
            )

    def test_many_devices_share_one_solve(self):
        bank = DeviceBank(HDD_PROFILE, n_devices=64)
        res = bank.run_closed_loop(160, 4 * MB, workers=8)
        assert res.completion_times.shape == (64, 160)
        # Identical devices, identical workload: rows are identical.
        assert np.all(res.completion_times == res.completion_times[0])
        assert res.total_requests == 64 * 160


class TestPsEquivalence:
    def test_uniform_reads(self):
        prof = replace(SSD_PROFILE, discipline="ps", request_overhead=0.0)
        assert_matches_engine(prof, 96, 8, 1 * MB, [False] * 96)

    def test_uniform_writes_with_storms(self):
        prof = replace(
            HDD_PROFILE,
            discipline="ps",
            flush_threshold=24 * MB,
            request_overhead=0.0,
        )
        assert_matches_engine(prof, 160, 8, 1 * MB, [True] * 160)

    def test_mixed_ops_equal_cost_allowed(self):
        # read_cost == write_cost: works are uniform even with mixed ops.
        prof = replace(HDD_PROFILE, discipline="ps", flush_threshold=40 * MB)
        assert_matches_engine(prof, 160, 8, 1 * MB, WRITE_HALF(160, 8))

    def test_unequal_work_rejected(self):
        prof = replace(SSD_PROFILE, discipline="ps")  # write_cost = 3
        bank = DeviceBank(prof, n_devices=1)
        with pytest.raises(ValueError, match="uniform"):
            bank.run_closed_loop(
                96, 1 * MB, is_write=WRITE_HALF(96, 8), workers=8
            )

    def test_indivisible_rejected(self):
        prof = replace(SSD_PROFILE, discipline="ps")
        bank = DeviceBank(prof, n_devices=1)
        with pytest.raises(ValueError, match="divisible"):
            bank.run_closed_loop(97, 1 * MB, workers=8)


class TestValidation:
    def test_write_larger_than_threshold_rejected(self):
        prof = replace(HDD_PROFILE, flush_threshold=2 * MB)
        bank = DeviceBank(prof, n_devices=1)
        with pytest.raises(ValueError, match="flush_threshold"):
            bank.run_closed_loop(
                16, 4 * MB, is_write=[True] * 16, workers=4
            )

    def test_bad_rate_factor(self):
        with pytest.raises(ValueError, match="rate factor"):
            DeviceBank(HDD_PROFILE, n_devices=2, rate_factor=[1.0, 0.0])

    def test_result_accessors(self):
        bank = DeviceBank(SSD_PROFILE, n_devices=2)
        res = bank.run_closed_loop(24, 1 * MB, workers=8)
        assert res.n_devices == 2
        assert res.n_requests == 24
        assert res.workers == 8
        assert res.makespan.shape == (2,)
        assert np.all(res.latencies >= 0)
