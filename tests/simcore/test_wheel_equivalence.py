"""Property test: the event wheel is observationally a binary heap.

Random schedule/pop/withdraw sequences are applied to an
:class:`EventWheel` and the reference :class:`HeapEventQueue` in
lockstep; every pop must return the identical ``(when, seq, event)``
entry — including same-timestamp tie-breaks, which is the determinism
invariant the figure goldens rest on.  A second layer runs a real
simulation (processes, interrupts, device I/O) on both queues and
compares the observable trace.
"""

import random

import pytest

from repro.config import HDD_PROFILE, MB
from repro.simcore import (
    EventWheel,
    HeapEventQueue,
    Interrupt,
    Simulator,
)
from repro.simcore.wheel import WITHDRAWN
from repro.storage.device import StorageDevice


class _Ev:
    """Minimal stand-in for an engine Event: state + callbacks slots."""

    __slots__ = ("_state", "callbacks", "ident")

    def __init__(self, ident):
        self._state = 1  # triggered
        self.callbacks = []
        self.ident = ident

    def __repr__(self):
        return f"_Ev({self.ident})"


def _random_drive(queue_factory, seed, n_ops):
    """Apply one seeded op sequence; return the observable pop trace."""
    rng = random.Random(seed)
    q = queue_factory()
    trace = []
    now = 0.0
    live = []  # (ev, when) still expected in the queue
    ident = 0
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.55:
            # Schedule: never in the past; coarse quantization forces
            # plenty of exact timestamp collisions (tie-break coverage).
            when = now + rng.choice((0.0, 0.0625, 0.25, 1.0, 7.75)) * rng.randint(0, 8)
            ev = _Ev(ident)
            ident += 1
            q.push(when, ev)
            live.append(ev)
        elif r < 0.8:
            limited = rng.random() < 0.3
            entry = q.pop(now + 2.0) if limited else q.pop()
            if entry is not None:
                when, seq, ev = entry
                assert when >= now
                now = when
                ev._state = 2  # processed
                live.remove(ev)
                trace.append((when, seq, ev.ident))
            else:
                trace.append(("empty-pop", limited))
        elif r < 0.9 and live:
            victim = live.pop(rng.randrange(len(live)))
            q.withdraw(victim)
            trace.append(("withdraw", victim.ident))
        else:
            trace.append(("peek", q.peek(), len(q)))
    # Drain completely: residual order must match too.
    while True:
        entry = q.pop()
        if entry is None:
            break
        when, seq, ev = entry
        ev._state = 2
        trace.append((when, seq, ev.ident))
    trace.append(("end", len(q), q.tombstones))
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_wheel_matches_heap_pop_for_pop(seed):
    n_ops = 400 if seed % 3 else 1500
    heap_trace = _random_drive(HeapEventQueue, seed, n_ops)
    wheel_trace = _random_drive(EventWheel, seed, n_ops)
    assert wheel_trace == heap_trace


@pytest.mark.parametrize("width", [0.03125, 0.25, 16.0])
def test_wheel_matches_heap_across_widths(width):
    heap_trace = _random_drive(HeapEventQueue, 99, 1200)
    wheel_trace = _random_drive(lambda: EventWheel(width=width), 99, 1200)
    assert wheel_trace == heap_trace


def test_compaction_triggers_and_preserves_order():
    q = EventWheel()
    ref = HeapEventQueue()
    evs, refs = [], []
    for k in range(600):
        when = float(k % 7)
        e1, e2 = _Ev(k), _Ev(k)
        q.push(when, e1)
        ref.push(when, e2)
        evs.append(e1)
        refs.append(e2)
    for k in range(400):  # withdraw 2/3 -> tombstones outnumber live
        q.withdraw(evs[k])
        ref.withdraw(refs[k])
    assert q.tombstones_compacted > 0
    out_q, out_ref = [], []
    while True:
        a, b = q.pop(), ref.pop()
        assert (a is None) == (b is None)
        if a is None:
            break
        out_q.append((a[0], a[1], a[2].ident))
        out_ref.append((b[0], b[1], b[2].ident))
        a[2]._state = b[2]._state = 2
    assert out_q == out_ref
    assert len(out_q) == 200


def _scripted_simulation(queue):
    """A deliberately messy model: sleeps, interrupts, device I/O, and
    abandoned timeouts, all racing on shared timestamps."""
    sim = Simulator(queue=queue)
    dev = StorageDevice(sim, HDD_PROFILE, name="d0")
    trace = []

    def sleeper(name, delay):
        try:
            yield sim.timeout(delay)
            trace.append((sim.now, name, "woke"))
        except Interrupt as itr:
            trace.append((sim.now, name, f"interrupted:{itr.cause}"))

    def io_worker(name, n):
        for i in range(n):
            done = yield dev.submit("write" if i % 3 == 0 else "read", 2 * MB)
            trace.append((sim.now, name, round(done.latency, 9)))

    def meddler(targets):
        yield sim.timeout(1.0)
        for i, t in enumerate(targets):
            if t.is_alive and i % 2 == 0:
                t.interrupt(cause=f"m{i}")
                yield sim.timeout(0.25)

    sleepers = [sim.process(sleeper(f"s{i}", 0.5 + 0.75 * i), name=f"s{i}")
                for i in range(8)]
    workers = [sim.process(io_worker(f"w{i}", 6), name=f"w{i}")
               for i in range(4)]
    sim.process(meddler(sleepers), name="meddler")
    sim.run(until=30.0)
    trace.append((sim.now, "queue", len(queue)))
    return trace


def test_full_simulation_identical_on_both_queues():
    wheel_trace = _scripted_simulation(EventWheel())
    heap_trace = _scripted_simulation(HeapEventQueue())
    assert wheel_trace == heap_trace


def test_simulator_accepts_heap_queue():
    sim = Simulator(queue=HeapEventQueue())
    out = []
    def p():
        yield sim.timeout(1.5)
        out.append(sim.now)
    sim.process(p())
    sim.run()
    assert out == [1.5]
    assert sim.tombstones_compacted == 0


def test_withdrawn_state_is_terminal():
    q = EventWheel()
    ev = _Ev(0)
    q.push(3.0, ev)
    q.withdraw(ev)
    assert ev._state == WITHDRAWN
    assert ev.callbacks is None
    assert q.pop() is None
    assert len(q) == 0
