"""Unit tests for Resource / Store / Gate."""

import pytest

from repro.simcore import Gate, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def worker(tag, hold):
        yield res.acquire()
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    for tag in range(4):
        sim.process(worker(tag, 10.0))
    sim.run()
    times = dict(grants)
    assert times[0] == 0.0 and times[1] == 0.0
    assert times[2] == 10.0 and times[3] == 10.0


def test_resource_fifo_head_of_line():
    """A large request at the head blocks later small ones (YARN-style)."""
    sim = Simulator()
    res = Resource(sim, capacity=4)
    order = []

    def big():
        yield res.acquire(3)
        order.append(("big", sim.now))
        res.release(3)

    def small():
        yield res.acquire(1)
        order.append(("small", sim.now))
        res.release(1)

    def hogger():
        yield res.acquire(4)
        yield sim.timeout(5.0)
        res.release(4)

    sim.process(hogger())
    sim.run(until=0.5)
    sim.process(big())
    sim.process(small())
    sim.run()
    assert order[0][0] == "big"
    assert order[0][1] == 5.0


def test_resource_over_release_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_acquire_more_than_capacity_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.acquire(3)


def test_resource_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_cancel_pending_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()  # takes the unit
    ev = res.acquire()  # queued
    assert res.cancel(ev) is True
    assert res.cancel(ev) is False  # already removed


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=5)
    res.acquire(2)
    sim.run()
    assert res.available == 3
    res.release(2)
    assert res.available == 5


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return item

    store.put("x")
    assert sim.run(until=sim.process(consumer())) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return sim.now, item

    def producer():
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(producer())
    assert sim.run(until=sim.process(consumer())) == (4.0, "late")


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for item in "abc":
        store.put(item)
    sim.process(consumer())
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_try_get_nonblocking():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert len(store) == 0


def test_gate_broadcasts_to_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woken = []

    def waiter(tag):
        value = yield gate.wait()
        woken.append((tag, value, sim.now))

    for tag in range(3):
        sim.process(waiter(tag))

    def opener():
        yield sim.timeout(2.0)
        gate.open("go")

    sim.process(opener())
    sim.run()
    assert woken == [(0, "go", 2.0), (1, "go", 2.0), (2, "go", 2.0)]


def test_gate_reusable_after_open():
    sim = Simulator()
    gate = Gate(sim)
    hits = []

    def waiter():
        yield gate.wait()
        hits.append(sim.now)
        yield gate.wait()
        hits.append(sim.now)

    sim.process(waiter())

    def opener():
        yield sim.timeout(1.0)
        gate.open()
        yield sim.timeout(1.0)
        gate.open()

    sim.process(opener())
    sim.run()
    assert hits == [1.0, 2.0]


def test_gate_open_returns_waiter_count():
    sim = Simulator()
    gate = Gate(sim)
    gate.wait()
    gate.wait()
    assert gate.open() == 2
    assert gate.open() == 0
