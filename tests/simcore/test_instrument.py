"""Unit tests for instrumentation primitives."""

import pytest

from repro.simcore import Counter, RateMeter, TimeSeries
from repro.simcore.instrument import percentile_of


def test_timeseries_records_and_iterates():
    ts = TimeSeries("t")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2


def test_timeseries_rejects_time_going_backwards():
    ts = TimeSeries("t")
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_value_at_step_semantics():
    ts = TimeSeries("t")
    ts.record(0.0, 10.0)
    ts.record(10.0, 20.0)
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(9.999) == 10.0
    assert ts.value_at(10.0) == 20.0
    assert ts.value_at(100.0) == 20.0


def test_timeseries_value_at_before_first_sample():
    ts = TimeSeries("t")
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.value_at(4.0)


def test_timeseries_window_mean():
    ts = TimeSeries("t")
    for t, v in [(0, 1), (1, 3), (2, 5), (3, 100)]:
        ts.record(float(t), float(v))
    assert ts.window_mean(0.0, 3.0) == pytest.approx(3.0)
    assert ts.window_mean(10.0, 20.0) == 0.0


def test_timeseries_mean_empty_is_zero():
    assert TimeSeries("t").mean() == 0.0


def test_counter_accumulates_and_rejects_negative():
    c = Counter("c")
    c.add(3)
    c.add(4)
    assert c.total == 7
    with pytest.raises(ValueError):
        c.add(-1)


def test_ratemeter_bucketed_rates():
    m = RateMeter("m")
    m.add(0.5, 100.0)
    m.add(1.5, 200.0)
    m.add(1.9, 100.0)
    series = m.rate_series(bucket=1.0, t_end=3.0)
    assert series.values == [100.0, 300.0, 0.0]
    assert series.times == [0.0, 1.0, 2.0]


def test_ratemeter_window_total_and_mean_rate():
    m = RateMeter("m")
    m.add(1.0, 10.0)
    m.add(2.0, 20.0)
    m.add(3.0, 30.0)
    assert m.window_total(1.0, 3.0) == 30.0
    assert m.mean_rate(t_end=6.0) == pytest.approx(10.0)


def test_ratemeter_rejects_negative_and_backwards():
    m = RateMeter("m")
    m.add(1.0, 10.0)
    with pytest.raises(ValueError):
        m.add(0.5, 10.0)
    with pytest.raises(ValueError):
        m.add(2.0, -1.0)


def test_ratemeter_empty_rates():
    m = RateMeter("m")
    assert m.mean_rate() == 0.0
    assert len(m.rate_series(1.0, t_end=2.0)) == 2


def test_percentile_of():
    assert percentile_of([1, 2, 3, 4, 5], 50) == 3
    with pytest.raises(ValueError):
        percentile_of([], 50)
