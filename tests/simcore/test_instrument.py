"""Unit tests for instrumentation primitives."""

import numpy as np
import pytest

from repro.simcore import Counter, RateMeter, TimeSeries
from repro.simcore.instrument import percentile_of


def test_timeseries_records_and_iterates():
    ts = TimeSeries("t")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2


def test_timeseries_rejects_time_going_backwards():
    ts = TimeSeries("t")
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 2.0)


def test_timeseries_value_at_step_semantics():
    ts = TimeSeries("t")
    ts.record(0.0, 10.0)
    ts.record(10.0, 20.0)
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(9.999) == 10.0
    assert ts.value_at(10.0) == 20.0
    assert ts.value_at(100.0) == 20.0


def test_timeseries_value_at_before_first_sample():
    ts = TimeSeries("t")
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.value_at(4.0)


def test_timeseries_window_mean():
    ts = TimeSeries("t")
    for t, v in [(0, 1), (1, 3), (2, 5), (3, 100)]:
        ts.record(float(t), float(v))
    assert ts.window_mean(0.0, 3.0) == pytest.approx(3.0)
    assert ts.window_mean(10.0, 20.0) == 0.0


def test_timeseries_mean_empty_is_zero():
    assert TimeSeries("t").mean() == 0.0


def test_counter_accumulates_and_rejects_negative():
    c = Counter("c")
    c.add(3)
    c.add(4)
    assert c.total == 7
    with pytest.raises(ValueError):
        c.add(-1)


def test_ratemeter_bucketed_rates():
    m = RateMeter("m")
    m.add(0.5, 100.0)
    m.add(1.5, 200.0)
    m.add(1.9, 100.0)
    series = m.rate_series(bucket=1.0, t_end=3.0)
    assert series.values == [100.0, 300.0, 0.0]
    assert series.times == [0.0, 1.0, 2.0]


def test_ratemeter_window_total_and_mean_rate():
    m = RateMeter("m")
    m.add(1.0, 10.0)
    m.add(2.0, 20.0)
    m.add(3.0, 30.0)
    assert m.window_total(1.0, 3.0) == 30.0
    assert m.mean_rate(t_end=6.0) == pytest.approx(10.0)


def test_ratemeter_rejects_negative_and_backwards():
    m = RateMeter("m")
    m.add(1.0, 10.0)
    with pytest.raises(ValueError):
        m.add(0.5, 10.0)
    with pytest.raises(ValueError):
        m.add(2.0, -1.0)


def test_ratemeter_empty_rates():
    m = RateMeter("m")
    assert m.mean_rate() == 0.0
    assert len(m.rate_series(1.0, t_end=2.0)) == 2


def test_percentile_of():
    assert percentile_of([1, 2, 3, 4, 5], 50) == 3
    with pytest.raises(ValueError):
        percentile_of([], 50)


# -------------------------------------------------- edge & property tests
def test_timeseries_value_at_empty_raises():
    with pytest.raises(ValueError, match="empty series"):
        TimeSeries("t").value_at(0.0)


def test_timeseries_window_mean_half_open_boundaries():
    ts = TimeSeries("t")
    for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]:
        ts.record(t, v)
    # [t0, t1): the sample exactly at t1 is excluded, at t0 included.
    assert ts.window_mean(0.0, 2.0) == pytest.approx(3.0)
    assert ts.window_mean(1.0, 1.0) == 0.0  # empty window
    assert ts.window_mean(2.0, 5.0) == pytest.approx(6.0)


def test_timeseries_allows_equal_timestamps():
    ts = TimeSeries("t")
    ts.record(1.0, 1.0)
    ts.record(1.0, 2.0)  # same instant: allowed, last value wins on lookup
    assert ts.value_at(1.0) == 2.0


def test_ratemeter_window_total_half_open():
    m = RateMeter("m")
    for t, a in [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]:
        m.add(t, a)
    assert m.window_total(0.0, 2.0) == 3.0  # excludes the sample at t1
    assert m.window_total(2.0, 10.0) == 4.0  # includes the sample at t0
    assert m.window_total(3.0, 2.0) == 0.0  # inverted window is empty


def test_ratemeter_rejects_nonpositive_bucket():
    with pytest.raises(ValueError, match="bucket"):
        RateMeter("m").rate_series(bucket=0.0, t_end=1.0)


def test_ratemeter_rate_series_empty_no_t_end():
    series = RateMeter("m").rate_series(bucket=1.0)
    assert len(series) == 0


def test_ratemeter_events_past_t_end_clamp_to_last_bucket():
    m = RateMeter("m")
    m.add(0.5, 10.0)
    m.add(9.0, 30.0)  # beyond t_end: folded into the final bucket
    series = m.rate_series(bucket=1.0, t_end=3.0)
    assert series.times == [0.0, 1.0, 2.0]
    assert series.values == [10.0, 0.0, 30.0]


def _rate_series_loop(meter, bucket, t_end=None):
    """The pre-vectorization reference implementation, verbatim."""
    out = TimeSeries(f"rate:{meter.name}")
    if not meter.times and t_end is None:
        return out
    end = t_end if t_end is not None else meter.times[-1] + bucket
    n_buckets = max(1, int(np.ceil(end / bucket)))
    sums = [0.0] * n_buckets
    for t, a in zip(meter.times, meter.amounts):
        idx = min(int(t / bucket), n_buckets - 1)
        sums[idx] += a
    for i in range(n_buckets):
        out.record(i * bucket, sums[i] / bucket)
    return out


@pytest.mark.parametrize("bucket,t_end", [
    (1.0, None), (0.25, None), (0.7, 10.0), (3.0, 2.0), (1.0, 0.5),
])
def test_rate_series_matches_sequential_loop(bucket, t_end):
    rng = np.random.default_rng(20160601)
    m = RateMeter("m")
    t = 0.0
    for _ in range(500):
        t += float(rng.exponential(0.05))
        m.add(t, float(rng.uniform(0.0, 64.0)))
    got = m.rate_series(bucket, t_end=t_end)
    want = _rate_series_loop(m, bucket, t_end=t_end)
    # Bit-identical, not approximately equal: np.add.at accumulates
    # unbuffered in index order, exactly like the loop it replaced.
    assert got.times == want.times
    assert got.values == want.values
