"""Unit tests for seeded RNG streams."""

from repro.simcore import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_reproducible_across_registries():
    a = RngRegistry(42).stream("placement").random(5)
    b = RngRegistry(42).stream("placement").random(5)
    assert (a == b).all()


def test_different_names_differ():
    reg = RngRegistry(42)
    a = reg.stream("x").random(5)
    b = reg.stream("y").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(5)
    b = RngRegistry(2).stream("x").random(5)
    assert not (a == b).all()


def test_creation_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("first")
    a = r1.stream("second").random(3)
    r2 = RngRegistry(7)
    b = r2.stream("second").random(3)
    assert (a == b).all()


def test_fork_is_deterministic():
    a = RngRegistry(9).fork("sub").stream("s").random(3)
    b = RngRegistry(9).fork("sub").stream("s").random(3)
    assert (a == b).all()
