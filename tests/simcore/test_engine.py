"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import Event, Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == 5.0
    assert sim.now == 5.0


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run(until=sim.process(proc())) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3, "c"))
    sim.process(waiter(1, "a"))
    sim.process(waiter(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_tiebreak_at_same_time():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(10))


def test_process_join_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run(until=sim.process(parent())) == 43


def test_process_failure_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return str(exc)

    assert sim.run(until=sim.process(parent())) == "boom"


def test_unjoined_process_failure_raises_at_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled model bug")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled model bug"):
        sim.run()


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 123

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt(cause="preempted")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 3.0, "preempted")]


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(5.0)
        return sim.now

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt()

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    assert sim.run(until=target) == 7.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_stale_target_does_not_resume_after_interrupt():
    """After an interrupt, the original timeout firing must not re-wake."""
    sim = Simulator()
    wakes = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            wakes.append("timeout")
        except Interrupt:
            wakes.append("interrupt")
        yield sim.timeout(50.0)  # still waiting when the stale timeout fires
        wakes.append("second")

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt()

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert wakes == ["interrupt", "second"]
    assert sim.now == 51.0


def test_run_until_time_stops_clock_at_horizon():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_event_on_dry_queue_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_call_at_and_call_in():
    sim = Simulator()
    hits = []
    sim.call_at(4.0, lambda: hits.append(("at", sim.now)))
    sim.call_in(2.0, lambda: hits.append(("in", sim.now)))
    sim.run()
    assert hits == [("in", 2.0), ("at", 4.0)]


def test_call_at_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        sim.call_at(1.0, lambda: None)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b")]
        values = yield sim.all_of(events)
        return sim.now, sorted(values)

    assert sim.run(until=sim.process(proc())) == (3.0, ["a", "b"])


def test_any_of_returns_on_first():
    sim = Simulator()

    def proc():
        events = [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
        values = yield sim.any_of(events)
        return sim.now, values

    t, values = sim.run(until=sim.process(proc()))
    assert t == 1.0
    assert values == ["fast"]


def test_all_of_empty_is_immediate():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([])
        return values

    assert sim.run(until=sim.process(proc())) == []


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield sim.timeout(1.0)
        return 1

    def middle():
        v = yield sim.process(leaf())
        yield sim.timeout(1.0)
        return v + 1

    def root():
        v = yield sim.process(middle())
        return v + 1

    assert sim.run(until=sim.process(root())) == 3
    assert sim.now == 2.0


def test_immediately_returning_process():
    sim = Simulator()

    def instant():
        return 99
        yield  # pragma: no cover - makes it a generator

    assert sim.run(until=sim.process(instant())) == 99
    assert sim.now == 0.0
