"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    assert sim.run(until=p) == 5.0
    assert sim.now == 5.0


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run(until=sim.process(proc())) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3, "c"))
    sim.process(waiter(1, "a"))
    sim.process(waiter(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_tiebreak_at_same_time():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        sim.process(waiter(tag))
    sim.run()
    assert order == list(range(10))


def test_process_join_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run(until=sim.process(parent())) == 43


def test_process_failure_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return str(exc)

    assert sim.run(until=sim.process(parent())) == "boom"


def test_unjoined_process_failure_raises_at_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled model bug")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled model bug"):
        sim.run()


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 123

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt(cause="preempted")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 3.0, "preempted")]


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(5.0)
        return sim.now

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt()

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    assert sim.run(until=target) == 7.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupt_while_waiting_on_already_triggered_event():
    """Interrupting a process whose target has triggered (but not yet
    processed) must deliver the interrupt, and the stale event firing
    later must not wake the process a second time."""
    sim = Simulator()
    ev = sim.event()
    log = []

    def waiter():
        try:
            got = yield ev
            log.append(("value", got))
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))
        yield sim.timeout(5.0)
        log.append("resumed")

    def driver(target):
        yield sim.timeout(1.0)
        ev.succeed("payload")        # ev now TRIGGERED, on the queue
        target.interrupt(cause="cut")  # delivered before ev processes
        yield sim.timeout(0.0)

    target = sim.process(waiter())
    sim.process(driver(target))
    sim.run()
    assert log == [("interrupted", "cut"), "resumed"]
    assert sim.now == 6.0


def test_double_interrupt_in_same_timestep():
    """Two interrupts queued at the same time are both delivered, in
    order, through the `_interrupts` queue in `_resume`."""
    sim = Simulator()
    log = []

    def sleeper():
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
                log.append("timeout")
            except Interrupt as intr:
                log.append((intr.cause, sim.now))
        return "finished"

    def driver(target):
        yield sim.timeout(2.0)
        target.interrupt(cause="first")
        target.interrupt(cause="second")

    target = sim.process(sleeper())
    sim.process(driver(target))
    assert sim.run(until=target) == "finished"
    assert log == [("first", 2.0), ("second", 2.0)]


def test_interrupt_before_first_step_fails_process():
    """Interrupting a process that has not started yet throws into a
    just-created generator, which cannot catch: the process fails."""
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupt:  # pragma: no cover - unreachable: gen not started
            pass

    p = sim.process(sleeper())
    p.interrupt(cause="early")
    with pytest.raises(Interrupt):
        sim.run()


def test_stale_target_does_not_resume_after_interrupt():
    """After an interrupt, the original timeout firing must not re-wake."""
    sim = Simulator()
    wakes = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            wakes.append("timeout")
        except Interrupt:
            wakes.append("interrupt")
        yield sim.timeout(50.0)  # still waiting when the stale timeout fires
        wakes.append("second")

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt()

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert wakes == ["interrupt", "second"]
    assert sim.now == 51.0


def test_run_until_time_stops_clock_at_horizon():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_horizon_advances_clock_when_queue_drains():
    """A finite horizon must be reached even if the last event is earlier
    (SimPy semantics): the clock represents elapsed simulated time, not
    the last thing that happened."""
    sim = Simulator()

    def proc():
        yield sim.timeout(3.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_horizon_on_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_run_until_past_horizon_does_not_rewind_clock():
    sim = Simulator()
    sim.run(until=10.0)
    sim.run(until=4.0)
    assert sim.now == 10.0


def test_run_until_event_on_dry_queue_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_call_at_and_call_in():
    sim = Simulator()
    hits = []
    sim.call_at(4.0, lambda: hits.append(("at", sim.now)))
    sim.call_in(2.0, lambda: hits.append(("in", sim.now)))
    sim.run()
    assert hits == [("in", 2.0), ("at", 4.0)]


def test_call_at_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        sim.call_at(1.0, lambda: None)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc():
        events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b")]
        values = yield sim.all_of(events)
        return sim.now, sorted(values)

    assert sim.run(until=sim.process(proc())) == (3.0, ["a", "b"])


def test_any_of_returns_on_first():
    sim = Simulator()

    def proc():
        events = [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
        values = yield sim.any_of(events)
        return sim.now, values

    t, values = sim.run(until=sim.process(proc()))
    assert t == 1.0
    assert values == ["fast"]


def test_any_of_deregisters_from_pending_components():
    """After AnyOf triggers, the losing components must not keep the
    condition's callback alive (they may live for the whole sim)."""
    sim = Simulator()
    slow = sim.timeout(50.0, "slow")
    fast = sim.timeout(1.0, "fast")

    def proc():
        values = yield sim.any_of([slow, fast])
        return values

    p = sim.process(proc())
    sim.run(until=2.0)
    assert p.value == ["fast"]
    assert slow.callbacks == []  # dead lambda would linger here pre-fix


def test_any_of_late_triggering_component_is_harmless():
    sim = Simulator()
    slow = sim.timeout(50.0, "slow")
    fast = sim.timeout(1.0, "fast")

    def proc():
        values = yield sim.any_of([slow, fast])
        return values

    p = sim.process(proc())
    sim.run()  # runs past t=50: `slow` fires after the AnyOf settled
    assert sim.now == 50.0
    assert p.value == ["fast"]


def test_all_of_failure_deregisters_from_pending_components():
    sim = Simulator()
    slow = sim.timeout(50.0)
    failing = sim.event()

    def proc():
        try:
            yield sim.all_of([slow, failing])
        except ValueError as exc:
            return str(exc)

    p = sim.process(proc())
    failing.fail(ValueError("boom"))
    sim.run(until=p)
    assert p.value == "boom"
    assert slow.callbacks == []


def test_all_of_empty_is_immediate():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([])
        return values

    assert sim.run(until=sim.process(proc())) == []


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield sim.timeout(1.0)
        return 1

    def middle():
        v = yield sim.process(leaf())
        yield sim.timeout(1.0)
        return v + 1

    def root():
        v = yield sim.process(middle())
        return v + 1

    assert sim.run(until=sim.process(root())) == 3
    assert sim.now == 2.0


def test_immediately_returning_process():
    sim = Simulator()

    def instant():
        return 99
        yield  # pragma: no cover - makes it a generator

    assert sim.run(until=sim.process(instant())) == 99
    assert sim.now == 0.0


def test_orphaned_fault_failure_counted_not_raised():
    from repro.simcore import FaultError
    sim = Simulator()

    def collateral():
        yield sim.timeout(1.0)
        raise FaultError("in-flight I/O lost to a crash")

    sim.process(collateral())
    sim.run()  # must not raise: fault collateral is expected
    assert sim.orphaned_faults == 1


def test_orphaned_fault_interrupt_counted_not_raised():
    from repro.simcore import FaultError
    sim = Simulator()

    def victim():
        yield sim.timeout(10.0)

    p = sim.process(victim())
    sim.call_at(1.0, lambda: p.interrupt(FaultError("node crashed")))
    sim.run()
    assert sim.orphaned_faults == 1


def test_unjoined_failure_carries_process_name():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("model bug")

    sim.process(bad(), name="culprit")
    with pytest.raises(RuntimeError) as info:
        sim.run()
    assert info.value.sim_process == "culprit"
