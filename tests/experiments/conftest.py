import pytest


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path_factory, monkeypatch):
    """Keep the persistent layers (calibration + result store) out of
    ``~/.cache`` — the scenario CLI hits the result store by default."""
    root = tmp_path_factory.mktemp("repro-cache")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    yield root
