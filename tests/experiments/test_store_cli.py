"""The ``run store gc`` / ``run store stats`` CLI modes."""

import os

import pytest

from repro.execution import ResultStore
from repro.experiments.run import main


def _seed_fake_entries(n: int, size: int = 100) -> ResultStore:
    store = ResultStore.default()
    for i in range(n):
        path = store.path_for(f"hash-{i}")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("x" * size)
        os.utime(path, (1000 + i, 1000 + i))
    return store


def test_store_stats_reports_size(capsys):
    store = _seed_fake_entries(3, size=50)
    assert main(["store", "stats"]) == 0
    out = capsys.readouterr().out
    assert "3 entries, 150 bytes" in out
    assert str(store.root) in out


def test_store_gc_trims_to_budget(capsys):
    store = _seed_fake_entries(4)
    assert main(["store", "gc", "--max-entries", "2"]) == 0
    out = capsys.readouterr().out
    assert "evicted 2 entries (200 bytes)" in out
    assert "keeping 2 entries" in out
    # Oldest-first: hash-0 and hash-1 were the coldest.
    assert "run-hash-0.json" in out and "run-hash-1.json" in out
    assert sorted(store.keys()) == ["hash-2", "hash-3"]


def test_store_gc_dry_run_deletes_nothing(capsys):
    store = _seed_fake_entries(3)
    assert main(["store", "gc", "--max-bytes", "250", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "would evict 1 entries" in out
    assert len(list(store.keys())) == 3


def test_store_gc_requires_a_budget():
    with pytest.raises(SystemExit):
        main(["store", "gc"])


def test_store_rejects_unknown_submode():
    with pytest.raises(SystemExit):
        main(["store", "prune"])
