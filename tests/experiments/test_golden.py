"""Golden regression: figures must be bit-identical to the pre-scenario
outputs captured in ``tests/experiments/golden/`` (``--scale 256``).

These files were generated *before* figures.py was refactored onto the
declarative scenario layer, so they pin the refactor to byte equality:

    PYTHONPATH=src python -m repro.experiments.run fig6 fig10 faults \
        --scale 256 --out tests/experiments/golden

Regenerate them (same command) only when an intentional modelling
change alters the numbers.
"""

import pathlib

import pytest

from repro.config import default_cluster
from repro.experiments import figures
from repro.experiments.report import format_result, result_payload

GOLDEN = pathlib.Path(__file__).parent / "golden"

CASES = {
    "fig6": figures.fig6_isolation_hdd,
    "fig10": figures.fig10_multiframework,
    "faults": figures.faults_experiment,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_figure_matches_golden(name):
    config = default_cluster(scale=1.0 / 256)
    result = CASES[name](config)
    assert (result_payload(result) + "\n"
            == (GOLDEN / f"{name}.json").read_text()), (
        f"{name} JSON payload drifted from tests/experiments/golden/"
    )
    assert (format_result(result) + "\n"
            == (GOLDEN / f"{name}.txt").read_text())
