"""The ``run scenario`` CLI mode and its ``--sweep`` grids."""

import json
import pathlib

import pytest

from repro.experiments.run import main

EXAMPLES = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "scenarios"
)


def test_scenario_mode_runs_example(capsys, tmp_path):
    path = EXAMPLES / "fig6_isolation.json"
    assert main(["scenario", str(path), "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "== scenario fig6_isolation ==" in out
    assert "scenario_hash" in out and "metrics_hash" in out
    manifest = json.loads((tmp_path / "fig6_isolation.json").read_text())
    assert manifest["scenario_hash"] and manifest["metrics_hash"]
    assert manifest["rows"]


def test_scenario_sweep_expands_grid(capsys):
    path = EXAMPLES / "fig6_isolation.json"
    assert main(["scenario", str(path),
                 "--sweep", "workload.jobs.0.io_weight=8,32"]) == 0
    out = capsys.readouterr().out
    assert "fig6_isolation[workload.jobs.0.io_weight=8]" in out
    assert "fig6_isolation[workload.jobs.0.io_weight=32]" in out


def test_scenario_rerun_is_served_from_the_store(capsys):
    path = EXAMPLES / "fig6_isolation.json"
    assert main(["scenario", str(path)]) == 0
    first = capsys.readouterr().out
    assert "0 hit(s), 1 run(s)" in first
    assert main(["scenario", str(path)]) == 0
    second = capsys.readouterr().out
    assert "1 hit(s), 0 run(s)" in second
    # The cached rerun reports identical metrics.
    metrics = [ln for ln in first.splitlines() if "metrics_hash" in ln]
    assert metrics and metrics == [
        ln for ln in second.splitlines() if "metrics_hash" in ln
    ]


def test_scenario_no_store_flag_always_runs(capsys):
    path = EXAMPLES / "fig6_isolation.json"
    for _ in range(2):
        assert main(["scenario", str(path), "--no-store"]) == 0
        assert "result store" not in capsys.readouterr().out


def test_serve_mode_rejects_experiment_names():
    with pytest.raises(SystemExit):
        main(["serve", "fig6"])


def test_scenario_mode_needs_a_file():
    with pytest.raises(SystemExit):
        main(["scenario"])


def test_scenario_mode_rejects_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["scenario", str(tmp_path / "nope.json")])


def test_scenario_mode_rejects_bad_sweep():
    path = EXAMPLES / "fig6_isolation.json"
    with pytest.raises(SystemExit):
        main(["scenario", str(path), "--sweep", "notasweep"])


def test_sweep_outside_scenario_mode_errors():
    with pytest.raises(SystemExit):
        main(["fig6", "--sweep", "cluster.seed=1,2"])
