"""Fast smoke tests for the experiment functions at a reduced scale.

The full-shape assertions live in ``benchmarks/``; here we verify each
experiment runs end-to-end and produces the expected row/series schema,
at 1/256 scale so the whole module stays quick.
"""

import pytest

from repro.config import default_cluster
from repro.experiments import (
    fig2_io_profiles,
    fig3_contention,
    fig6_isolation_hdd,
    fig9_facebook,
    fig13_overhead,
    mixed_policy_ablation,
    tab3_loc,
)

TINY = default_cluster(scale=1 / 256)


def test_fig2_schema():
    r = fig2_io_profiles(TINY)
    assert {row["app"] for row in r.rows} == {"terasort", "wordcount"}
    for key in ("terasort:read", "terasort:write", "wordcount:read",
                "wordcount:write"):
        times, values = r.series[key]
        assert len(times) == len(values) > 0


def test_fig3_schema():
    r = fig3_contention(TINY)
    cases = {row["case"] for row in r.rows}
    assert cases == {"wc_alone", "wc+teravalidate", "wc+teragen", "wc+terasort"}
    assert r.find(case="wc_alone")["slowdown"] == 0.0


def test_fig6_schema():
    r = fig6_isolation_hdd(TINY)
    cases = [row["case"] for row in r.rows]
    assert cases[0] == "wc_alone"
    assert "sfq(d2)" in cases
    for row in r.rows[1:]:
        assert row["throughput_mbs"] > 0


def test_fig9_small_trace():
    r = fig9_facebook(TINY, n_jobs=6)
    assert {row["case"] for row in r.rows} == {"standalone", "interfered",
                                               "sfq(d2)"}
    for label in ("standalone", "interfered", "sfq(d2)"):
        xs, ys = r.series[label]
        assert len(xs) == 6
        assert ys[-1] == pytest.approx(1.0)
        assert xs == sorted(xs)


def test_fig13_schema():
    r = fig13_overhead(TINY)
    assert {row["app"] for row in r.rows} == {"wordcount", "teragen",
                                              "terasort"}
    for row in r.rows:
        assert row["native"] > 0 and row["ibis"] > 0


def test_mixed_policy_ablation_schema():
    r = mixed_policy_ablation(TINY)
    cases = [row["case"] for row in r.rows]
    assert cases == ["wc_alone", "native", "ibis-persistent",
                     "ibis-intermediate", "ibis-uniform"]
    # Each managed case records its NodePolicy in canonical JSON.
    from repro.core import NodePolicy
    for row in r.rows[1:]:
        policy = NodePolicy.from_json(row["policy"])
        assert policy.to_json() == row["policy"]
    # WC vs TG contention lives on the HDFS disk: managing PERSISTENT
    # alone must recover (at least) the isolation of uniform IBIS, and
    # managing only the intermediate paths must not help native at all.
    sd = {row["case"]: row["slowdown"] for row in r.rows}
    assert sd["ibis-persistent"] <= sd["ibis-uniform"] + 1e-9
    assert sd["ibis-uniform"] < sd["native"]
    assert sd["ibis-intermediate"] == pytest.approx(sd["native"])


def test_tab3_counts_real_files():
    r = tab3_loc()
    total = r.find(component="total")["loc"]
    assert total > 300
