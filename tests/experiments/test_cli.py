"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.run import EXPERIMENTS, main


def test_every_artifact_has_an_entry():
    assert set(EXPERIMENTS) == {
        "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "tab2", "tab3", "mixed", "faults",
    }


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "tab3" in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig2" in capsys.readouterr().out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_runs_tab3(capsys):
    assert main(["tab3"]) == 0
    out = capsys.readouterr().out
    assert "== tab3_loc ==" in out
    assert "regenerated" in out


def test_runs_fig13_at_tiny_scale(capsys):
    assert main(["fig13", "--scale", "512"]) == 0
    out = capsys.readouterr().out
    assert "== fig13_overhead ==" in out


def test_ssd_flag(capsys):
    assert main(["fig13", "--scale", "512", "--storage", "ssd"]) == 0
    assert "fig13_overhead" in capsys.readouterr().out
