"""Tests for the parallel fan-out subsystem and the calibration cache."""

import json
import pickle

import pytest

from repro.config import default_cluster
from repro.execution.pool import (
    RunSpec,
    active_jobs,
    execute,
    parallel_jobs,
    run_specs,
)
from repro.experiments import figures
from repro.experiments import harness
from repro.experiments.report import result_payload


def _square(x, offset=0):
    """Module-level on purpose: RunSpec functions are pickled by reference."""
    return x * x + offset


# ---------------------------------------------------------------- RunSpec
def test_runspec_pickle_roundtrip():
    spec = RunSpec.of(_square, 3, offset=1, label="sq")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert execute(clone) == 10


def test_runspec_kwargs_order_insensitive():
    a = RunSpec.of(_square, 1, offset=2)
    b = RunSpec(fn=_square, args=(1,), kwargs=(("offset", 2),), label="_square")
    assert a == b


def test_run_specs_serial_without_pool():
    assert active_jobs() == 1
    assert run_specs([RunSpec.of(_square, i) for i in range(5)]) == \
        [0, 1, 4, 9, 16]


def test_run_specs_parallel_matches_serial_in_order():
    specs = [RunSpec.of(_square, i, offset=i) for i in range(8)]
    serial = run_specs(specs)
    with parallel_jobs(2):
        assert active_jobs() == 2
        parallel = run_specs(specs)
    assert active_jobs() == 1
    assert parallel == serial


def test_parallel_jobs_nested_keeps_outer_pool():
    with parallel_jobs(2):
        with parallel_jobs(3):  # no-op: outer pool stays active
            assert active_jobs() == 2
    assert active_jobs() == 1


def test_experiments_parallel_is_a_deprecation_shim():
    """The old module keeps working but warns, and every symbol is the
    same object as its repro.execution.pool home."""
    import importlib
    import sys

    sys.modules.pop("repro.experiments.parallel", None)
    with pytest.warns(DeprecationWarning, match="repro.execution"):
        shim = importlib.import_module("repro.experiments.parallel")
    import repro.execution.pool as pool

    for name in ("RunSpec", "active_jobs", "default_jobs", "execute",
                 "parallel_jobs", "run_specs"):
        assert getattr(shim, name) is getattr(pool, name)


# ------------------------------------------------- figure-level determinism
def test_figure_parallel_output_is_byte_identical():
    """The acceptance property: a figure regenerated through the worker
    pool serializes to exactly the same bytes as a serial run."""
    config = default_cluster(scale=1.0 / 2048.0)
    serial = result_payload(figures.fig13_overhead(config))
    with parallel_jobs(2):
        parallel = result_payload(figures.fig13_overhead(config))
    assert parallel == serial


# ------------------------------------------------------- calibration cache
@pytest.fixture
def calib_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setenv("IBIS_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("IBIS_NO_CALIB_CACHE", raising=False)
    saved = dict(harness._CONTROLLERS)
    harness._CONTROLLERS.clear()
    yield tmp_path
    harness._CONTROLLERS.clear()
    harness._CONTROLLERS.update(saved)


def test_calibration_cache_writes_and_reads_disk(calib_env, monkeypatch):
    config = default_cluster(scale=1.0 / 2048.0)
    ctrl = harness.controller_for(config)
    cached = list(calib_env.glob("calib-*.json"))
    assert len(cached) == 1
    payload = json.loads(cached[0].read_text())
    assert payload["controller"]["ref_latency_read"] == ctrl.ref_latency_read

    # A fresh process (simulated by clearing the in-memory layer) must
    # load from disk instead of re-profiling.
    harness._CONTROLLERS.clear()

    def boom(*a, **k):  # pragma: no cover - would mean a cache miss
        raise AssertionError("recalibrated despite a warm disk cache")

    monkeypatch.setattr(harness, "calibrate_controller", boom)
    assert harness.controller_for(config) == ctrl


def test_calibration_cache_distinguishes_kwargs(calib_env):
    config = default_cluster(scale=1.0 / 2048.0)
    a = harness.controller_for(config)
    b = harness.controller_for(config, gain=55.0)
    assert b.gain == 55.0 and a.gain != 55.0
    assert len(list(calib_env.glob("calib-*.json"))) == 2


def test_calibration_cache_corrupt_entry_recalibrates(calib_env):
    config = default_cluster(scale=1.0 / 2048.0)
    ctrl = harness.controller_for(config)
    entry = next(calib_env.glob("calib-*.json"))
    entry.write_text("{not json")
    harness._CONTROLLERS.clear()
    assert harness.controller_for(config) == ctrl  # silently re-profiled


def test_calibration_cache_disabled_by_env(calib_env, monkeypatch):
    monkeypatch.setenv("IBIS_NO_CALIB_CACHE", "1")
    config = default_cluster(scale=1.0 / 2048.0)
    harness.controller_for(config)
    assert list(calib_env.glob("calib-*.json")) == []
