"""Tests for the experiment harness and report formatting."""

import pytest

from repro.config import default_cluster
from repro.experiments import ExperimentResult, controller_for, format_result
from repro.experiments.harness import total_throughput_mbs
from repro.experiments.report import format_rows


def test_result_rows_and_find():
    r = ExperimentResult("t")
    r.row(case="a", value=1)
    r.row(case="b", value=2)
    assert r.find(case="b")["value"] == 2
    with pytest.raises(KeyError):
        r.find(case="zzz")


def test_find_keyerror_lists_available_values():
    r = ExperimentResult("t")
    r.row(case="native", runtime=1.0)
    r.row(case="ibis", runtime=2.0)
    with pytest.raises(KeyError) as exc:
        r.find(case="ibs")
    message = str(exc.value)
    assert "native" in message and "ibis" in message
    assert "2 rows" in message


def test_find_keyerror_on_unknown_key_lists_row_keys():
    r = ExperimentResult("t")
    r.row(case="a", runtime=1.0)
    with pytest.raises(KeyError) as exc:
        r.find(speed=3)
    message = str(exc.value)
    assert "row keys" in message and "runtime" in message


def test_cache_dir_honours_repro_cache_dir(monkeypatch, tmp_path):
    from repro.experiments.harness import calibration_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "new"))
    monkeypatch.setenv("IBIS_CACHE_DIR", str(tmp_path / "old"))
    assert calibration_cache_dir() == tmp_path / "new"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert calibration_cache_dir() == tmp_path / "old"


def test_controller_cache_reuses_calibration():
    cfg = default_cluster()
    assert controller_for(cfg) is controller_for(cfg)
    other = controller_for(cfg, gain=99.0)
    assert other is not controller_for(cfg)
    assert other.gain == 99.0


def test_format_rows_aligns_mixed_columns():
    text = format_rows([{"a": 1, "b": 2.5}, {"a": 10, "c": None}])
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b", "c"]
    assert "10" in lines[3] if len(lines) > 3 else True
    assert format_rows([]) == "(no rows)"


def test_format_result_includes_series_and_notes():
    r = ExperimentResult("t")
    r.row(x=1)
    r.series["s"] = ([0.0, 1.0], [5.0, 7.0])
    r.notes.append("hello")
    text = format_result(r)
    assert "== t ==" in text
    assert "series s: 2 points" in text
    assert "note: hello" in text


def test_total_throughput_requires_positive_window():
    from repro import BigDataCluster, PolicySpec

    cl = BigDataCluster(default_cluster(), PolicySpec.native())
    with pytest.raises(ValueError):
        total_throughput_mbs(cl, 0.0)
