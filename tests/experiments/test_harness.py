"""Tests for the experiment harness and report formatting."""

import pytest

from repro.config import default_cluster
from repro.experiments import ExperimentResult, controller_for, format_result
from repro.experiments.harness import total_throughput_mbs
from repro.experiments.report import format_rows


def test_result_rows_and_find():
    r = ExperimentResult("t")
    r.row(case="a", value=1)
    r.row(case="b", value=2)
    assert r.find(case="b")["value"] == 2
    with pytest.raises(KeyError):
        r.find(case="zzz")


def test_controller_cache_reuses_calibration():
    cfg = default_cluster()
    assert controller_for(cfg) is controller_for(cfg)
    other = controller_for(cfg, gain=99.0)
    assert other is not controller_for(cfg)
    assert other.gain == 99.0


def test_format_rows_aligns_mixed_columns():
    text = format_rows([{"a": 1, "b": 2.5}, {"a": 10, "c": None}])
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b", "c"]
    assert "10" in lines[3] if len(lines) > 3 else True
    assert format_rows([]) == "(no rows)"


def test_format_result_includes_series_and_notes():
    r = ExperimentResult("t")
    r.row(x=1)
    r.series["s"] = ([0.0, 1.0], [5.0, 7.0])
    r.notes.append("hello")
    text = format_result(r)
    assert "== t ==" in text
    assert "series s: 2 points" in text
    assert "note: hello" in text


def test_total_throughput_requires_positive_window():
    from repro import BigDataCluster, PolicySpec

    cl = BigDataCluster(default_cluster(), PolicySpec.native())
    with pytest.raises(ValueError):
        total_throughput_mbs(cl, 0.0)
