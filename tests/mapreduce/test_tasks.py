"""Integration tests for map/reduce tasks and the AppMaster on a small
real cluster."""

import pytest

from repro.cluster import BigDataCluster
from repro.config import GB, MB, default_cluster
from repro.core import PolicySpec
from repro.mapreduce import JobSpec


def make_cluster(policy=None):
    return BigDataCluster(default_cluster(), policy or PolicySpec.native())


def test_map_only_reader_job():
    cl = make_cluster()
    cl.preload_input("/in/data", 8 * GB)  # scaled to 128 MB = 8 blocks
    job = cl.submit(JobSpec(name="scan", input_path="/in/data", n_reduces=0),
                    max_cores=96)
    cl.run()
    assert job.finish_time is not None
    assert job.n_maps_total == 8
    assert job.maps_completed == 8
    # All input bytes were read from the HDFS devices.
    total_read = sum(n.hdfs_device.read_meter.total for n in cl.nodes.values())
    assert total_read == 128 * MB


def test_generator_writer_job_replicates():
    cl = make_cluster()
    out = 64 * GB  # scaled: 1 GB
    job = cl.submit(JobSpec(name="gen", n_maps=4, n_reduces=0,
                            output_bytes=cl.config.scaled(out)), max_cores=96)
    cl.run()
    written = sum(n.hdfs_device.write_meter.total for n in cl.nodes.values())
    # 3-way replication writes every byte three times.
    expected = (cl.config.scaled(out) // 4) * 4 * 3
    assert written == pytest.approx(expected, rel=0.01)


def test_full_mapreduce_pipeline_volumes():
    cl = make_cluster()
    cl.preload_input("/in/data", 16 * GB)  # scaled 256 MB = 16 maps
    scaled = cl.config.scaled(16 * GB)
    spec = JobSpec(
        name="mr",
        input_path="/in/data",
        shuffle_bytes=scaled // 2,
        output_bytes=scaled // 4,
        n_reduces=4,
        map_spill_factor=1.0,
        reduce_merge_factor=1.0,
    )
    job = cl.submit(spec, max_cores=96)
    cl.run()
    assert job.reduces_completed == 4
    assert job.maps_done_time <= job.finish_time

    # Intermediate traffic: maps spill their output once; reducers spill
    # the fetched bytes once and merge-read them once.
    tmp_write = sum(n.tmp_device.write_meter.total for n in cl.nodes.values())
    tmp_read = sum(n.tmp_device.read_meter.total for n in cl.nodes.values())
    map_out_total = (spec.shuffle_bytes // 16) * 16
    fetched = 4 * ((spec.shuffle_bytes // 16) // 4) * 16
    assert tmp_write == pytest.approx(map_out_total + fetched, rel=0.05)
    assert tmp_read >= fetched * 0.9  # servlet reads + merge reads overlap counts

    # Final output replicated 3x on HDFS.
    hdfs_write = sum(n.hdfs_device.write_meter.total for n in cl.nodes.values())
    assert hdfs_write == pytest.approx((spec.output_bytes // 4) * 4 * 3, rel=0.05)


def test_reduce_phase_waits_for_all_maps():
    cl = make_cluster()
    cl.preload_input("/in/data", 8 * GB)
    scaled = cl.config.scaled(8 * GB)
    spec = JobSpec(name="mr", input_path="/in/data",
                   shuffle_bytes=scaled, output_bytes=1 * MB, n_reduces=2)
    job = cl.submit(spec, max_cores=96)
    cl.run()
    assert job.finish_time >= job.maps_done_time


def test_locality_preference_mostly_local_reads():
    """With even data spread and free cores everywhere, most map input
    should be read node-locally (no network)."""
    cl = make_cluster()
    cl.preload_input("/in/data", 64 * GB)  # 64 blocks over 8 nodes
    job = cl.submit(JobSpec(name="scan", input_path="/in/data", n_reduces=0),
                    max_cores=96)
    cl.run()
    total_input = cl.config.scaled(64 * GB)
    remote = cl.net.total_bytes
    assert remote < 0.4 * total_input


def test_cpu_cost_extends_runtime():
    cl1 = make_cluster()
    cl1.preload_input("/in/a", 8 * GB)
    fast = cl1.submit(JobSpec(name="fast", input_path="/in/a", n_reduces=0,
                              map_cpu_s_per_mb=0.0), max_cores=96)
    cl1.run()
    cl2 = make_cluster()
    cl2.preload_input("/in/a", 8 * GB)
    slow = cl2.submit(JobSpec(name="slow", input_path="/in/a", n_reduces=0,
                              map_cpu_s_per_mb=0.5), max_cores=96)
    cl2.run()
    assert slow.runtime > fast.runtime + 3.0


def test_containers_respect_max_cores():
    """A job capped at 12 cores runs its maps in waves."""
    cl = make_cluster()
    cl.preload_input("/in/data", 48 * GB)  # 48 maps
    job = cl.submit(JobSpec(name="scan", input_path="/in/data", n_reduces=0,
                            map_cpu_s_per_mb=0.05), max_cores=12)
    cl.run()
    # Peak concurrent cores never exceeded the cap.
    assert cl.rm.apps == {}  # unregistered after finish
    assert job.finish_time is not None


def test_two_jobs_share_cluster():
    cl = make_cluster()
    cl.preload_input("/in/a", 16 * GB)
    cl.preload_input("/in/b", 16 * GB)
    j1 = cl.submit(JobSpec(name="a", input_path="/in/a", n_reduces=0),
                   max_cores=48)
    j2 = cl.submit(JobSpec(name="b", input_path="/in/b", n_reduces=0),
                   max_cores=48)
    cl.run()
    assert j1.finish_time is not None and j2.finish_time is not None


def test_delayed_submission():
    cl = make_cluster()
    cl.preload_input("/in/a", 8 * GB)
    job = cl.submit(JobSpec(name="late", input_path="/in/a", n_reduces=0),
                    max_cores=96, delay=5.0)
    cl.run()
    assert job.submit_time == 5.0
    assert job.finish_time > 5.0
