"""Unit tests for JobSpec validation and Job state tracking."""

import pytest

from repro.config import MB
from repro.core import IOTag
from repro.mapreduce import Job, JobSpec
from repro.mapreduce.job import MapOutput
from repro.simcore import Simulator


def test_generator_job_requires_n_maps():
    with pytest.raises(ValueError):
        JobSpec(name="gen")  # no input_path and no n_maps


def test_map_only_cannot_shuffle():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=1, shuffle_bytes=10, n_reduces=0)


def test_negative_volumes_rejected():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=1, output_bytes=-1)
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=0)
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=1, n_reduces=-1)


def test_spill_factor_bounds():
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=2, shuffle_bytes=10, n_reduces=1,
                map_spill_factor=0.5)
    with pytest.raises(ValueError):
        JobSpec(name="x", n_maps=2, slowstart=1.5)


def test_valid_spec_roundtrip():
    spec = JobSpec(name="s", input_path="/in", shuffle_bytes=8 * MB,
                   output_bytes=4 * MB, n_reduces=2)
    assert spec.n_maps is None
    assert spec.slowstart == 0.05


def test_job_state_machine():
    sim = Simulator()
    spec = JobSpec(name="j", n_maps=2, n_reduces=0)
    job = Job(sim, spec, "app1", IOTag("app1"))
    job.n_maps_total = 2
    assert not job.map_phase_done
    with pytest.raises(RuntimeError):
        _ = job.runtime

    job.note_map_output(MapOutput(0, "n0", 0))
    assert not job.map_phase_done
    job.note_map_output(MapOutput(1, "n1", 0))
    assert job.map_phase_done
    assert job.maps_done_time == sim.now

    job.finish()
    assert job.runtime == 0.0
    assert job.done.triggered


def test_map_output_gate_broadcasts():
    sim = Simulator()
    spec = JobSpec(name="j", n_maps=1, n_reduces=0)
    job = Job(sim, spec, "app1", IOTag("app1"))
    job.n_maps_total = 1
    woke = []

    def reducer_like():
        yield job.map_output_gate.wait()
        woke.append(sim.now)

    sim.process(reducer_like())
    sim.call_in(3.0, lambda: job.note_map_output(MapOutput(0, "n0", 5)))
    sim.run()
    assert woke == [3.0]
