"""Unit tests for the Resource Manager's container allocation."""

import pytest

from repro.config import GB
from repro.simcore import SimulationError, Simulator
from repro.yarnsim import ContainerGrant, ResourceManager

NODES = ["n0", "n1"]


def make_rm(sim=None, cores=4, mem=8 * GB):
    sim = sim or Simulator()
    return sim, ResourceManager(sim, NODES, cores_per_node=cores,
                                memory_per_node=mem)


def test_register_and_duplicate():
    sim, rm = make_rm()
    rm.register_app("a")
    with pytest.raises(ValueError):
        rm.register_app("a")


def test_grant_immediately_when_free():
    sim, rm = make_rm()
    rm.register_app("a")
    ev = rm.request_container("a", 1, 1 * GB)
    sim.run()
    grant = ev.value
    assert isinstance(grant, ContainerGrant)
    assert grant.node_id in NODES
    assert rm.apps["a"].cores_used == 1


def test_preferred_node_honoured():
    sim, rm = make_rm()
    rm.register_app("a")
    ev = rm.request_container("a", 1, 1 * GB, preferred=["n1"])
    sim.run()
    assert ev.value.node_id == "n1"


def test_fallback_when_preferred_full():
    sim, rm = make_rm()
    rm.register_app("a")
    for _ in range(4):  # fill n1
        rm.request_container("a", 1, 1 * GB, preferred=["n1"])
    ev = rm.request_container("a", 1, 1 * GB, preferred=["n1"])
    sim.run()
    assert ev.value.node_id == "n0"


def test_memory_constrains_allocation():
    sim, rm = make_rm(cores=8, mem=8 * GB)
    rm.register_app("a")
    grants = [rm.request_container("a", 1, 4 * GB) for _ in range(5)]
    sim.run()
    # 2 nodes x 8 GB / 4 GB = 4 containers fit; the fifth waits.
    done = [g for g in grants if g.processed]
    assert len(done) == 4
    rm.release_container("a", done[0].value)
    sim.run()
    assert all(g.processed for g in grants)


def test_max_cores_cap():
    sim, rm = make_rm()
    rm.register_app("a", max_cores=2)
    grants = [rm.request_container("a", 1, 1 * GB) for _ in range(3)]
    sim.run()
    assert sum(g.processed for g in grants) == 2


def test_most_starved_app_first():
    """With one free core at a time, grants alternate toward the
    weighted-fair split."""
    sim, rm = make_rm(cores=1, mem=8 * GB)  # 2 cores total
    a = rm.register_app("a", weight=1.0)
    b = rm.register_app("b", weight=1.0)
    for _ in range(10):
        rm.request_container("a", 1, 1 * GB)
        rm.request_container("b", 1, 1 * GB)
    sim.run()
    assert a.cores_used == 1 and b.cores_used == 1


def test_release_wakes_waiter():
    sim, rm = make_rm(cores=1)  # 2 nodes x 1 core
    rm.register_app("a")
    g1 = rm.request_container("a", 1, 1 * GB)
    g2 = rm.request_container("a", 1, 1 * GB)
    g3 = rm.request_container("a", 1, 1 * GB)
    sim.run()
    assert g1.processed and g2.processed and not g3.processed
    rm.release_container("a", g1.value)
    sim.run()
    assert g3.processed


def test_over_release_rejected():
    sim, rm = make_rm()
    rm.register_app("a")
    with pytest.raises(SimulationError):
        rm.release_container("a", ContainerGrant("n0", 1, 1 * GB))


def test_request_validation():
    sim, rm = make_rm(cores=4)
    rm.register_app("a")
    with pytest.raises(ValueError):
        rm.request_container("a", 0, 1 * GB)
    with pytest.raises(ValueError):
        rm.request_container("a", 5, 1 * GB)  # > cores per node
    with pytest.raises(ValueError):
        rm.request_container("a", 1, 100 * GB)


def test_unregister_with_cores_in_use_rejected():
    sim, rm = make_rm()
    rm.register_app("a")
    rm.request_container("a", 1, 1 * GB)
    sim.run()
    with pytest.raises(SimulationError):
        rm.unregister_app("a")


def test_unregister_drops_pending_requests():
    sim, rm = make_rm(cores=1, mem=8 * GB)  # 2 cores total
    rm.register_app("a")
    rm.register_app("b")
    b1 = rm.request_container("b", 1, 1 * GB)
    b2 = rm.request_container("b", 1, 1 * GB)
    sim.run()
    pending_a = rm.request_container("a", 1, 1 * GB)  # cluster full
    rm.unregister_app("a")  # drops the pending request with it
    rm.release_container("b", b1.value)
    g_b = rm.request_container("b", 1, 1 * GB)
    sim.run()
    assert g_b.processed          # the freed core went to b...
    assert not pending_a.processed  # ...not to a's dropped request
