"""Unit and property tests for weighted fair-share computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.yarnsim import fair_shares


def test_equal_weights_equal_shares():
    shares = fair_shares(96, {"a": 1.0, "b": 1.0})
    assert shares == {"a": 48.0, "b": 48.0}


def test_weighted_split():
    shares = fair_shares(96, {"a": 2.0, "b": 1.0})
    assert shares["a"] == pytest.approx(64.0)
    assert shares["b"] == pytest.approx(32.0)


def test_cap_redistributes():
    shares = fair_shares(96, {"a": 1.0, "b": 1.0}, caps={"a": 10})
    assert shares["a"] == 10.0
    assert shares["b"] == pytest.approx(86.0)


def test_demand_limits_share():
    shares = fair_shares(96, {"a": 1.0, "b": 1.0}, demands={"a": 20, "b": 1000})
    assert shares["a"] == 20.0
    assert shares["b"] == pytest.approx(76.0)


def test_zero_demand_app_gets_nothing():
    shares = fair_shares(96, {"a": 1.0, "b": 1.0}, demands={"a": 0})
    assert shares["a"] == 0.0
    assert shares["b"] == pytest.approx(96.0)


def test_total_demand_below_capacity():
    shares = fair_shares(96, {"a": 1.0, "b": 1.0}, demands={"a": 5, "b": 7})
    assert shares == {"a": 5.0, "b": 7.0}


def test_validation():
    with pytest.raises(ValueError):
        fair_shares(-1, {"a": 1.0})
    with pytest.raises(ValueError):
        fair_shares(10, {"a": 0.0})
    with pytest.raises(ValueError):
        fair_shares(10, {"a": 1.0}, caps={"a": -1})


def test_empty_weights_yield_empty():
    assert fair_shares(10, {}) == {}


@given(
    capacity=st.floats(min_value=1.0, max_value=1e4),
    weights=st.dictionaries(
        st.sampled_from(list("abcdef")),
        st.floats(min_value=0.1, max_value=100.0),
        min_size=1,
        max_size=6,
    ),
)
def test_property_shares_exhaust_capacity_without_caps(capacity, weights):
    shares = fair_shares(capacity, weights)
    assert sum(shares.values()) == pytest.approx(capacity, rel=1e-6)
    for app, w in weights.items():
        expected = capacity * w / sum(weights.values())
        assert shares[app] == pytest.approx(expected, rel=1e-6)


@given(
    weights=st.dictionaries(
        st.sampled_from(list("abcd")),
        st.floats(min_value=0.1, max_value=10.0),
        min_size=2,
        max_size=4,
    ),
    caps=st.dictionaries(
        st.sampled_from(list("abcd")),
        st.floats(min_value=0.0, max_value=50.0),
        max_size=4,
    ),
)
def test_property_caps_respected_and_capacity_not_exceeded(weights, caps):
    capacity = 100.0
    shares = fair_shares(capacity, weights, caps=caps)
    assert sum(shares.values()) <= capacity + 1e-6
    for app in weights:
        if app in caps:
            assert shares[app] <= caps[app] + 1e-6
        assert shares[app] >= 0.0
