"""ScenarioRunner: determinism, manifests, and the fan-out worker."""

import json

import pytest

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.scenario import (
    JobEntry,
    MeasurementSpec,
    PreloadSpec,
    RunManifest,
    Scenario,
    ScenarioRunner,
    WorkloadSpec,
    load_scenario,
    run_scenario,
    wc_teragen_isolation,
)


def _config():
    return default_cluster(scale=1.0 / 256)


def _isolation():
    return wc_teragen_isolation(
        _config(), PolicySpec.sfqd(depth=4), name="runner-test"
    )


def test_same_scenario_same_manifest():
    s = _isolation()
    a, b = run_scenario(s), run_scenario(s)
    assert a.metrics_hash() == b.metrics_hash()
    assert a.rows == b.rows
    assert a.summary == b.summary
    assert a.scenario_hash == b.scenario_hash == s.content_hash()


def test_serialised_scenario_reproduces_metrics():
    s = _isolation()
    direct = run_scenario(s)
    reloaded = Scenario.from_json(s.to_json())
    again = run_scenario(reloaded)
    assert again.scenario_hash == direct.scenario_hash
    assert again.metrics_hash() == direct.metrics_hash()


def test_different_seed_different_hash():
    s = _isolation()
    d = s.to_dict()
    d["cluster"]["seed"] = 7
    other = run_scenario(Scenario.from_dict(d))
    base = run_scenario(s)
    assert other.scenario_hash != base.scenario_hash


def test_manifest_round_trips():
    man = run_scenario(_isolation())
    again = RunManifest.from_json(man.to_json())
    assert again.metrics_hash() == man.metrics_hash()
    assert again.rows == man.rows
    # to_dict embeds the derived metrics_hash for auditing.
    assert json.loads(man.to_json())["metrics_hash"] == man.metrics_hash()


def test_manifest_from_dict_preserves_metrics_hash():
    man = run_scenario(_isolation())
    # to_dict embeds the derived metrics_hash; from_dict must absorb it
    # (it is not a constructor field) and reproduce it bit-for-bit.
    again = RunManifest.from_dict(man.to_dict())
    assert again.metrics_hash() == man.metrics_hash()
    assert again.to_json() == man.to_json()
    # Series survive the tuple→list→tuple round trip.
    assert again.series == man.series


def test_manifest_from_dict_rejects_unknown_fields():
    man = run_scenario(_isolation())
    payload = man.to_dict()
    payload["shiny_new_field"] = 1
    with pytest.raises(ValueError) as err:
        RunManifest.from_dict(payload)
    msg = str(err.value)
    assert "shiny_new_field" in msg
    assert "scenario_hash" in msg  # lists the known fields


def test_runner_accepts_file_like_trace_target():
    import io

    buf = io.StringIO()
    man = ScenarioRunner(trace_path=buf).run(_isolation())
    # A stream target is a side channel, not a recorded artefact.
    assert man.trace_path is None
    lines = buf.getvalue().splitlines()
    assert lines and all(json.loads(ln) for ln in lines)
    assert man.metrics_hash() == run_scenario(_isolation()).metrics_hash()


def test_manifest_accessors():
    man = run_scenario(_isolation())
    assert man.runtime("wordcount") > 0
    assert man.job_row("wordcount")["entry"] == "wordcount"
    with pytest.raises(KeyError):
        man.job_row("nope")
    # teragen keeps running past the until-event, so it has no runtime.
    assert man.job_row("teragen")["runtime"] is None
    with pytest.raises(RuntimeError):
        man.runtime("teragen")
    assert man.summary["throughput_mbs"] > 0


def test_horizon_run():
    config = _config()
    s = Scenario(
        name="horizon",
        cluster=config,
        policy=PolicySpec.native(),
        workload=WorkloadSpec(
            jobs=(JobEntry(app="teravalidate", name="scan", max_cores=48,
                           params={"input_path": "/in/x"}),),
            preloads=(PreloadSpec("/in/x", 200 * GB),),
        ),
        measure=MeasurementSpec(horizon=2.0, metrics=("total_service",)),
    )
    man = run_scenario(s)
    assert man.sim_time == pytest.approx(2.0)
    assert man.summary["total_service"]


def test_trace_sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    man = ScenarioRunner(trace_path=path).run(_isolation())
    assert man.trace_path == str(path)
    lines = path.read_text().splitlines()
    assert lines and all(json.loads(ln) for ln in lines[:5])
    # The trace is an observer: metrics match the untraced run.
    assert man.metrics_hash() == run_scenario(_isolation()).metrics_hash()


def test_examples_run_end_to_end(example_scenarios):
    for path in example_scenarios:
        man = run_scenario(load_scenario(path))
        assert man.scenario_hash and man.metrics_hash()
        assert any(r["runtime"] is not None for r in man.rows)
