"""Grid sweeps over scenario dicts."""

import pytest

from repro.config import default_cluster
from repro.core import PolicySpec
from repro.scenario import (
    apply_override,
    expand_grid,
    parse_sweep,
    sweep_scenarios,
    wc_teragen_isolation,
)


def _base():
    return wc_teragen_isolation(
        default_cluster(scale=1.0 / 256), PolicySpec.sfqd(depth=4),
        name="sweep-test",
    ).to_dict()


def test_parse_sweep_json_literals():
    assert parse_sweep("cluster.seed=1,2,3") == ("cluster.seed", [1, 2, 3])
    assert parse_sweep("a.b=1.5,true,null,x") == ("a.b", [1.5, True, None, "x"])


def test_parse_sweep_rejects_malformed():
    for bad in ("noequals", "=1,2", "path="):
        with pytest.raises(ValueError):
            parse_sweep(bad)


def test_apply_override_nested_and_list():
    d = _base()
    out = apply_override(d, "workload.jobs.0.io_weight", 8.0)
    assert out["workload"]["jobs"][0]["io_weight"] == 8.0
    assert d["workload"]["jobs"][0]["io_weight"] == 32.0  # untouched


def test_apply_override_unknown_key():
    with pytest.raises(KeyError):
        apply_override(_base(), "cluster.tyop", 1)


def test_apply_override_bad_index():
    with pytest.raises(IndexError):
        apply_override(_base(), "workload.jobs.9.io_weight", 1.0)


def test_expand_grid_row_major():
    grid = expand_grid(_base(), [("cluster.seed", [1, 2]),
                                 ("workload.jobs.0.io_weight", [4.0, 8.0])])
    assert len(grid) == 4
    assignments = [a for a, _d in grid]
    assert assignments[0] == {"cluster.seed": 1,
                              "workload.jobs.0.io_weight": 4.0}
    assert assignments[1]["workload.jobs.0.io_weight"] == 8.0
    assert assignments[2]["cluster.seed"] == 2


def test_sweep_scenarios_names_and_validates():
    scenarios = sweep_scenarios(_base(), [("cluster.seed", [1, 2])])
    assert [s.name for s in scenarios] == [
        "sweep-test[cluster.seed=1]", "sweep-test[cluster.seed=2]",
    ]
    assert scenarios[0].content_hash() != scenarios[1].content_hash()


def test_sweep_scenarios_no_sweeps_is_identity():
    (s,) = sweep_scenarios(_base(), [])
    assert s.name == "sweep-test"
