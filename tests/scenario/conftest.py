import pathlib

import pytest

EXAMPLES = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "scenarios"
)


@pytest.fixture
def example_scenarios() -> list[pathlib.Path]:
    paths = sorted(EXAMPLES.glob("*.json"))
    assert len(paths) >= 3, f"expected example scenarios in {EXAMPLES}"
    return paths
