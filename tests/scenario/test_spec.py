"""Scenario spec: canonical JSON round-trips and stable content hashes."""

import json

import pytest

from repro.config import GB, default_cluster
from repro.core import NodePolicy, PolicySpec, canonical_json
from repro.scenario import (
    JobEntry,
    MeasurementSpec,
    PreloadSpec,
    Scenario,
    WorkloadSpec,
    load_scenario,
)


def _config():
    return default_cluster(scale=1.0 / 256)


def _scenario(policy=None):
    return Scenario(
        name="spec-test",
        cluster=_config(),
        policy=policy or PolicySpec.sfqd(depth=4),
        workload=WorkloadSpec(
            jobs=(
                JobEntry(app="wordcount", io_weight=32.0, max_cores=48,
                         params={"input_path": "/in/wiki"}),
                JobEntry(app="teragen", max_cores=48),
            ),
            preloads=(PreloadSpec("/in/wiki", 50 * GB),),
        ),
        measure=MeasurementSpec(until=("wordcount",),
                                metrics=("runtime", "throughput_mbs"),
                                window="until_finish"),
        description="round-trip probe",
    )


def test_round_trip_preserves_canonical_json():
    s = _scenario()
    again = Scenario.from_dict(s.to_dict())
    assert canonical_json(again.to_dict()) == canonical_json(s.to_dict())
    assert again.content_hash() == s.content_hash()


def test_json_round_trip():
    s = _scenario()
    again = Scenario.from_json(s.to_json())
    assert again.content_hash() == s.content_hash()
    assert again.workload.jobs[0].io_weight == 32.0
    assert again.measure.until == ("wordcount",)


def test_content_hash_ignores_key_order():
    d = _scenario().to_dict()
    shuffled = json.loads(
        json.dumps(d, sort_keys=True)
    )
    # Rebuild with reversed insertion order at the top level.
    reordered = {k: shuffled[k] for k in reversed(list(shuffled))}
    assert (Scenario.from_dict(reordered).content_hash()
            == Scenario.from_dict(d).content_hash())


def test_content_hash_sees_every_change():
    base = _scenario().to_dict()
    h0 = Scenario.from_dict(base).content_hash()
    for mutate in (
        lambda d: d.update(name="other"),
        lambda d: d["cluster"].update(seed=7),
        lambda d: d["workload"]["jobs"][0].update(io_weight=1.0),
        lambda d: d["measure"].update(metrics=["runtime"]),
    ):
        d = json.loads(json.dumps(base))
        mutate(d)
        assert Scenario.from_dict(d).content_hash() != h0


def test_node_policy_round_trips():
    policy = NodePolicy(
        persistent=PolicySpec.sfqd(depth=8),
        intermediate=PolicySpec.native(),
        network=PolicySpec.native(),
    )
    s = _scenario(policy=policy)
    again = Scenario.from_json(s.to_json())
    assert isinstance(again.policy, NodePolicy)
    assert again.content_hash() == s.content_hash()


def test_auto_controller_resolves_and_hashes_stably():
    d = _scenario().to_dict()
    d["policy"] = {"kind": "sfqd2", "controller": "auto"}
    s1 = Scenario.from_dict(d)
    # Policies coerce to per-class NodePolicy form, and the emitted dict
    # pins the calibrated controller explicitly...
    emitted = s1.to_dict()["policy"]["persistent"]["controller"]
    assert emitted != "auto" and isinstance(emitted, dict)
    assert emitted["ref_latency_read"] > 0
    # ...and re-parsing either form lands on the same hash.
    assert Scenario.from_dict(s1.to_dict()).content_hash() == s1.content_hash()
    assert Scenario.from_dict(d).content_hash() == s1.content_hash()


def test_load_scenario_from_path(tmp_path):
    s = _scenario()
    path = tmp_path / "s.json"
    path.write_text(s.to_json())
    assert load_scenario(path).content_hash() == s.content_hash()


def test_unknown_fields_rejected():
    d = _scenario().to_dict()
    d["surprise"] = 1
    with pytest.raises((ValueError, TypeError)):
        Scenario.from_dict(d)


def test_until_must_reference_a_job():
    with pytest.raises(KeyError):
        Scenario(
            name="bad",
            cluster=_config(),
            policy=PolicySpec.native(),
            workload=WorkloadSpec(jobs=(JobEntry(app="teragen"),)),
            measure=MeasurementSpec(until=("nope",)),
        )


def test_duplicate_job_keys_rejected():
    with pytest.raises(ValueError):
        WorkloadSpec(jobs=(JobEntry(app="teragen"), JobEntry(app="teragen")))


def test_examples_parse_and_hash(example_scenarios):
    for path in example_scenarios:
        s = load_scenario(path)
        assert len(s.content_hash()) == 16
        assert s.workload.jobs
