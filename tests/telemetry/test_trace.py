"""JSON-lines trace export: schema validation and end-to-end capture."""

import io
import json

import pytest

from repro.config import default_cluster
from repro.core import DepthController, PolicySpec
from repro.experiments.harness import run_single_job
from repro.telemetry import (
    REQUEST_COMPLETED,
    JsonLinesTraceSink,
    RequestCompleted,
    TelemetryBus,
    validate_trace_file,
    validate_trace_line,
    validate_trace_record,
)
from repro.workloads import teragen

TINY = default_cluster(scale=1 / 256)


def _record(**overrides):
    rec = {
        "kind": "request_completed", "t": 1.5, "source": "dn00:persistent",
        "app_id": "app01-wc", "op": "read", "nbytes": 4096,
        "io_class": "persistent", "latency": 0.01, "weight": 2.0,
    }
    rec.update(overrides)
    return {k: v for k, v in rec.items() if v is not None}


def test_valid_records_pass():
    validate_trace_record(_record())
    validate_trace_record(_record(t=2))  # int where float expected: ok
    for kind, extra in (
        ("depth_changed", {"depth": 4.0, "latency": 0.1, "samples": 3}),
        ("broker_sync", {"scope": "persistent", "apps": 2,
                         "message_bytes": 96}),
        ("flush_spike", {"until": 3.5, "factor": 0.35}),
    ):
        rec = {"kind": kind, "t": 1.0, "source": "dn00:persistent", **extra}
        validate_trace_record(rec)


@pytest.mark.parametrize("breakage", [
    {"kind": "no_such_event"},
    {"kind": None},
    {"latency": None},                  # missing required field
    {"latency": "fast"},                # wrong type
    {"nbytes": 1.5},                    # float where int required
    {"nbytes": True},                   # bool is not an int here
    {"op": "append"},                   # enum violation
    {"io_class": "ephemeral"},          # enum violation
    {"surprise": 42},                   # unknown extra field
])
def test_invalid_records_rejected(breakage):
    with pytest.raises(ValueError):
        validate_trace_record(_record(**breakage))


def test_validate_trace_line_parses_json():
    rec = validate_trace_line(json.dumps(_record()))
    assert rec["kind"] == "request_completed"
    with pytest.raises(ValueError):
        validate_trace_line(json.dumps(_record(op="append")))


def test_sink_streams_filtered_kinds_and_detaches():
    bus = TelemetryBus()
    buf = io.StringIO()
    ev = RequestCompleted(t=1.0, source="s0", app_id="a", op="read",
                          nbytes=1024, io_class="persistent",
                          latency=0.01, weight=1.0)
    with JsonLinesTraceSink(bus, buf, kinds=[REQUEST_COMPLETED]) as sink:
        bus.publish(ev)
        assert sink.records == 1
    bus.publish(ev)  # after close: detached, not recorded
    lines = buf.getvalue().splitlines()
    assert len(lines) == 1
    assert validate_trace_line(lines[0])["nbytes"] == 1024


def test_sink_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown event kinds"):
        JsonLinesTraceSink(TelemetryBus(), io.StringIO(), kinds=["nope"])


def test_run_single_job_exports_schema_valid_trace(tmp_path):
    """End to end: a coordinated SFQ(D2) run traced to disk produces a
    schema-valid JSON-lines file covering the whole event vocabulary
    this run can emit."""
    ctrl = DepthController.symmetric(0.05)
    path = tmp_path / "trace.jsonl"
    job, _cluster = run_single_job(
        TINY, PolicySpec.sfqd2(ctrl, coordinated=True), teragen(TINY),
        preloads={}, max_cores=96, trace_path=path,
    )
    assert job.finish_time is not None
    lines = path.read_text().splitlines()
    n = validate_trace_file(lines)
    assert n == len(lines) > 0
    kinds = {json.loads(line)["kind"] for line in lines}
    # The big three are always present; the coordinated SFQ(D2) run also
    # exercises the controller and the broker.
    assert {"request_submitted", "request_dispatched",
            "request_completed", "depth_changed", "broker_sync"} <= kinds


def test_fault_event_records_validate():
    for kind, extra in (
        ("fault_injected", {"fault": "node_crash", "target": "dn01",
                            "duration": 2.0}),
        ("node_down", {"permanent": False}),
        ("node_up", {}),
        ("replica_failover", {"app_id": "app01", "block_id": 7,
                              "failed": "dn01", "attempt": 2}),
        ("task_retry", {"task": "map3", "node": "dn01", "attempt": 1}),
        ("broker_outage", {"down": True}),
    ):
        validate_trace_record({"kind": kind, "t": 1.0, "source": "x", **extra})


@pytest.mark.parametrize("rec", [
    {"kind": "node_down", "t": 1.0, "source": "x", "permanent": 1},
    {"kind": "broker_outage", "t": 1.0, "source": "x", "down": "yes"},
    {"kind": "replica_failover", "t": 1.0, "source": "x", "app_id": "a",
     "block_id": 1.5, "failed": "dn01", "attempt": 1},
])
def test_fault_records_with_wrong_types_rejected(rec):
    with pytest.raises(ValueError):
        validate_trace_record(rec)
