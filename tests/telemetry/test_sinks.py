"""The stock sinks, fed by a live scheduler stack where it matters."""

from repro.config import MB, StorageProfile
from repro.core import IOClass, IORequest, IOTag, NativeScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice
from repro.telemetry import (
    DEPTH_CHANGED,
    REQUEST_COMPLETED,
    REQUEST_SUBMITTED,
    AppRateMeterSink,
    CounterSink,
    DepthChanged,
    LatencyWindowSink,
    TelemetryBus,
    TimeSeriesSink,
)

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def _run_stack(bus, ops):
    """Run one native scheduler named 'n0' over the given (app, op, MB)."""
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = NativeScheduler(sim, dev, name="n0", telemetry=bus)
    for app, op, mb in ops:
        sched.submit(IORequest(sim, IOTag(app, 1.0), op, mb * MB,
                               IOClass.PERSISTENT))
    sim.run()
    return sched


def test_time_series_sink_records_value_and_filter():
    bus = TelemetryBus()
    sink = TimeSeriesSink(bus, DEPTH_CHANGED, source="s0",
                          value=lambda ev: ev.depth,
                          when=lambda ev: ev.samples > 0)
    bus.publish(DepthChanged(t=1.0, source="s0", depth=4.0, latency=0.1,
                             samples=3))
    bus.publish(DepthChanged(t=2.0, source="s0", depth=6.0, latency=0.0,
                             samples=0))  # filtered out
    bus.publish(DepthChanged(t=3.0, source="s0", depth=8.0, latency=0.2,
                             samples=1))
    assert len(sink) == 2
    assert sink.series.times == [1.0, 3.0]
    assert sink.series.values == [4.0, 8.0]


def test_counter_sink_counts_and_sums():
    bus = TelemetryBus()
    count = CounterSink(bus, REQUEST_COMPLETED, source="n0",
                        amount=lambda ev: ev.nbytes)
    submitted = CounterSink(bus, REQUEST_SUBMITTED, source="n0")
    _run_stack(bus, [("a", "read", 4), ("b", "write", 2)])
    assert count.count == 2
    assert count.total == 6 * MB
    assert submitted.count == 2
    assert submitted.total == 0.0  # no amount extractor


def test_app_rate_meter_sink_matches_scheduler_stats():
    bus = TelemetryBus()
    sink = AppRateMeterSink(bus, source="n0")
    sched = _run_stack(bus, [("a", "read", 4), ("a", "read", 4),
                             ("b", "write", 2)])
    assert set(sink.meter_by_app) == {"a", "b"}
    assert sink.meter("a").total == 8 * MB
    assert sink.meter("b").total == 2 * MB
    assert sink.meter("nobody") is None
    # The external sink reconstructs exactly the scheduler's own stats.
    for app, meter in sink.meter_by_app.items():
        own = sched.stats.meter_by_app[app]
        assert meter.times == own.times
        assert meter.amounts == own.amounts


def test_latency_window_sink_splits_ops_and_drains():
    bus = TelemetryBus()
    sink = LatencyWindowSink(bus, source="n0")
    _run_stack(bus, [("a", "read", 10), ("b", "write", 20)])
    assert len(sink.window_read_latencies) == 1
    assert len(sink.window_write_latencies) == 1
    assert sink.window_read_latencies[0] > 0.0
    reads, writes = sink.drain()
    assert len(reads) == 1 and len(writes) == 1
    assert sink.drain() == ([], [])
