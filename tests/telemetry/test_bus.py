"""TelemetryBus semantics: scoping, ordering, the publishes() guard."""

import pytest

from repro.telemetry import (
    REQUEST_COMPLETED,
    REQUEST_SUBMITTED,
    RequestCompleted,
    TelemetryBus,
)


def _completed(source="s0", t=1.0):
    return RequestCompleted(t=t, source=source, app_id="a", op="read",
                            nbytes=1024, io_class="persistent",
                            latency=0.01, weight=1.0)


def test_scoped_subscription_filters_by_source():
    bus = TelemetryBus()
    got = []
    bus.subscribe(REQUEST_COMPLETED, got.append, source="s0")
    bus.publish(_completed("s0"))
    bus.publish(_completed("s1"))
    assert [ev.source for ev in got] == ["s0"]


def test_wildcard_subscription_sees_every_source():
    bus = TelemetryBus()
    got = []
    bus.subscribe(REQUEST_COMPLETED, got.append)  # source=None
    bus.publish(_completed("s0"))
    bus.publish(_completed("s1"))
    assert [ev.source for ev in got] == ["s0", "s1"]


def test_scoped_runs_before_wildcard_in_subscription_order():
    bus = TelemetryBus()
    order = []
    bus.subscribe(REQUEST_COMPLETED, lambda ev: order.append("wild1"))
    bus.subscribe(REQUEST_COMPLETED, lambda ev: order.append("scoped1"),
                  source="s0")
    bus.subscribe(REQUEST_COMPLETED, lambda ev: order.append("wild2"))
    bus.subscribe(REQUEST_COMPLETED, lambda ev: order.append("scoped2"),
                  source="s0")
    bus.publish(_completed("s0"))
    assert order == ["scoped1", "scoped2", "wild1", "wild2"]


def test_publishes_guard_tracks_scoped_and_wildcard():
    bus = TelemetryBus()
    assert not bus.publishes(REQUEST_COMPLETED)
    fn = bus.subscribe(REQUEST_COMPLETED, lambda ev: None, source="s0")
    assert bus.publishes(REQUEST_COMPLETED)
    assert not bus.publishes(REQUEST_SUBMITTED)
    bus.unsubscribe(REQUEST_COMPLETED, fn, source="s0")
    assert not bus.publishes(REQUEST_COMPLETED)


def test_unsubscribe_unknown_raises():
    bus = TelemetryBus()
    with pytest.raises(ValueError):
        bus.unsubscribe(REQUEST_COMPLETED, lambda ev: None)


def test_unrelated_kind_and_source_pay_nothing():
    bus = TelemetryBus()
    got = []
    bus.subscribe(REQUEST_SUBMITTED, got.append, source="elsewhere")
    bus.publish(_completed("s0"))  # no subscriber for this kind/source
    assert got == []
