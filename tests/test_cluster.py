"""Integration tests for BigDataCluster end-to-end behaviour."""

import pytest

from repro import (
    GB,
    BigDataCluster,
    IOClass,
    PolicySpec,
    default_cluster,
)
from repro.core import DepthController
from repro.mapreduce import JobSpec
from repro.simcore import SimulationError
from repro.workloads import teragen, wordcount

CTRL = DepthController.symmetric(0.05)


def test_run_without_jobs_rejected():
    cl = BigDataCluster(default_cluster(), PolicySpec.native())
    with pytest.raises(SimulationError):
        cl.run()


def test_cluster_builds_paper_topology():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    assert len(cl.nodes) == 8
    assert len(list(cl.schedulers())) == 24  # 3 classes x 8 nodes
    assert len(list(cl.schedulers(IOClass.PERSISTENT))) == 8
    assert cl.rm.total_cores_free == 96


def test_broker_only_when_coordinated():
    cfg = default_cluster()
    assert BigDataCluster(cfg, PolicySpec.native()).broker is None
    coord = BigDataCluster(cfg, PolicySpec.sfqd(4, coordinated=True))
    assert coord.broker is not None
    assert sum(len(n.broker_clients) for n in coord.nodes.values()) == 24


def test_determinism_same_seed_same_runtimes():
    def run():
        cfg = default_cluster()
        cl = BigDataCluster(cfg, PolicySpec.sfqd2(CTRL))
        cl.preload_input("/in/w", 10 * GB)
        wc = cl.submit(wordcount(cfg, "/in/w", input_bytes=10 * GB),
                       io_weight=32.0, max_cores=48)
        cl.submit(teragen(cfg, output_bytes=64 * GB),
                  io_weight=1.0, max_cores=48)
        cl.run(wc.done)
        return wc.runtime

    assert run() == run()


def test_different_seed_changes_outcome():
    def run(seed):
        cfg = default_cluster(seed=seed)
        cl = BigDataCluster(cfg, PolicySpec.native())
        cl.preload_input("/in/w", 10 * GB)
        j = cl.submit(JobSpec(name="j", input_path="/in/w", n_reduces=0,
                              map_cpu_s_per_mb=0.1), max_cores=96)
        cl.run()
        return j.runtime

    assert run(1) != run(2)


def test_total_service_accounting_covers_all_classes():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    cl.preload_input("/in/w", 10 * GB)
    scaled = cfg.scaled(10 * GB)
    j = cl.submit(JobSpec(name="mr", input_path="/in/w",
                          shuffle_bytes=scaled // 2, output_bytes=scaled // 4,
                          n_reduces=2), max_cores=96)
    cl.run()
    svc = cl.total_service_by_app()
    assert j.app_id in svc
    # reads + intermediate + servlet reads + replicated writes > input
    assert svc[j.app_id] > scaled


def test_cluster_throughput_positive_after_run():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    cl.preload_input("/in/w", 10 * GB)
    cl.submit(JobSpec(name="scan", input_path="/in/w", n_reduces=0),
              max_cores=96)
    cl.run()
    assert cl.cluster_throughput() > 0
    assert cl.cluster_throughput(t_end=0) == 0.0


def test_app_throughput_meters_exist_per_app():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    cl.preload_input("/in/w", 10 * GB)
    j = cl.submit(JobSpec(name="scan", input_path="/in/w", n_reduces=0),
                  max_cores=96)
    cl.run()
    meters = cl.app_throughput_meters(j.app_id)
    assert meters
    assert sum(m.total for m in meters) == cfg.scaled(10 * GB)


def test_device_meters_validation():
    cl = BigDataCluster(default_cluster(), PolicySpec.native())
    with pytest.raises(ValueError):
        cl.device_meters("erase")
    assert len(cl.device_meters("read")) == 16  # 2 disks x 8 nodes


def test_io_weight_carried_on_all_requests():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.sfqd(4))
    cl.preload_input("/in/w", 10 * GB)
    weights = set()
    for sched in cl.schedulers():
        sched.add_submit_hook(lambda r: weights.add((r.app_id, r.weight)))
    j = cl.submit(JobSpec(name="scan", input_path="/in/w", n_reduces=0),
                  io_weight=17.0, max_cores=96)
    cl.run()
    assert weights == {(j.app_id, 17.0)}


def test_preload_skewed_placement():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    subset = ["dn00", "dn01"]
    cl.preload_input("/in/hot", 10 * GB, nodes=subset)
    f = cl.namenode.lookup("/in/hot")
    for loc in f.blocks:
        assert set(loc.replicas) <= set(subset)


def test_process_death_surfaces_as_simulation_error_naming_process():
    cl = BigDataCluster(default_cluster(), PolicySpec.native())

    def boom():
        yield cl.sim.timeout(0.1)
        raise ValueError("kaput")

    cl.sim.process(boom(), name="boomer")
    with pytest.raises(SimulationError, match="boomer.*ValueError.*kaput"):
        cl.run_for(1.0)
