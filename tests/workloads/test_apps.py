"""Tests for the benchmark application builders."""

import pytest

from repro.config import GB, TB, default_cluster
from repro.workloads import (
    io_ramp_job,
    teragen,
    terasort,
    teravalidate,
    wordcount,
)

CFG = default_cluster()


def test_teragen_is_map_only_writer():
    spec = teragen(CFG)
    assert spec.n_reduces == 0
    assert spec.input_path is None
    assert spec.output_bytes == CFG.scaled(1 * TB)
    assert spec.n_maps >= 1
    # near one block per map
    assert spec.output_bytes / spec.n_maps == pytest.approx(
        CFG.sim_block_size, rel=0.2
    )


def test_terasort_shuffles_everything():
    spec = terasort(CFG, "/in/t", input_bytes=100 * GB)
    scaled = CFG.scaled(100 * GB)
    assert spec.shuffle_bytes == scaled
    assert spec.output_bytes == scaled
    assert spec.n_reduces > 0
    assert spec.map_spill_factor > 1.0


def test_wordcount_is_compute_heavy_small_output():
    spec = wordcount(CFG, "/in/w")
    assert spec.map_cpu_s_per_mb > 5 * terasort(CFG, "/x").map_cpu_s_per_mb
    assert spec.output_bytes < 0.1 * CFG.scaled(50 * GB)
    assert 0 < spec.shuffle_bytes < CFG.scaled(50 * GB)


def test_teravalidate_read_mostly():
    spec = teravalidate(CFG, "/in/sorted")
    assert spec.n_reduces == 0
    assert spec.output_bytes == 0


def test_io_ramp_job():
    spec = io_ramp_job(CFG, "/in/x", n_maps=16)
    assert spec.map_cpu_s_per_mb == 0.0
    assert spec.n_maps == 16
    with pytest.raises(ValueError):
        io_ramp_job(CFG, "/in/x", n_maps=0)
