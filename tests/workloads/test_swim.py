"""Tests for the Facebook2009-like SWIM trace generator."""

import numpy as np
import pytest

from repro.config import default_cluster
from repro.workloads import facebook2009_trace

CFG = default_cluster()


def test_trace_has_requested_jobs_and_monotone_arrivals():
    trace = facebook2009_trace(CFG, n_jobs=50)
    assert len(trace) == 50
    arrivals = [j.arrival for j in trace]
    assert arrivals == sorted(arrivals)
    assert arrivals[0] > 0


def test_trace_is_deterministic_per_rng():
    a = facebook2009_trace(CFG, n_jobs=20, rng=np.random.default_rng(5))
    b = facebook2009_trace(CFG, n_jobs=20, rng=np.random.default_rng(5))
    assert [j.spec for j in a] == [j.spec for j in b]
    assert [j.arrival for j in a] == [j.arrival for j in b]


def test_job_mix_is_diverse():
    trace = facebook2009_trace(CFG, n_jobs=50)
    sizes = np.array([j.input_bytes for j in trace], dtype=float)
    # heavy-tailed: the largest input dwarfs the median
    assert sizes.max() > 5 * np.median(sizes)
    # both map-only and shuffling jobs occur
    n_reduce = sum(1 for j in trace if j.spec.n_reduces > 0)
    assert 0 < n_reduce < 50


def test_specs_are_valid_and_named_uniquely():
    trace = facebook2009_trace(CFG, n_jobs=30)
    names = [j.spec.name for j in trace]
    assert len(set(names)) == 30
    for j in trace:
        assert j.spec.input_path is not None


def test_parameter_validation():
    with pytest.raises(ValueError):
        facebook2009_trace(CFG, n_jobs=0)
    with pytest.raises(ValueError):
        facebook2009_trace(CFG, mean_interarrival=0.0)
