"""Property-based tests for the storage device: conservation and
ordering invariants that must hold for any request mix, in both
service disciplines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, StorageProfile
from repro.simcore import Simulator
from repro.storage import StorageDevice


def make_profile(discipline, n_half=0.8, write_cost=1.0, overhead=0.0):
    return StorageProfile(
        name=f"p-{discipline}",
        peak_rate=100.0 * MB,
        n_half=n_half,
        write_cost=write_cost,
        request_overhead=overhead,
        discipline=discipline,
    )


@settings(max_examples=40, deadline=None)
@given(
    discipline=st.sampled_from(["ps", "fcfs"]),
    sizes=st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                   max_size=30),
    ops=st.data(),
)
def test_property_all_bytes_serviced_exactly_once(discipline, sizes, ops):
    sim = Simulator()
    dev = StorageDevice(sim, make_profile(discipline))
    op_list = [ops.draw(st.sampled_from(["read", "write"])) for _ in sizes]
    events = [dev.submit(op, sz * MB) for op, sz in zip(op_list, sizes)]
    sim.run()
    assert all(ev.processed and ev.ok for ev in events)
    expect_read = sum(sz for op, sz in zip(op_list, sizes) if op == "read")
    expect_write = sum(sz for op, sz in zip(op_list, sizes) if op == "write")
    assert dev.read_meter.total == expect_read * MB
    assert dev.write_meter.total == expect_write * MB


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=2,
                   max_size=20),
)
def test_property_fcfs_completion_order_is_arrival_order(sizes):
    sim = Simulator()
    dev = StorageDevice(sim, make_profile("fcfs"))
    order = []
    for i, sz in enumerate(sizes):
        ev = dev.submit("read", sz * MB)
        ev.callbacks.append(lambda _e, i=i: order.append(i))
    sim.run()
    assert order == list(range(len(sizes)))


@settings(max_examples=30, deadline=None)
@given(
    discipline=st.sampled_from(["ps", "fcfs"]),
    sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=1,
                   max_size=15),
)
def test_property_makespan_bounded_by_rate_curve(discipline, sizes):
    """Total time is at least total_work/peak and at most total_work/W(1)."""
    sim = Simulator()
    profile = make_profile(discipline, n_half=1.0)
    dev = StorageDevice(sim, profile)
    for sz in sizes:
        dev.submit("read", sz * MB)
    sim.run()
    work = sum(sizes) * MB
    assert sim.now >= work / profile.peak_rate - 1e-9
    assert sim.now <= work / profile.rate_at(1) + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    discipline=st.sampled_from(["ps", "fcfs"]),
)
def test_property_equal_batch_finishes_at_rate_curve_prediction(n, discipline):
    """n identical requests admitted together: the batch drains exactly
    as fast as the (piecewise) aggregate rate predicts — the disciplines
    differ only in who finishes when, not in total work per second."""
    sim = Simulator()
    profile = make_profile(discipline, n_half=1.0)
    dev = StorageDevice(sim, profile)
    for _ in range(n):
        dev.submit("read", 10 * MB)
    sim.run()
    # Piecewise: while k requests remain, the device runs at W(k).
    expected = 0.0
    if discipline == "ps":
        # Equal sharing: all n complete together at W(n) throughout.
        expected = n * 10 * MB / profile.rate_at(n)
    else:
        remaining = n
        while remaining > 0:
            expected += 10 * MB / profile.rate_at(remaining)
            remaining -= 1
    assert sim.now == pytest.approx(expected, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(write_cost=st.floats(min_value=1.0, max_value=5.0))
def test_property_write_cost_scales_latency_linearly(write_cost):
    sim = Simulator()
    dev = StorageDevice(sim, make_profile("fcfs", n_half=0.0,
                                          write_cost=write_cost))
    ev = dev.submit("write", 10 * MB)
    sim.run()
    assert ev.value.latency == pytest.approx(0.1 * write_cost)
