"""Unit tests for the processor-sharing storage device."""

import pytest

from repro.config import MB, StorageProfile
from repro.simcore import Simulator
from repro.storage import StorageDevice
from repro.telemetry import FLUSH_SPIKE, TelemetryBus

# A deliberately simple profile: no overhead, no knee, no storms —
# W(n) = 100 MB/s flat, so analytic latencies are exact.
FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)

KNEE = StorageProfile(name="knee", peak_rate=100.0 * MB, n_half=1.0)


def _run_io(sim, dev, op, nbytes):
    def proc():
        done = yield dev.submit(op, nbytes)
        return done

    return sim.process(proc())


def test_single_request_latency_is_size_over_rate():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    done = sim.run(until=_run_io(sim, dev, "read", 100 * MB))
    assert done.latency == pytest.approx(1.0)
    assert done.op == "read"
    assert done.nbytes == 100 * MB


def test_two_equal_requests_share_bandwidth():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    p1 = _run_io(sim, dev, "read", 50 * MB)
    p2 = _run_io(sim, dev, "read", 50 * MB)
    sim.run()
    # 100 MB total work at 100 MB/s, equal sharing: both finish at t=1.
    assert p1.value.latency == pytest.approx(1.0)
    assert p2.value.latency == pytest.approx(1.0)


def test_short_request_finishes_first_under_sharing():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    long = _run_io(sim, dev, "read", 90 * MB)
    short = _run_io(sim, dev, "read", 10 * MB)
    sim.run()
    # Shared 50 MB/s each until short finishes at t=0.2; long then runs
    # alone: 80 MB left at 100 MB/s -> finishes at t=1.0.
    assert short.value.latency == pytest.approx(0.2)
    assert long.value.latency == pytest.approx(1.0)


def test_late_arrival_shares_remaining_service():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    first = _run_io(sim, dev, "read", 100 * MB)

    def late():
        yield sim.timeout(0.5)
        done = yield dev.submit("read", 25 * MB)
        return sim.now, done.latency

    p = sim.process(late())
    sim.run()
    # t=0.5: first has 50 MB left. Shared: each gets 50 MB/s. The late
    # 25 MB finishes at t=1.0; first's last 25MB then at full rate: t=1.25.
    t_done, lat = p.value
    assert t_done == pytest.approx(1.0)
    assert lat == pytest.approx(0.5)
    assert first.value.latency == pytest.approx(1.25)


def test_throughput_saturates_with_concurrency():
    """W(1) = 50 MB/s, W(4) = 80 MB/s for the KNEE profile."""

    def total_time(n_requests):
        sim = Simulator()
        dev = StorageDevice(sim, KNEE)
        procs = [_run_io(sim, dev, "read", 100 * MB // n_requests) for _ in range(n_requests)]
        sim.run()
        assert all(p.processed for p in procs)
        return sim.now

    t1 = total_time(1)
    t4 = total_time(4)
    assert t1 == pytest.approx(2.0)    # 100 MB at 50 MB/s
    assert t4 == pytest.approx(1.25)   # 100 MB at 80 MB/s


def test_latency_grows_with_concurrency():
    def one_latency(n_background):
        sim = Simulator()
        dev = StorageDevice(sim, KNEE)
        for _ in range(n_background):
            _run_io(sim, dev, "read", 500 * MB)
        probe = _run_io(sim, dev, "read", 10 * MB)
        sim.run(until=probe)
        return probe.value.latency

    lat_quiet = one_latency(0)
    lat_busy = one_latency(8)
    assert lat_busy > 4 * lat_quiet


def test_write_cost_asymmetry():
    ssd_like = StorageProfile(
        name="s", peak_rate=100.0 * MB, n_half=0.0, write_cost=4.0
    )
    sim = Simulator()
    dev = StorageDevice(sim, ssd_like)
    w = _run_io(sim, dev, "write", 10 * MB)
    sim.run()
    # 10 MB * 4 work at 100 MB/s -> 0.4 s (vs 0.1 s for a read).
    assert w.value.latency == pytest.approx(0.4)


def test_request_overhead_adds_fixed_work():
    prof = StorageProfile(
        name="o", peak_rate=100.0 * MB, n_half=0.0, request_overhead=10.0 * MB
    )
    sim = Simulator()
    dev = StorageDevice(sim, prof)
    r = _run_io(sim, dev, "read", 10 * MB)
    sim.run()
    assert r.value.latency == pytest.approx(0.2)


def test_meters_account_all_bytes():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    _run_io(sim, dev, "read", 30 * MB)
    _run_io(sim, dev, "write", 20 * MB)
    sim.run()
    assert dev.read_meter.total == 30 * MB
    assert dev.write_meter.total == 20 * MB
    assert dev.completed_requests == 2


def test_invalid_submissions_rejected():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    with pytest.raises(ValueError):
        dev.submit("append", 10)
    with pytest.raises(ValueError):
        dev.submit("read", 0)


def test_flush_storm_degrades_service():
    prof = StorageProfile(
        name="storm",
        peak_rate=100.0 * MB,
        n_half=0.0,
        flush_threshold=50.0 * MB,
        flush_duration=2.0,
        flush_factor=0.5,
    )
    sim = Simulator()
    dev = StorageDevice(sim, prof)

    def proc():
        # Crossing the 50 MB threshold triggers a storm immediately.
        yield dev.submit("write", 50 * MB)
        t_mid = sim.now
        done = yield dev.submit("read", 75 * MB)
        return t_mid, done.latency, sim.now

    p = sim.process(proc())
    sim.run()
    t_mid, read_latency, t_done = p.value
    # The storm begins at submit of the threshold-crossing write, so the
    # write runs at 50 MB/s: done at t=1.0.
    assert t_mid == pytest.approx(1.0)
    # Storm lasts until t=2.0; the read gets 50 MB during [1,2] at the
    # storm rate, then its last 25 MB at the full 100 MB/s: 0.25 s more.
    assert read_latency == pytest.approx(1.25)
    assert t_done == pytest.approx(2.25)


def test_storm_inactive_when_threshold_disabled():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    _run_io(sim, dev, "write", 500 * MB)
    sim.run()
    assert not dev.in_storm


def test_flush_spike_published_on_telemetry_bus():
    prof = StorageProfile(
        name="storm",
        peak_rate=100.0 * MB,
        n_half=0.0,
        flush_threshold=50.0 * MB,
        flush_duration=2.0,
        flush_factor=0.5,
    )
    sim = Simulator()
    bus = TelemetryBus()
    spikes = []
    bus.subscribe(FLUSH_SPIKE, spikes.append, source="flushy")
    dev = StorageDevice(sim, prof, name="flushy", telemetry=bus)
    _run_io(sim, dev, "write", 50 * MB)
    sim.run()
    assert len(spikes) == 1
    (spike,) = spikes
    assert spike.source == "flushy"
    assert spike.until == pytest.approx(spike.t + 2.0)
    assert spike.factor == pytest.approx(0.5)


def test_no_flush_spike_without_subscriber_or_threshold():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)  # default bus, nobody listening
    _run_io(sim, dev, "write", 500 * MB)
    sim.run()
    assert not dev.telemetry.publishes(FLUSH_SPIKE)


def test_many_concurrent_requests_complete_and_conserve_work():
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    procs = [_run_io(sim, dev, "read", 5 * MB) for _ in range(50)]
    sim.run()
    assert all(p.processed and p.ok for p in procs)
    assert dev.read_meter.total == 250 * MB
    # 250 MB work at <=100 MB/s: must take at least 2.5 s.
    assert sim.now >= 2.5


# ------------------------------------------------- fault injection hooks

def test_rate_factor_scales_service():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    dev.set_rate_factor(0.5)
    r = _run_io(sim, dev, "read", 50 * MB)
    sim.run()
    assert r.value.latency == pytest.approx(1.0)  # 50 MB at 50 MB/s


def test_rate_factor_change_mid_flight():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    r = _run_io(sim, dev, "read", 100 * MB)
    sim.call_at(0.5, lambda: dev.set_rate_factor(0.5))
    sim.run()
    # 50 MB served by t=0.5, the rest at 50 MB/s: done at t=1.5.
    assert r.value.latency == pytest.approx(1.5)


def test_rate_factor_validation():
    dev = StorageDevice(Simulator(), FLAT)
    with pytest.raises(ValueError):
        dev.set_rate_factor(0.0)
    with pytest.raises(ValueError):
        dev.set_rate_factor(-1.0)


def test_fail_errors_inflight_and_new_requests():
    from repro.faults import DeviceFailure
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    caught = []

    def proc(nbytes):
        try:
            yield dev.submit("read", nbytes)
        except DeviceFailure:
            caught.append(sim.now)

    sim.process(proc(100 * MB))
    sim.call_at(0.5, lambda: dev.fail(DeviceFailure("dead")))
    sim.run()
    assert caught == [0.5]          # in-flight request errored at failure
    assert dev.failed
    t_resubmit = sim.now
    sim.process(proc(1 * MB))       # new submissions fail immediately
    sim.run()
    assert caught == [0.5, t_resubmit]


def test_repair_restores_service():
    from repro.faults import DeviceFailure
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    dev.fail(DeviceFailure("dead"))
    sim.call_at(1.0, dev.repair)

    def proc():
        yield sim.timeout(2.0)
        done = yield dev.submit("read", 100 * MB)
        return done.latency

    p = sim.process(proc())
    sim.run()
    assert not dev.failed
    assert p.value == pytest.approx(1.0)  # full rate after repair
