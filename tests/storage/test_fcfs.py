"""Tests for the FCFS service discipline (the disk model)."""

import pytest

from repro.config import MB, StorageProfile
from repro.simcore import Simulator
from repro.storage import StorageDevice

FCFS_FLAT = StorageProfile(
    name="fcfs-flat", peak_rate=100.0 * MB, n_half=0.0, discipline="fcfs"
)
FCFS_KNEE = StorageProfile(
    name="fcfs-knee", peak_rate=100.0 * MB, n_half=1.0, discipline="fcfs"
)


def _io(sim, dev, op, nbytes):
    def proc():
        done = yield dev.submit(op, nbytes)
        return sim.now, done.latency

    return sim.process(proc())


def test_discipline_validation():
    with pytest.raises(ValueError):
        StorageProfile(name="x", peak_rate=1.0, n_half=0.0, discipline="lifo")


def test_serial_completion_in_arrival_order():
    sim = Simulator()
    dev = StorageDevice(sim, FCFS_FLAT)
    first = _io(sim, dev, "read", 50 * MB)
    second = _io(sim, dev, "read", 10 * MB)
    sim.run()
    t1, lat1 = first.value
    t2, lat2 = second.value
    # FCFS: the small later request waits for the big earlier one.
    assert t1 == pytest.approx(0.5)
    assert t2 == pytest.approx(0.6)
    assert lat2 == pytest.approx(0.6)


def test_ps_would_reorder_but_fcfs_does_not():
    """Contrast with the PS discipline where the short request wins."""
    ps = StorageProfile(name="ps", peak_rate=100.0 * MB, n_half=0.0)
    sim = Simulator()
    dev = StorageDevice(sim, ps)
    long = _io(sim, dev, "read", 50 * MB)
    short = _io(sim, dev, "read", 10 * MB)
    sim.run()
    assert short.value[0] < long.value[0]  # PS: short first


def test_latency_is_queue_depth_times_service():
    sim = Simulator()
    dev = StorageDevice(sim, FCFS_FLAT)
    procs = [_io(sim, dev, "read", 10 * MB) for _ in range(5)]
    sim.run()
    # kth request completes at k * 0.1 s.
    for k, p in enumerate(procs, start=1):
        assert p.value[0] == pytest.approx(k * 0.1)


def test_aggregate_rate_rises_with_outstanding():
    """With the knee profile, W(1)=50 but W(4)=80 MB/s: four queued
    requests finish faster than 4x a lone request's time."""
    sim = Simulator()
    dev = StorageDevice(sim, FCFS_KNEE)
    procs = [_io(sim, dev, "read", 20 * MB) for _ in range(4)]
    sim.run()
    # The backlog drains at W(n) which shrinks as n drops:
    # piecewise faster than W(1)=50 throughout -> total < 80/50*... just
    # bound it: all 80 MB done strictly faster than at W(1).
    assert sim.now < 80 * MB / (50.0 * MB) - 1e-9
    # and no faster than the peak rate allows
    assert sim.now >= 80 * MB / (100.0 * MB) - 1e-9


def test_arrival_after_idle_starts_fresh():
    sim = Simulator()
    dev = StorageDevice(sim, FCFS_FLAT)

    def proc():
        yield dev.submit("read", 10 * MB)
        yield sim.timeout(5.0)
        done = yield dev.submit("read", 10 * MB)
        return done.latency

    p = sim.process(proc())
    sim.run()
    # No phantom backlog from the earlier request.
    assert p.value == pytest.approx(0.1)


def test_write_cost_applies_in_fcfs():
    prof = StorageProfile(name="w", peak_rate=100.0 * MB, n_half=0.0,
                          write_cost=2.0, discipline="fcfs")
    sim = Simulator()
    dev = StorageDevice(sim, prof)
    w = _io(sim, dev, "write", 10 * MB)
    r = _io(sim, dev, "read", 10 * MB)
    sim.run()
    assert w.value[0] == pytest.approx(0.2)   # 20 MB work
    assert r.value[0] == pytest.approx(0.3)   # queued behind it


def test_flush_storm_slows_fcfs_queue():
    prof = StorageProfile(
        name="s", peak_rate=100.0 * MB, n_half=0.0, discipline="fcfs",
        flush_threshold=10 * MB, flush_duration=1.0, flush_factor=0.5,
    )
    sim = Simulator()
    dev = StorageDevice(sim, prof)
    w = _io(sim, dev, "write", 10 * MB)   # triggers the storm at submit
    sim.run()
    # Whole write serviced at 50 MB/s.
    assert w.value[0] == pytest.approx(0.2)


def test_meters_and_counts_in_fcfs():
    sim = Simulator()
    dev = StorageDevice(sim, FCFS_FLAT)
    for _ in range(3):
        _io(sim, dev, "read", 5 * MB)
    _io(sim, dev, "write", 5 * MB)
    sim.run()
    assert dev.read_meter.total == 15 * MB
    assert dev.write_meter.total == 5 * MB
    assert dev.completed_requests == 4
