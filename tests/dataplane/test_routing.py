"""Interposition routing and native fallback, via IOPath."""

import pytest

from repro.config import default_cluster
from repro.core import (
    DataNodeIO,
    DepthController,
    NodePolicy,
    PolicySpec,
    SchedulingBroker,
)
from repro.dataplane import IOClass, IOPath, IORequest, IOTag
from repro.simcore import Simulator


def make_node(policy, broker=None, scale=1.0 / 256):
    sim = Simulator()
    config = default_cluster(scale=scale)
    node = DataNodeIO(sim, "dn00", config, policy, broker=broker)
    return sim, node


def test_three_paths_one_per_class():
    sim, node = make_node(PolicySpec.sfqd(depth=4))
    assert set(node.paths) == set(IOClass)
    for io_class, path in node.paths.items():
        assert isinstance(path, IOPath)
        assert path.io_class is io_class
        assert path.name == f"dn00:{io_class.value}"
        assert node.path(io_class) is path
        assert node.scheduler(io_class) is path.scheduler
        assert node.schedulers[io_class] is path.scheduler


def test_paths_share_devices_as_wired():
    sim, node = make_node(PolicySpec.sfqd(depth=4))
    assert node.paths[IOClass.PERSISTENT].device is node.hdfs_device
    assert node.paths[IOClass.INTERMEDIATE].device is node.tmp_device
    assert node.paths[IOClass.NETWORK].device is node.tmp_device


def test_each_class_reaches_its_node_policy_scheduler():
    policy = NodePolicy(
        persistent=PolicySpec.sfqd2(DepthController.symmetric(0.05)),
        intermediate=PolicySpec.sfqd(depth=2),
        network=PolicySpec.native(),
    )
    sim, node = make_node(policy)
    assert node.paths[IOClass.PERSISTENT].scheduler.algorithm == "sfq(d2)"
    assert node.paths[IOClass.INTERMEDIATE].scheduler.algorithm == "sfq(d)"
    assert node.paths[IOClass.NETWORK].scheduler.algorithm == "native"
    assert not node.paths[IOClass.PERSISTENT].fallback
    assert not node.paths[IOClass.NETWORK].fallback


def test_manages_classes_exclusion_falls_back_to_native():
    """cgroups declares INTERMEDIATE only (§6): the other two paths run
    the native passthrough, flagged as fallback."""
    sim, node = make_node(PolicySpec.cgroups_weight())
    inter = node.paths[IOClass.INTERMEDIATE]
    assert inter.scheduler.algorithm == "cgroups-weight"
    assert not inter.fallback
    for io_class in (IOClass.PERSISTENT, IOClass.NETWORK):
        path = node.paths[io_class]
        assert path.scheduler.algorithm == "native"
        assert path.fallback


def test_submit_routes_by_class_and_rejects_mismatch():
    sim, node = make_node(PolicySpec.sfqd(depth=4))
    req = IORequest(sim, IOTag("a"), "write", 1024, IOClass.INTERMEDIATE)
    node.submit(req)
    sim.run()
    assert req.completion.processed
    assert node.paths[IOClass.INTERMEDIATE].scheduler.stats.total_requests == 1
    assert node.paths[IOClass.PERSISTENT].scheduler.stats.total_requests == 0
    wrong = IORequest(sim, IOTag("a"), "write", 1024, IOClass.NETWORK)
    with pytest.raises(ValueError, match="class network"):
        node.paths[IOClass.INTERMEDIATE].submit(wrong)


def test_broker_client_attached_only_where_supported():
    """Coordinated spec + coordination-capable scheduler -> one broker
    client per managed path; the cgroups fallback paths get none."""
    sim = Simulator()
    broker = SchedulingBroker(sim)
    config = default_cluster(scale=1.0 / 256)
    spec = PolicySpec.sfqd(depth=4, coordinated=True)
    node = DataNodeIO(sim, "dn00", config, spec, broker=broker)
    assert len(node.broker_clients) == len(IOClass)
    for io_class in IOClass:
        assert node.paths[io_class].broker_client is not None

    sim2 = Simulator()
    broker2 = SchedulingBroker(sim2)
    native = DataNodeIO(
        sim2, "dn00", config, PolicySpec.native(), broker=broker2
    )
    assert native.broker_clients == []
    assert all(p.broker_client is None for p in native.paths.values())
