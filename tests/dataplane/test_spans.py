"""Span accounting: recorder aggregation, trace schema, manifest metric."""

import io

import pytest

from repro.config import MB, StorageProfile, default_cluster
from repro.core import PolicySpec, SFQDScheduler
from repro.dataplane import (
    CancelScope,
    IOClass,
    IORequest,
    IOTag,
    SpanRecorder,
    percentile_summary,
)
from repro.scenario import Scenario, run_scenario, wc_teragen_isolation
from repro.simcore import Simulator
from repro.storage import StorageDevice
from repro.telemetry import (
    SPAN,
    JsonLinesTraceSink,
    Span,
    TelemetryBus,
    event_record,
    validate_trace_line,
    validate_trace_record,
)

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def span(app="a", state="completed", wait=0.5, service=1.0):
    return Span(t=2.0, source="dn00:persistent", app_id=app, op="read",
                nbytes=1 * MB, io_class="persistent", state=state,
                queue_wait=wait, service=service)


def test_percentile_summary():
    empty = percentile_summary([])
    assert empty == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                     "p99": 0.0}
    s = percentile_summary([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4
    assert s["mean"] == pytest.approx(2.5)
    assert s["p50"] == pytest.approx(2.5)
    assert s["p95"] >= s["p50"]
    assert s["p99"] >= s["p95"]


def test_recorder_aggregates_by_app_and_class():
    bus = TelemetryBus()
    rec = SpanRecorder(bus)
    assert bus.publishes(SPAN)  # subscribing is what enables publication
    bus.publish(span(wait=0.1, service=1.0))
    bus.publish(span(wait=0.3, service=2.0))
    bus.publish(span(state="cancelled", wait=0.7, service=0.0))
    bus.publish(span(app="b", state="failed"))
    assert rec.records == 4
    summary = rec.summary()
    cell = summary["a"]["persistent"]
    # Only completed requests contribute latency samples.
    assert cell["queue_wait"]["count"] == 2
    assert cell["queue_wait"]["mean"] == pytest.approx(0.2)
    assert cell["service"]["p50"] == pytest.approx(1.5)
    assert cell["outcomes"] == {"cancelled": 1, "completed": 2}
    assert summary["b"]["persistent"]["outcomes"] == {"failed": 1}
    assert summary["b"]["persistent"]["queue_wait"]["count"] == 0


def test_span_trace_record_validates():
    rec = event_record(span())
    assert rec["kind"] == "span"
    validate_trace_record(rec)
    bad = dict(rec, state="pending")
    with pytest.raises(ValueError, match="bad span state"):
        validate_trace_record(bad)


def test_scheduler_emits_spans_matching_lifecycle():
    sim = Simulator()
    bus = TelemetryBus()
    rec = SpanRecorder(bus)
    sched = SFQDScheduler(sim, StorageDevice(sim, FLAT), depth=1,
                          name="dn00:persistent", telemetry=bus)
    scope = CancelScope()
    reqs = [
        IORequest(sim, IOTag("a", 1.0).scoped(scope), "write", 4 * MB,
                  IOClass.PERSISTENT)
        for _ in range(3)
    ]
    for req in reqs:
        sched.submit(req)
    scope.cancel()  # withdraws the two still-queued requests
    sim.run()
    cell = rec.summary()["a"]["persistent"]
    assert cell["outcomes"] == {"cancelled": 2, "completed": 1}
    assert cell["queue_wait"]["count"] == 1
    assert cell["queue_wait"]["p50"] == pytest.approx(reqs[0].queue_wait)
    assert cell["service"]["p50"] == pytest.approx(reqs[0].service_time)


def test_trace_sink_captures_span_records():
    sim = Simulator()
    bus = TelemetryBus()
    buf = io.StringIO()
    with JsonLinesTraceSink(bus, buf, kinds=[SPAN]) as sink:
        sched = SFQDScheduler(sim, StorageDevice(sim, FLAT), depth=1,
                              name="dn00:tmp", telemetry=bus)
        for _ in range(2):
            sched.submit(IORequest(sim, IOTag("a", 1.0), "write", 2 * MB,
                                   IOClass.INTERMEDIATE))
        sim.run()
        assert sink.records == 2
    lines = buf.getvalue().splitlines()
    assert len(lines) == 2
    for line in lines:
        rec = validate_trace_line(line)
        assert rec["kind"] == "span"
        assert rec["state"] == "completed"
        assert rec["service"] > 0


def test_latency_metric_lands_in_manifest():
    config = default_cluster(scale=1.0 / 256)
    s = wc_teragen_isolation(config, PolicySpec.sfqd(depth=4),
                             name="latency-test")
    d = s.to_dict()
    d["measure"]["metrics"] = ["runtime", "latency"]
    man = run_scenario(Scenario.from_dict(d))
    latency = man.summary["latency"]
    assert latency, "no latency cells recorded"
    for app, classes in latency.items():
        for io_class, cell in classes.items():
            assert cell["queue_wait"]["count"] > 0, (app, io_class)
            assert cell["service"]["p95"] >= cell["service"]["p50"] >= 0.0
    # Span observation must not perturb the schedule itself.
    base = run_scenario(s)
    assert {r["entry"]: r["runtime"] for r in man.rows} == \
        {r["entry"]: r["runtime"] for r in base.rows}
