"""First-class cancellation: scope semantics and scheduler accounting."""

import pytest

from repro.config import MB, StorageProfile
from repro.core import CgroupsThrottleScheduler, NativeScheduler, SFQDScheduler
from repro.core.reservation import ReservationScheduler
from repro.dataplane import (
    CancelScope,
    IOClass,
    IORequest,
    IOTag,
    LifecycleError,
    RequestState,
)
from repro.simcore import RequestCancelled, Simulator

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def make_req(sim, app, scope=None, nbytes=4 * MB, weight=1.0):
    tag = IOTag(app, weight)
    if scope is not None:
        tag = tag.scoped(scope)
    return IORequest(sim, tag, "write", nbytes, IOClass.INTERMEDIATE)


def sfqd(sim, depth=1):
    from repro.storage import StorageDevice

    return SFQDScheduler(sim, StorageDevice(sim, FLAT), depth=depth)


# ----------------------------------------------------------------- SFQ tags
def test_cancel_rolls_back_sfq_finish_tags():
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    blocker = make_req(sim, "x")
    sched.submit(blocker)  # occupies the single dispatch slot
    assert blocker.state is RequestState.DISPATCHED

    scope = CancelScope(name="doomed")
    r1 = make_req(sim, "y", scope)
    r2 = make_req(sim, "y", scope)
    sched.submit(r1)
    sched.submit(r2)
    assert sched.queued == 2
    assert r2.prev_finish == r1.finish_tag

    v_before = sched.virtual_time
    assert scope.cancel() == 2
    assert sched.queued == 0
    # Tag chain fully unwound: app "y" is as if it never submitted.
    assert sched._finish_tags["y"] == 0.0
    # Virtual time and outstanding advance only on dispatch.
    assert sched.virtual_time == v_before
    assert sched.outstanding == 1

    for req in (r1, r2):
        assert req.state is RequestState.CANCELLED
        assert isinstance(req.completion.exception, RequestCancelled)
    assert scope.cancelled_requests == 2
    assert scope.live == 0

    # An identical follow-up request gets the tags r1 originally had.
    r3 = make_req(sim, "y")
    sched.submit(r3)
    assert (r3.start_tag, r3.finish_tag) == (r1.start_tag, r1.finish_tag)


def test_identical_tags_on_identical_rerun():
    """A run that queues-then-cancels extra requests hands out the same
    tags to the surviving workload as a run that never saw them."""

    def run(with_cancelled):
        sim = Simulator()
        sched = sfqd(sim, depth=1)
        sched.submit(make_req(sim, "x"))
        if with_cancelled:
            scope = CancelScope()
            doomed = [make_req(sim, "y", scope) for _ in range(3)]
            for req in doomed:
                sched.submit(req)
            scope.cancel()
        survivors = [make_req(sim, "y"), make_req(sim, "z", weight=2.0)]
        for req in survivors:
            sched.submit(req)
        sim.run()
        return [(r.start_tag, r.finish_tag) for r in survivors]

    assert run(with_cancelled=True) == run(with_cancelled=False)


def test_cancel_is_idempotent_and_skips_dispatched():
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    scope = CancelScope()
    first = make_req(sim, "y", scope)
    second = make_req(sim, "y", scope)
    sched.submit(first)   # dispatched: at the device, runs to completion
    sched.submit(second)  # queued: withdrawn
    assert scope.cancel() == 1
    assert scope.cancel() == 0
    assert first.state is RequestState.DISPATCHED
    assert second.state is RequestState.CANCELLED
    sim.run()
    assert first.state is RequestState.COMPLETED
    assert sched.stats.service_by_app == {"y": float(first.nbytes)}


def test_submit_on_cancelled_scope_is_refused():
    sim = Simulator()
    sched = sfqd(sim, depth=4)
    scope = CancelScope(name="late")
    scope.cancel()
    req = make_req(sim, "y", scope)
    completion = sched.submit(req)
    assert req.state is RequestState.CANCELLED
    assert isinstance(completion.exception, RequestCancelled)
    assert sched.queued == 0 and sched.outstanding == 0
    assert scope.live == 0
    sim.run()
    assert sched.stats.total_requests == 0


def test_cancel_rejects_non_queued_and_foreign_requests():
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    dispatched = make_req(sim, "x")
    sched.submit(dispatched)
    with pytest.raises(LifecycleError, match="not queued"):
        sched.cancel(dispatched)
    other = sfqd(sim, depth=1)
    other.submit(make_req(sim, "x"))
    queued_elsewhere = make_req(sim, "x")
    other.submit(queued_elsewhere)
    with pytest.raises(LifecycleError, match="queued at"):
        sched.cancel(queued_elsewhere)


def test_remove_of_unqueued_request_raises():
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    stranger = make_req(sim, "x")
    with pytest.raises(ValueError, match="not queued"):
        sched._remove(stranger)


def test_native_scheduler_has_no_queue_to_cancel_from():
    from repro.storage import StorageDevice

    sim = Simulator()
    native = NativeScheduler(sim, StorageDevice(sim, FLAT))
    req = make_req(sim, "x")
    native.submit(req)
    assert req.state is RequestState.DISPATCHED  # passthrough never queues
    with pytest.raises(LifecycleError):
        native._remove(req)


# ------------------------------------------------- other queueing schedulers
def test_throttle_scheduler_withdraws_queued_requests():
    from repro.storage import StorageDevice

    sim = Simulator()
    sched = CgroupsThrottleScheduler(
        sim, StorageDevice(sim, FLAT), {"a": 1.0 * MB}
    )
    scope = CancelScope()
    first = make_req(sim, "a", scope)
    second = make_req(sim, "a", scope)
    sched.submit(first)   # consumes the bucket, dispatches
    sched.submit(second)  # paced: waits for the bucket
    assert second.state is RequestState.QUEUED
    assert scope.cancel() == 1
    assert second.state is RequestState.CANCELLED
    assert not sched._queues["a"]
    sim.run()
    assert first.state is RequestState.COMPLETED


def test_reservation_scheduler_withdraws_queued_requests():
    from repro.storage import StorageDevice

    sim = Simulator()
    sched = ReservationScheduler(
        sim, StorageDevice(sim, FLAT), {"a": 0.5},
        nominal_rate=100.0 * MB, depth=1,
    )
    scope = CancelScope()
    first = make_req(sim, "a", scope)
    second = make_req(sim, "a", scope)
    sched.submit(first)
    sched.submit(second)
    assert second.state is RequestState.QUEUED
    assert scope.cancel() == 1
    assert second.state is RequestState.CANCELLED
    sim.run()
    assert first.state is RequestState.COMPLETED


# ------------------------------------------------------- engine accounting
def test_cancelled_collateral_not_counted_as_orphaned_fault():
    """A process killed by request cancellation with nobody joining it is
    cancellation collateral, not an orphaned fault."""
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    sched.submit(make_req(sim, "x"))  # hog the slot
    scope = CancelScope()
    doomed = make_req(sim, "y", scope)
    completion = sched.submit(doomed)

    def waiter():
        yield completion  # RequestCancelled is raised here, uncaught

    sim.process(waiter(), name="waiter")
    scope.cancel()
    sim.run()
    assert sim.cancelled_collateral == 1
    assert sim.orphaned_faults == 0


def test_catching_process_is_not_collateral():
    sim = Simulator()
    sched = sfqd(sim, depth=1)
    sched.submit(make_req(sim, "x"))
    scope = CancelScope()
    doomed = make_req(sim, "y", scope)
    completion = sched.submit(doomed)
    outcomes = []

    def waiter():
        try:
            yield completion
        except RequestCancelled:
            outcomes.append("cancelled")

    sim.process(waiter(), name="waiter")
    scope.cancel()
    sim.run()
    assert outcomes == ["cancelled"]
    assert sim.cancelled_collateral == 0
    assert sim.orphaned_faults == 0
