"""The request lifecycle state machine and its timestamps."""

import pytest

from repro.config import MB, StorageProfile
from repro.dataplane import (
    TRANSITIONS,
    IOClass,
    IORequest,
    IOTag,
    LifecycleError,
    RequestState,
)
from repro.core import SFQDScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def make_req(sim, app="a", op="read", nbytes=1 * MB):
    return IORequest(sim, IOTag(app, 1.0), op, nbytes, IOClass.PERSISTENT)


def test_new_request_is_submitted():
    sim = Simulator()
    req = make_req(sim)
    assert req.state is RequestState.SUBMITTED
    assert not req.state.terminal
    assert req.t_submitted == 0.0
    assert req.t_queued is None and req.t_dispatched is None
    assert req.t_finished is None
    assert req.submit_time == req.t_submitted  # compat alias


def test_dispatch_time_field_is_gone():
    sim = Simulator()
    req = make_req(sim)
    with pytest.raises(AttributeError):
        req.dispatch_time  # noqa: B018 - folded into t_dispatched


def test_happy_path_transitions_and_timestamps():
    sim = Simulator()
    req = make_req(sim)
    req.mark_queued(1.0, scheduler=None)
    assert req.state is RequestState.QUEUED and req.t_queued == 1.0
    req.mark_dispatched(3.0)
    assert req.state is RequestState.DISPATCHED and req.t_dispatched == 3.0
    req.mark_completed(7.5)
    assert req.state is RequestState.COMPLETED
    assert req.state.terminal
    assert req.queue_wait == pytest.approx(2.0)
    assert req.service_time == pytest.approx(4.5)
    assert req.timestamps() == {
        "submitted": 0.0, "queued": 1.0, "dispatched": 3.0, "completed": 7.5,
    }


def test_cancel_before_dispatch_records_wait():
    sim = Simulator()
    req = make_req(sim)
    req.mark_queued(1.0, scheduler=None)
    req.mark_cancelled(4.0)
    assert req.state is RequestState.CANCELLED
    assert req.queue_wait == pytest.approx(3.0)
    assert req.service_time == 0.0


def test_illegal_transitions_raise():
    sim = Simulator()
    req = make_req(sim)
    with pytest.raises(LifecycleError):
        req.mark_dispatched(0.0)  # SUBMITTED -> DISPATCHED skips QUEUED
    req.mark_queued(0.0, scheduler=None)
    with pytest.raises(LifecycleError):
        req.mark_completed(0.0)  # QUEUED -> COMPLETED skips DISPATCHED
    req.mark_dispatched(0.0)
    with pytest.raises(LifecycleError):
        req.mark_cancelled(0.0)  # dispatched requests run to completion
    req.mark_failed(1.0)
    for mark in (req.mark_queued, ):
        with pytest.raises(LifecycleError):
            mark(2.0, None)
    with pytest.raises(LifecycleError):
        req.mark_completed(2.0)  # terminal states are final


def test_transition_table_is_terminal_consistent():
    for state, targets in TRANSITIONS.items():
        assert state.terminal == (not targets)


def test_scheduler_walks_request_through_lifecycle():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    first = make_req(sim)
    second = make_req(sim)
    sched.submit(first)
    sched.submit(second)  # queued behind first at depth 1
    assert first.state is RequestState.DISPATCHED
    assert second.state is RequestState.QUEUED
    assert second._sched is sched
    sim.run()
    assert first.state is RequestState.COMPLETED
    assert second.state is RequestState.COMPLETED
    assert second.t_queued == 0.0
    assert second.t_dispatched > 0.0
    assert second.queue_wait == pytest.approx(
        second.t_dispatched - second.t_queued
    )
    assert second.service_time == pytest.approx(
        second.t_finished - second.t_dispatched
    )
