"""Transport layer: address parsing, inproc + tcp round trips."""

import asyncio
import threading

import pytest

from repro.service import ServiceTimeout, connect, listen, parse_address
from repro.service.protocol import decode, encode, error_message
from repro.service.transport import register_transport


def test_parse_address():
    assert parse_address("tcp://127.0.0.1:8642") == ("tcp", "127.0.0.1:8642")
    assert parse_address("inproc://x") == ("inproc", "x")
    for bad in ("8642", "tcp://", "://x", "tcp:8642"):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_encode_decode_round_trip():
    msg = {"op": "submit", "scenario": {"name": "x"}, "n": 3}
    line = encode(msg)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert decode(line) == msg
    with pytest.raises(ValueError):
        decode(b"[1, 2]\n")  # not an object
    with pytest.raises(ValueError):
        decode(b'{"no_op": 1}\n')
    err = error_message(KeyError("boom"))
    assert err["op"] == "error" and "boom" in err["error"]


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown transport"):
        connect("carrier-pigeon://loft")


class _EchoLoop:
    """An event loop on a thread running an echo handler — the minimal
    stand-in for the scheduler's serving loop."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.listener = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()

    async def _echo(self, chan):
        while True:
            msg = await chan.recv()
            if msg is None:
                return
            await chan.send({"op": "echo", "got": msg})

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self._ready.set()
        self.loop.run_forever()

    def start(self, address: str) -> str:
        self._thread.start()
        self._ready.wait()
        fut = asyncio.run_coroutine_threadsafe(
            listen(address, self._echo), self.loop
        )
        self.listener = fut.result(timeout=5)
        return self.listener.address

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.listener.close(), self.loop
        ).result(timeout=5)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)


@pytest.mark.parametrize("address", ["inproc://echo-test", "tcp://127.0.0.1:0"])
def test_channel_round_trip(address):
    server = _EchoLoop()
    bound = server.start(address)
    try:
        if address.startswith("tcp"):
            assert not bound.endswith(":0")  # listener reports real port
        with connect(bound) as chan:
            for i in range(3):
                chan.send({"op": "ping", "i": i})
                assert chan.recv(timeout=5) == {
                    "op": "echo", "got": {"op": "ping", "i": i},
                }
        # A second connection works independently.
        with connect(bound) as chan:
            chan.send({"op": "again"})
            assert chan.recv(timeout=5)["got"] == {"op": "again"}
    finally:
        server.stop()


@pytest.mark.parametrize(
    "address", ["inproc://timeout-test", "tcp://127.0.0.1:0"]
)
def test_recv_timeout_raises_service_timeout(address):
    """Satellite contract: an expired ``recv(timeout=...)`` raises the
    same clear ServiceTimeout on every transport — never a bare socket
    error or queue.Empty."""
    server = _EchoLoop()
    bound = server.start(address)
    try:
        with connect(bound) as chan:
            # Nothing sent — nothing will ever arrive.
            with pytest.raises(ServiceTimeout, match="no reply"):
                chan.recv(timeout=0.05)
            assert issubclass(ServiceTimeout, TimeoutError)
            # The channel still delivers once traffic actually flows
            # (inproc) — tcp channels should be closed after a timeout.
            if bound.startswith("inproc"):
                chan.send({"op": "ping"})
                assert chan.recv(timeout=5)["op"] == "echo"
    finally:
        server.stop()


def test_inproc_connect_without_listener():
    with pytest.raises(ConnectionError, match="no scheduler"):
        connect("inproc://nobody-home")


def test_inproc_double_listen_rejected():
    server = _EchoLoop()
    server.start("inproc://busy")
    try:
        other = _EchoLoop()
        other._thread.start()
        other._ready.wait()
        fut = asyncio.run_coroutine_threadsafe(
            listen("inproc://busy", other._echo), other.loop
        )
        with pytest.raises(ValueError, match="already listening"):
            fut.result(timeout=5)
        other.loop.call_soon_threadsafe(other.loop.stop)
        other._thread.join(timeout=5)
    finally:
        server.stop()


def test_register_transport_dispatches():
    seen = {}

    def fake_connect(rest):
        seen["rest"] = rest
        raise ConnectionError("fake transport, nothing to reach")

    async def fake_listen(rest, handler):  # pragma: no cover
        raise NotImplementedError

    register_transport("fake", fake_listen, fake_connect)
    try:
        with pytest.raises(ConnectionError, match="fake transport"):
            connect("fake://somewhere")
        assert seen["rest"] == "somewhere"
    finally:
        from repro.service.transport import _TRANSPORTS

        _TRANSPORTS.pop("fake", None)
