"""Scheduler end-to-end over the in-process transport."""

import pytest

from repro.execution import ResultStore
from repro.scenario import load_scenario, run_scenario
from repro.service import SchedulerService, ServiceClient, ServiceError
from repro.telemetry.trace import validate_trace_record

from .conftest import EXAMPLES


def test_run_matches_direct_run_scenario(service, tiny_scenario):
    """The CI smoke contract: a manifest from the service carries the
    same metrics hash as running the scenario directly."""
    manifest = service.client().run(tiny_scenario())
    direct = run_scenario(tiny_scenario())
    assert manifest.metrics_hash() == direct.metrics_hash()
    assert manifest.rows == direct.rows


def test_example_scenario_round_trip(service):
    """Submitting by path works end to end on a shipped example."""
    path = EXAMPLES / "latency_breakdown.json"
    manifest = service.client().run(path)
    direct = run_scenario(load_scenario(path))
    assert manifest.metrics_hash() == direct.metrics_hash()


def test_second_submission_served_from_store(service, tiny_scenario):
    client = service.client()
    first_id = client.submit(tiny_scenario())
    first = client.result(first_id)
    second_id = client.submit(tiny_scenario())
    assert client.status(second_id)["cached"] in (True, False)  # live record
    second = client.result(second_id)
    assert second.to_json() == first.to_json()
    stats = client.stats()
    assert stats["executed"] == 1
    assert stats["cache_hits"] + stats["deduplicated"] == 1


def test_fresh_scheduler_answers_from_warm_store(
    tmp_path, inproc_address, tiny_scenario
):
    """Restart survival: a brand-new scheduler over an existing store
    serves the result without executing anything."""
    store_root = tmp_path / "results"
    svc = SchedulerService(store=ResultStore(store_root)).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            first = client.run(tiny_scenario())
    finally:
        svc.stop()

    svc = SchedulerService(store=ResultStore(store_root)).start(
        inproc_address + "-2"
    )
    try:
        with ServiceClient(inproc_address + "-2") as client:
            sub = client.submit(tiny_scenario())
            assert client.status(sub)["cached"] is True
            again = client.result(sub)
            stats = client.stats()
    finally:
        svc.stop()
    assert again.to_json() == first.to_json()
    assert stats["executed"] == 0 and stats["cache_hits"] == 1


def test_live_dedup_attaches_to_in_flight_record(service, tiny_scenario):
    client = service.client()
    ids = [client.submit(tiny_scenario()) for _ in range(3)]
    manifests = [client.result(i) for i in ids]
    assert len({m.to_json() for m in manifests}) == 1
    stats = client.stats()
    assert stats["submitted"] == 3 and stats["executed"] == 1
    assert stats["deduplicated"] >= 1


def test_distinct_scenarios_all_execute(service, tiny_scenario):
    client = service.client()
    hashes = {
        client.run(tiny_scenario(seed=s)).scenario_hash for s in (1, 2, 3)
    }
    assert len(hashes) == 3
    assert client.stats()["executed"] == 3


def test_identical_cluster_scenarios_share_a_batch(
    service, tiny_scenario, monkeypatch
):
    """Queued same-cluster submissions drain as one warm-worker batch."""
    import threading

    import repro.service.worker as worker_mod

    release = threading.Event()
    sizes = []
    real = worker_mod.run_batch

    def stalled(payloads):
        sizes.append(len(payloads))
        release.wait(timeout=30)
        return real(payloads)

    # jobs=1 runs batches on a warm thread in-process, so the patch
    # reaches the worker.
    monkeypatch.setattr(worker_mod, "run_batch", stalled)
    client = service.client()
    ids = [client.submit(tiny_scenario(seed=7, name="n0"))]
    # While wave 1 is stalled, two more same-cluster submissions queue.
    ids += [
        client.submit(tiny_scenario(seed=7, name=f"n{i}")) for i in (1, 2)
    ]
    release.set()
    for i in ids:
        client.result(i)
    stats = service.client().stats()
    assert stats["executed"] == 3
    # Wave 2 grouped the two queued submissions into one batch.
    assert sizes == [1, 2]
    assert stats["batches"] == 2


def test_streamed_submission_delivers_telemetry(service, tiny_scenario):
    client = service.client()
    events = []
    manifest = client.run(
        tiny_scenario(), stream=True, on_event=events.append
    )
    assert manifest.metrics_hash() == run_scenario(tiny_scenario()).metrics_hash()
    assert events, "streamed run produced no telemetry records"
    for rec in events:
        validate_trace_record(rec)
    # Streamed runs bypass the store (the event stream is a side
    # effect a cache hit could not replay).
    assert client.stats()["cache_hits"] == 0


def test_unparseable_scenario_rejected_at_submit(service, tiny_scenario):
    client = service.client()
    bad = tiny_scenario().to_dict()
    bad["workload"]["jobs"][0]["app"] = "no-such-workload"
    with pytest.raises(ServiceError, match="no-such-workload"):
        client.submit(bad)


def test_failed_run_raises_service_error(service, tiny_scenario):
    client = service.client()
    bad = tiny_scenario().to_dict()
    bad["workload"]["preloads"] = []  # parses, but the app dies at run
    sub = client.submit(bad)
    with pytest.raises(ServiceError, match="failed"):
        client.result(sub)
    assert client.status(sub)["state"] == "failed"
    ok = client.run(tiny_scenario())  # service survives the failure
    assert ok.scenario_hash == tiny_scenario().content_hash()
    assert client.stats()["failed"] == 1


def test_unknown_submission_id_is_an_error(service):
    with pytest.raises(ServiceError, match="unknown submission"):
        service.client().status("sub-999999")


def test_malformed_submit_is_an_error(service):
    with pytest.raises(ServiceError, match="scenario object"):
        service.client()._request(
            {"op": "submit", "scenario": 42}, expect="submitted"
        )


def test_unknown_op_is_an_error(service):
    with pytest.raises(ServiceError, match="unknown op"):
        service.client()._request({"op": "frobnicate"}, expect="nothing")


def test_stats_reports_store_and_address(service, inproc_address):
    stats = service.client().stats()
    assert stats["address"] == inproc_address
    assert stats["store"].endswith("results")
    assert stats["jobs"] == 1 and stats["batching"] is True


def test_core_and_store_are_exclusive(tmp_path):
    from repro.execution import ExecutionCore

    with pytest.raises(ValueError, match="not both"):
        SchedulerService(
            core=ExecutionCore(), store=ResultStore(tmp_path)
        )


def test_double_start_rejected(service, inproc_address):
    with pytest.raises(RuntimeError, match="already started"):
        service.start(inproc_address + "-again")


def test_start_failure_propagates(service, inproc_address):
    other = SchedulerService()
    with pytest.raises(ValueError, match="already listening"):
        other.start(inproc_address)
