"""Submission journal: append, replay, torn tails, compaction."""

import json

import pytest

from repro.service import JOURNAL_SCHEMA, JournalError, SubmissionJournal
from repro.service.journal import JournalEntry


def entry(i: int = 1, **kw) -> JournalEntry:
    base = dict(
        sub_id=f"sub-{i:06d}", name=f"scn-{i}",
        content_hash=f"hash-{i}", cluster="clu-1",
        scenario_json=json.dumps({"name": f"scn-{i}"}),
        client="client-1",
    )
    base.update(kw)
    return JournalEntry(**base)


def lines_of(path):
    return [json.loads(line) for line in
            path.read_text().splitlines() if line.strip()]


def test_round_trip_submit_start_done(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.record_submit(entry(2))
    journal.record_start("sub-000001", attempt=1)
    journal.close()

    replay = SubmissionJournal(tmp_path / "j.jsonl").replay()
    assert not replay.torn_tail
    states = {e.sub_id: e for e in replay.entries}
    assert states["sub-000001"].state == "running"
    assert states["sub-000001"].attempts == 1
    assert states["sub-000002"].state == "queued"
    assert [e.sub_id for e in replay.incomplete] == [
        "sub-000001", "sub-000002"
    ]
    # The scenario text rides in the journal: recovery needs no client.
    assert json.loads(states["sub-000001"].scenario_json) == {"name": "scn-1"}
    assert states["sub-000001"].client == "client-1"


def test_terminal_entries_are_not_incomplete(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.record_submit(entry(2))
    journal.record_submit(entry(3))
    journal.record_start("sub-000001", attempt=1)
    journal.record_done("sub-000001")
    journal.record_failed("sub-000002", "boom", attempts=3)
    journal.close()

    replay = SubmissionJournal(tmp_path / "j.jsonl").replay()
    assert [e.sub_id for e in replay.incomplete] == ["sub-000003"]
    failed = {e.sub_id: e for e in replay.entries}["sub-000002"]
    assert failed.state == "failed" and failed.error == "boom"


def test_torn_final_line_is_tolerated(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.close()
    with open(tmp_path / "j.jsonl", "a") as fh:
        fh.write('{"kind": "done", "sub_id": "sub-0000')  # crash mid-append

    replay = SubmissionJournal(tmp_path / "j.jsonl").replay()
    assert replay.torn_tail
    assert [e.sub_id for e in replay.incomplete] == ["sub-000001"]


def test_torn_middle_line_raises(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.close()
    text = (tmp_path / "j.jsonl").read_text()
    (tmp_path / "j.jsonl").write_text(
        text + '{"kind": "torn\n' + '{"kind": "done", "sub_id": "sub-000001"}\n'
    )
    with pytest.raises(JournalError, match="corrupt"):
        SubmissionJournal(tmp_path / "j.jsonl").replay()


def test_unknown_schema_raises(tmp_path):
    (tmp_path / "j.jsonl").write_text(
        json.dumps({"kind": "journal", "schema": JOURNAL_SCHEMA + 9}) + "\n"
    )
    with pytest.raises(JournalError, match="schema"):
        SubmissionJournal(tmp_path / "j.jsonl").replay()


def test_transition_for_unknown_submission_raises(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.close()
    with open(tmp_path / "j.jsonl", "a") as fh:
        fh.write(json.dumps({"kind": "done", "sub_id": "sub-000099"}) + "\n")
        fh.write(json.dumps({"kind": "done", "sub_id": "sub-000001"}) + "\n")
    with pytest.raises(JournalError, match="unknown submission"):
        SubmissionJournal(tmp_path / "j.jsonl").replay()


def test_missing_journal_is_empty_replay(tmp_path):
    replay = SubmissionJournal(tmp_path / "absent.jsonl").replay()
    assert replay.entries == [] and not replay.torn_tail


def test_compacts_once_all_terminal(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.record_submit(entry(2))
    journal.record_start("sub-000001", attempt=1)
    journal.record_done("sub-000001")
    assert journal.compactions == 0  # sub-000002 still live
    journal.record_failed("sub-000002", "boom", attempts=1)
    assert journal.compactions == 1
    records = lines_of(tmp_path / "j.jsonl")
    assert records == [{"kind": "journal", "schema": JOURNAL_SCHEMA}]
    # The journal keeps working after compaction.
    journal.record_submit(entry(3))
    journal.close()
    replay = SubmissionJournal(tmp_path / "j.jsonl").replay()
    assert [e.sub_id for e in replay.incomplete] == ["sub-000003"]


def test_explicit_compact_keeps_live_entries(tmp_path):
    journal = SubmissionJournal(tmp_path / "j.jsonl")
    journal.record_submit(entry(1))
    journal.record_submit(entry(2))
    journal.record_start("sub-000002", attempt=2)
    journal.record_done("sub-000001")
    journal.compact()
    records = lines_of(tmp_path / "j.jsonl")
    kinds = [r["kind"] for r in records]
    assert kinds == ["journal", "submit", "start"]
    assert records[1]["sub_id"] == "sub-000002"
    assert records[2]["attempt"] == 2
    journal.close()


def test_default_journal_under_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    journal = SubmissionJournal.default()
    assert journal.path == tmp_path / "cache" / "service" / "journal.jsonl"
