"""End-to-end crash recovery: SIGKILL the serve process mid-batch,
restart it on the same journal, and verify nothing acknowledged is
lost.

This drives the real ``python -m repro.experiments.run serve`` CLI over
tcp — the only test that exercises journal durability across an actual
process boundary rather than a stopped in-process scheduler.
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.scenario import single_app
from repro.service import ServiceClient, SubmissionJournal

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def _scenario(name: str, scale: float):
    config = default_cluster(scale=scale, seed=20160531)
    return single_app(
        config, PolicySpec.native(), "teravalidate",
        name=name, params={"input_path": "/in/x"},
        preloads=(("/in/x", 25 * GB),), max_cores=48,
    )


def _serve(env: dict, journal: pathlib.Path) -> tuple:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.run", "serve",
         "--address", "tcp://127.0.0.1:0", "--journal", str(journal),
         "--jobs", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()  # blocks until the listening banner
    match = re.search(r"listening on (tcp://\S+)", line)
    if not match:  # pragma: no cover - startup failed, show why
        proc.kill()
        pytest.fail(f"serve did not come up: {line!r}{proc.stdout.read()}")
    return proc, match.group(1)


def _shutdown(proc) -> None:
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:  # pragma: no cover
        proc.kill()
        proc.wait(timeout=10)


@pytest.mark.slow
def test_sigkill_mid_batch_then_restart_recovers(tmp_path):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    journal = tmp_path / "cache" / "service" / "journal.jsonl"

    # One deliberately heavier scenario pins the single worker while the
    # tiny ones queue behind it — SIGKILL lands mid-batch by design.
    scenarios = [_scenario("blocker", scale=1.0 / 128)] + [
        _scenario(f"tail-{i}", scale=1.0 / 2048) for i in range(3)
    ]

    proc, address = _serve(env, journal)
    try:
        with ServiceClient(address) as client:
            sub_ids = [client.submit(s) for s in scenarios]
    finally:
        proc.kill()  # SIGKILL: no atexit, no journal close, no flush
        proc.wait(timeout=10)

    replay = SubmissionJournal(journal).replay()
    incomplete = {e.sub_id for e in replay.incomplete}
    assert incomplete, "SIGKILL landed after everything completed"
    assert incomplete <= set(sub_ids)

    # Restart on the same journal: every acknowledged submission must
    # reach a result, under its original sub_id, with no client help.
    proc, address = _serve(env, journal)
    try:
        assert "recovered" in proc.stdout.readline()
        with ServiceClient(address) as client:
            hashes = {sid: client.result(sid, timeout=120).metrics_hash()
                      for sid in sub_ids}
    finally:
        _shutdown(proc)

    # With everything terminal the journal compacted back to a header.
    deadline = time.time() + 5
    while time.time() < deadline:
        if len(journal.read_text().splitlines()) == 1:
            break
        time.sleep(0.05)
    assert len(journal.read_text().splitlines()) == 1
    assert SubmissionJournal(journal).replay().incomplete == []

    # A third, cold process has no in-memory records — re-submitting the
    # sweep must be answered from the persistent store, not re-executed.
    proc, address = _serve(env, journal)
    try:
        with ServiceClient(address) as client:
            for scenario, sid in zip(scenarios, sub_ids):
                repeat = client.submit(scenario)
                assert client.result(repeat).metrics_hash() == hashes[sid]
            stats = client.stats()
        assert stats["cache_hits"] == len(scenarios)
        assert stats["executed"] == 0
    finally:
        _shutdown(proc)
