"""RetryPolicy: deterministic backoff with jitter, bounds, validation."""

import pytest

from repro.service import RetryPolicy


def test_delays_are_deterministic_across_instances():
    a = RetryPolicy(seed=7)
    b = RetryPolicy(seed=7)
    for attempt in (1, 2, 3):
        assert a.delay(attempt, "hash-x") == b.delay(attempt, "hash-x")


def test_jitter_varies_by_key_attempt_and_seed():
    p = RetryPolicy()
    assert p.delay(1, "hash-a") != p.delay(1, "hash-b")
    assert p.delay(1, "hash-a") != p.delay(2, "hash-a") / p.backoff
    assert (RetryPolicy(seed=1).delay(1, "k")
            != RetryPolicy(seed=2).delay(1, "k"))


def test_backoff_grows_and_caps():
    p = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
    assert p.delay(1, "k") == pytest.approx(0.1)
    assert p.delay(2, "k") == pytest.approx(0.2)
    assert p.delay(3, "k") == pytest.approx(0.4)
    assert p.delay(4, "k") == pytest.approx(0.5)  # capped
    assert p.delay(9, "k") == pytest.approx(0.5)


def test_jitter_stays_in_band():
    p = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.25)
    for attempt in range(1, 20):
        d = p.delay(attempt, f"key-{attempt}")
        assert 0.75 <= d <= 1.25


def test_schedule_covers_non_final_attempts():
    p = RetryPolicy(max_attempts=4, jitter=0.0)
    assert len(p.schedule("k")) == 3
    assert p.schedule("k") == [p.delay(a, "k") for a in (1, 2, 3)]


def test_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError, match="1-based"):
        RetryPolicy().delay(0, "k")
