import itertools
import pathlib

import pytest

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.execution import ResultStore
from repro.scenario import single_app
from repro.service import SchedulerService, ServiceClient

EXAMPLES = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "scenarios"
)

_names = itertools.count()


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path / "cache"


@pytest.fixture
def tiny_scenario():
    """A fast single-app run (1/2048 scale, ~centiseconds of work)."""
    def build(seed: int = 20160531, name: str = "tiny"):
        config = default_cluster(scale=1.0 / 2048, seed=seed)
        return single_app(
            config, PolicySpec.native(), "teravalidate",
            name=name, params={"input_path": "/in/x"},
            preloads=(("/in/x", 25 * GB),), max_cores=48,
        )
    return build


@pytest.fixture
def inproc_address():
    """A unique inproc:// name per test (the registry is global)."""
    return f"inproc://test-{next(_names)}"


@pytest.fixture
def service(tmp_path, inproc_address):
    """A started scheduler (warm single thread, persistent store) plus a
    factory for clients against it; everything torn down afterwards."""
    svc = SchedulerService(store=ResultStore(tmp_path / "results"))
    svc.start(inproc_address)
    clients = []

    def client() -> ServiceClient:
        c = ServiceClient(inproc_address)
        clients.append(c)
        return c

    svc.client = client
    yield svc
    for c in clients:
        c.close()
    svc.stop()
