"""Crash-safety and self-healing: journal recovery, retry/quarantine,
worker supervision, back-pressure, fair queuing, store budgeting."""

import json
import threading
import time

import pytest

from repro.execution import ResultStore
from repro.scenario import run_scenario
from repro.scenario.spec import Scenario
from repro.service import (
    RetryPolicy,
    SchedulerService,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    SubmissionJournal,
)
from repro.service.journal import JournalEntry


def _names(payloads):
    return [Scenario.from_json(text).name for text, _stream in payloads]


def _wait(predicate, timeout=30.0, step=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return False


def _no_worker_threads():
    return not [t for t in threading.enumerate()
                if t.name.startswith("repro-worker") and t.is_alive()]


@pytest.fixture
def fast_retry():
    """Three attempts, sub-millisecond deterministic backoff."""
    return RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


# ------------------------------------------------------------ quarantine
def test_crashing_submission_quarantined_siblings_complete(
    tmp_path, inproc_address, tiny_scenario, fast_retry, monkeypatch
):
    """A worker-crashing submission is retried with backoff, isolated
    from its batch, and quarantined after max_attempts — while the
    sibling it shared a wave with completes."""
    import repro.service.worker as worker_mod

    real = worker_mod.run_batch
    release = threading.Event()
    batches = []

    def crashing(payloads):
        names = _names(payloads)
        batches.append(names)
        if len(batches) == 1:
            release.wait(timeout=30)
        if any("poison" in n for n in names):
            raise RuntimeError("worker crashed hard")
        return real(payloads)

    monkeypatch.setattr(worker_mod, "run_batch", crashing)
    svc = SchedulerService(
        store=ResultStore(tmp_path / "results"), retry=fast_retry
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            blocker = client.submit(tiny_scenario(name="blocker"))
            poison = client.submit(tiny_scenario(name="poison"))
            good = client.submit(tiny_scenario(name="good"))
            release.set()

            # Siblings of the crashed batch still complete.
            assert client.result(blocker).metrics_hash()
            manifest = client.result(good)
            assert manifest.metrics_hash() == run_scenario(
                tiny_scenario(name="good")
            ).metrics_hash()

            with pytest.raises(ServiceError, match="crashed hard"):
                client.result(poison)
            status = client.status(poison)
            assert status["state"] == "failed"
            assert status["quarantined"] is True
            assert status["attempts"] == fast_retry.max_attempts
            # The backoff schedule rides in the status: one entry per
            # retry, with the deterministic delay and a wall timestamp.
            retries = status["retries"]
            assert len(retries) == fast_retry.max_attempts - 1
            for i, r in enumerate(retries, start=1):
                assert r["attempt"] == i
                assert r["delay"] == pytest.approx(
                    fast_retry.delay(i, status["content_hash"])
                )
                assert r["at"] > 0
                assert "crashed hard" in r["error"]

            stats = client.stats()
            assert stats["quarantined"] == 1
            assert stats["failed"] == 1
            # poison retried twice, good retried once after the shared
            # batch crashed; blocker never failed.
            assert stats["retried"] == 3
            assert stats["executed"] == 2
            assert stats["workers_replaced"] == 3
    finally:
        release.set()
        svc.stop()
    # Retries run solo: poison never shares a batch again.
    crash_batches = [b for b in batches if "poison" in b]
    assert all(len(b) == 1 for b in crash_batches[1:])


def test_wedged_worker_times_out_and_is_replaced(
    tmp_path, inproc_address, tiny_scenario, monkeypatch
):
    """A batch exceeding the timeout is retried on a fresh worker; the
    wedged one is abandoned instead of wedging the wave."""
    import repro.service.worker as worker_mod

    real = worker_mod.run_batch
    wedge = threading.Event()
    calls = []

    def wedging(payloads):
        calls.append(_names(payloads))
        if len(calls) == 1:
            wedge.wait(timeout=10)  # simulate a hang >> timeout
        return real(payloads)

    monkeypatch.setattr(worker_mod, "run_batch", wedging)
    retry = RetryPolicy(max_attempts=2, base_delay=0.001, timeout=0.25)
    svc = SchedulerService(
        store=ResultStore(tmp_path / "results"), retry=retry
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            sub = client.submit(tiny_scenario())
            manifest = client.result(sub)
            assert manifest.metrics_hash() == run_scenario(
                tiny_scenario()
            ).metrics_hash()
            status = client.status(sub)
            assert status["attempts"] == 2
            assert "TimeoutError" in status["retries"][0]["error"]
            stats = client.stats()
            assert stats["workers_replaced"] == 1
            assert stats["retried"] == 1
            assert stats["failed"] == 0
    finally:
        wedge.set()
        svc.stop()


# ---------------------------------------------------------- back-pressure
def test_bounded_queue_rejects_with_busy(
    tmp_path, inproc_address, tiny_scenario, monkeypatch
):
    import repro.service.worker as worker_mod

    real = worker_mod.run_batch
    release = threading.Event()

    def stalled(payloads):
        release.wait(timeout=30)
        return real(payloads)

    monkeypatch.setattr(worker_mod, "run_batch", stalled)
    svc = SchedulerService(
        store=ResultStore(tmp_path / "results"), max_queue=1
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            running = client.submit(tiny_scenario(name="running"))
            queued = client.submit(tiny_scenario(name="queued"))
            # The queue is at its bound: an immediate re-offer fails...
            with pytest.raises(ServiceBusy) as err:
                client.submit(tiny_scenario(name="over"), max_busy_wait=0)
            assert err.value.reply["queue_depth"] == 1
            assert err.value.reply["max_queue"] == 1
            assert err.value.reply["retry_after"] > 0
            assert client.stats()["rejected"] == 1
            # ...while a patient client is delayed, then admitted.
            release.set()
            patient = client.submit(tiny_scenario(name="over"))
            for sub in (running, queued, patient):
                assert client.result(sub).metrics_hash()
            stats = client.stats()
            assert stats["executed"] == 3
    finally:
        release.set()
        svc.stop()


def test_fair_queuing_interleaves_competing_clients(
    tmp_path, inproc_address, tiny_scenario, monkeypatch
):
    """Start-tag fair queuing at the front door: a client that queued
    three submissions cannot starve a client that queued one — the
    other client's first submission drains before the backlog."""
    import repro.service.worker as worker_mod

    real = worker_mod.run_batch
    release = threading.Event()
    order = []

    def recording(payloads):
        names = _names(payloads)
        if names == ["a1"]:
            release.wait(timeout=30)
        order.extend(names)
        return real(payloads)

    monkeypatch.setattr(worker_mod, "run_batch", recording)
    svc = SchedulerService(
        store=ResultStore(tmp_path / "results"), batching=False
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as alice, \
                ServiceClient(inproc_address) as bob:
            subs = [alice.submit(tiny_scenario(name="a1"))]
            subs += [alice.submit(tiny_scenario(name=n))
                     for n in ("a2", "a3")]
            subs.append(bob.submit(tiny_scenario(name="b1")))
            release.set()
            for sub in subs[:3]:
                alice.result(sub)
            bob.result(subs[3])
    finally:
        release.set()
        svc.stop()
    # b1 carries a lower start tag than alice's backlog: it runs right
    # after the in-flight a1, ahead of a2/a3.
    assert order == ["a1", "b1", "a2", "a3"]


# ------------------------------------------------------- journal recovery
def test_stop_mid_drain_recovers_via_journal(
    tmp_path, inproc_address, tiny_scenario, monkeypatch
):
    """The satellite contract for ``stop()`` mid-drain: queued and
    running submissions stay journaled as incomplete, worker threads
    wind down, and a fresh scheduler over the same journal finishes
    them with ``metrics_hash`` parity."""
    import repro.service.worker as worker_mod

    real = worker_mod.run_batch
    release = threading.Event()

    def stalled(payloads):
        release.wait(timeout=30)
        return real(payloads)

    monkeypatch.setattr(worker_mod, "run_batch", stalled)
    journal_path = tmp_path / "journal.jsonl"
    store_root = tmp_path / "results"
    svc = SchedulerService(
        store=ResultStore(store_root), journal=str(journal_path)
    ).start(inproc_address)
    subs = []
    with ServiceClient(inproc_address) as client:
        for i in range(3):
            subs.append(client.submit(tiny_scenario(name=f"scn-{i}")))
    svc.stop()  # one running (stalled), two queued — none finished

    replay = SubmissionJournal(journal_path).replay()
    assert sorted(e.sub_id for e in replay.incomplete) == sorted(subs)
    release.set()
    assert _wait(_no_worker_threads, timeout=10), (
        "worker threads leaked past stop()"
    )

    svc = SchedulerService(
        store=ResultStore(store_root), journal=str(journal_path)
    ).start(inproc_address + "-2")
    try:
        with ServiceClient(inproc_address + "-2") as client:
            assert client.stats()["recovered"] == 3
            # The journaled sub ids survive the restart.
            for i, sub in enumerate(subs):
                manifest = client.result(sub)
                direct = run_scenario(tiny_scenario(name=f"scn-{i}"))
                assert manifest.metrics_hash() == direct.metrics_hash()
            stats = client.stats()
            assert stats["executed"] == 3
    finally:
        svc.stop()
    # Everything terminal: the journal compacted down to its header.
    records = [json.loads(line)
               for line in journal_path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["journal"]


def test_recovery_answers_already_stored_results_from_store(
    tmp_path, inproc_address, tiny_scenario
):
    """A submission that finished executing but crashed before its
    ``done`` append replays as incomplete — and is answered from the
    result store instead of re-running."""
    store_root = tmp_path / "results"
    scenario = tiny_scenario()
    manifest = run_scenario(scenario)
    ResultStore(store_root).put(manifest)

    journal_path = tmp_path / "journal.jsonl"
    journal = SubmissionJournal(journal_path)
    journal.record_submit(JournalEntry(
        sub_id="sub-000007", name=scenario.name,
        content_hash=scenario.content_hash(), cluster="x",
        scenario_json=scenario.to_json(),
    ))
    journal.record_start("sub-000007", attempt=1)
    journal.close()

    svc = SchedulerService(
        store=ResultStore(store_root), journal=str(journal_path)
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            stats = client.stats()
            assert stats["recovered"] == 1
            assert stats["cache_hits"] == 1
            assert stats["executed"] == 0
            status = client.status("sub-000007")
            assert status["state"] == "done" and status["cached"] is True
            assert client.result("sub-000007").to_json() == manifest.to_json()
            # New ids continue past the recovered ones.
            fresh = client.submit(tiny_scenario(name="fresh"))
            assert fresh == "sub-000008"
            client.result(fresh)
    finally:
        svc.stop()


def test_corrupt_journal_fails_start_loudly(tmp_path, inproc_address):
    journal_path = tmp_path / "journal.jsonl"
    journal_path.write_text(
        '{"kind": "journal", "schema": 999}\n'
    )
    from repro.service import JournalError

    with pytest.raises(JournalError, match="schema"):
        SchedulerService(journal=str(journal_path)).start(inproc_address)


# --------------------------------------------------------- stats plumbing
def test_corrupt_store_entry_surfaces_in_stats(
    tmp_path, inproc_address, tiny_scenario
):
    """Satellite: a corrupt store entry is no longer a *silent* miss —
    the scheduler's stats op reports the counter."""
    store_root = tmp_path / "results"
    svc = SchedulerService(store=ResultStore(store_root)).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            client.run(tiny_scenario())
    finally:
        svc.stop()

    # Corrupt the entry, then make a fresh scheduler look it up.
    store = ResultStore(store_root)
    path = store.path_for(tiny_scenario().content_hash())
    path.write_text("{torn")
    svc = SchedulerService(store=store).start(inproc_address + "-2")
    try:
        with ServiceClient(inproc_address + "-2") as client:
            client.run(tiny_scenario())  # miss → re-executes
            stats = client.stats()
            assert stats["store_corrupt"] == 1
            assert stats["executed"] == 1
    finally:
        svc.stop()


# -------------------------------------------------------- store budgeting
def test_scheduler_evicts_store_over_entry_budget(
    tmp_path, inproc_address, tiny_scenario
):
    svc = SchedulerService(
        store=ResultStore(tmp_path / "results"), store_max_entries=2
    ).start(inproc_address)
    try:
        with ServiceClient(inproc_address) as client:
            for i in range(4):
                client.result(client.submit(tiny_scenario(name=f"e{i}")))
            stats = client.stats()
            assert stats["executed"] == 4
            assert stats["evicted"] >= 2
    finally:
        svc.stop()
    assert len(ResultStore(tmp_path / "results")) <= 2
