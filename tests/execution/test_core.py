"""ExecutionCore: memoization, sweep resume, determinism."""

import pytest

import repro.execution.core as core_mod
from repro.execution import (
    ExecutionCore,
    ResultStore,
    Submission,
    as_submission,
    cluster_key,
    execute_scenarios,
    parallel_jobs,
)
from repro.scenario import run_scenario, sweep_scenarios


@pytest.fixture
def counted_runs(monkeypatch):
    """Count every actual simulation the core dispatches (a cache hit
    must execute zero simulator events, i.e. never reach the runner)."""
    calls = []

    def counting(scenario, **kwargs):
        calls.append(scenario.name)
        return run_scenario(scenario, **kwargs)

    monkeypatch.setattr(core_mod, "run_scenario", counting)
    return calls


# ------------------------------------------------------------- submissions
def test_as_submission_coerces_and_rejects(tiny_scenario):
    s = tiny_scenario()
    sub = as_submission(s)
    assert sub.scenario is s and sub.cacheable
    assert as_submission(sub) is sub
    assert sub.content_hash == s.content_hash()
    with pytest.raises(TypeError):
        as_submission("not a scenario")


def test_traced_submission_is_not_cacheable(tiny_scenario, tmp_path):
    sub = Submission(tiny_scenario(), trace_path=str(tmp_path / "t.jsonl"))
    assert not sub.cacheable
    assert Submission(tiny_scenario(), use_store=False).cacheable is False


def test_cluster_key_groups_by_cluster(tiny_scenario):
    a, b = tiny_scenario(seed=1), tiny_scenario(seed=1, name="other")
    c = tiny_scenario(seed=2)
    assert cluster_key(a) == cluster_key(b)
    assert cluster_key(a) != cluster_key(c)


# ------------------------------------------------------------- memoization
def test_second_submission_hits_store_with_zero_runs(
    tmp_path, tiny_scenario, counted_runs
):
    core = ExecutionCore(store=ResultStore(tmp_path / "results"))
    first = core.submit(tiny_scenario())
    assert counted_runs == ["tiny"]
    second = core.submit(tiny_scenario())
    # Byte-identical manifest, and the simulator never ran again.
    assert second.to_json() == first.to_json()
    assert counted_runs == ["tiny"]
    assert core.cache_hits == 1 and core.executed == 1


def test_within_batch_dedup(tmp_path, tiny_scenario, counted_runs):
    core = ExecutionCore(store=ResultStore(tmp_path))
    manifests = core.run([tiny_scenario(), tiny_scenario(), tiny_scenario()])
    assert counted_runs == ["tiny"]
    assert manifests[0].to_json() == manifests[1].to_json()
    assert manifests[1] is manifests[2]  # alias of the first execution


def test_no_store_always_executes(tiny_scenario, counted_runs):
    core = ExecutionCore()
    core.run([tiny_scenario(), tiny_scenario()])
    assert counted_runs == ["tiny", "tiny"]
    assert core.cache_hits == 0 and core.executed == 2


def test_interrupted_sweep_resumes_missing_cells_only(
    tmp_path, tiny_scenario, counted_runs
):
    """The resumability contract: a grid that died mid-way re-runs only
    the cells with no stored manifest."""
    base = tiny_scenario().to_dict()
    grid = sweep_scenarios(base, [("cluster.seed", [1, 2, 3, 4])])
    store = ResultStore(tmp_path / "results")

    # "Interrupted" run: only the first two cells completed.
    ExecutionCore(store=store).run(grid[:2])
    assert len(counted_runs) == 2

    # Resume over the full grid: exactly the two missing cells execute.
    core = ExecutionCore(store=store)
    manifests = core.run(grid)
    assert len(counted_runs) == 4
    assert core.cache_hits == 2 and core.executed == 2
    hashes = [m.scenario_hash for m in manifests]
    assert hashes == [s.content_hash() for s in grid]


def test_store_results_identical_to_fresh_run(tmp_path, tiny_scenario):
    """A cache hit reproduces the manifest a fresh simulation produces
    (everything but wall time, which metrics_hash excludes)."""
    cached = ExecutionCore(store=ResultStore(tmp_path)).submit(tiny_scenario())
    fresh = run_scenario(tiny_scenario())
    assert cached.metrics_hash() == fresh.metrics_hash()
    assert cached.rows == fresh.rows


# ----------------------------------------------------------- pool parity
def test_parallel_run_byte_identical_to_serial(tiny_scenario):
    scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3, 4)]
    serial = [m.metrics_hash() for m in execute_scenarios(scenarios)]
    with parallel_jobs(2):
        parallel = [m.metrics_hash() for m in execute_scenarios(scenarios)]
    assert parallel == serial


def test_store_populated_through_the_pool(tmp_path, tiny_scenario):
    store = ResultStore(tmp_path / "results")
    scenarios = [tiny_scenario(seed=s) for s in (1, 2, 3)]
    with parallel_jobs(2):
        ExecutionCore(store=store).run(scenarios)
    assert len(store) == 3
    # A second parallel pass is all hits.
    core = ExecutionCore(store=store)
    with parallel_jobs(2):
        core.run(scenarios)
    assert core.cache_hits == 3 and core.executed == 0
