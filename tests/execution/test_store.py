"""ResultStore: persistence, atomicity, schema versioning."""

import json

import pytest

from repro.execution import RESULT_SCHEMA, ResultStore, ResultStoreError
from repro.execution.atomic import atomic_write_json
from repro.scenario import run_scenario


@pytest.fixture
def manifest(tiny_scenario):
    return run_scenario(tiny_scenario())


def test_put_get_round_trip(tmp_path, manifest):
    store = ResultStore(tmp_path / "results")
    assert store.get(manifest.scenario_hash) is None
    assert store.misses == 1
    path = store.put(manifest)
    assert path.is_file()
    again = store.get(manifest.scenario_hash)
    assert store.hits == 1
    assert again.to_json() == manifest.to_json()
    assert again.metrics_hash() == manifest.metrics_hash()
    assert manifest.scenario_hash in store
    assert list(store.keys()) == [manifest.scenario_hash]
    assert len(store) == 1


def test_corrupt_entry_is_a_miss(tmp_path, manifest):
    store = ResultStore(tmp_path)
    store.put(manifest)
    store.path_for(manifest.scenario_hash).write_text("{torn")
    assert store.get(manifest.scenario_hash) is None


def test_unknown_schema_raises_with_keys(tmp_path, manifest):
    store = ResultStore(tmp_path)
    path = store.put(manifest)
    data = json.loads(path.read_text())
    data["schema"] = RESULT_SCHEMA + 99
    path.write_text(json.dumps(data))
    with pytest.raises(ResultStoreError) as err:
        store.get(manifest.scenario_hash)
    msg = str(err.value)
    assert str(RESULT_SCHEMA + 99) in msg
    assert "manifest" in msg and "schema" in msg  # the entry's keys
    assert str(store.root) in msg


def test_missing_schema_field_raises(tmp_path, manifest):
    store = ResultStore(tmp_path)
    path = store.put(manifest)
    path.write_text(json.dumps({"manifest": manifest.to_dict()}))
    with pytest.raises(ResultStoreError) as err:
        store.get(manifest.scenario_hash)
    assert "None" in str(err.value)


def test_discard(tmp_path, manifest):
    store = ResultStore(tmp_path)
    store.put(manifest)
    assert store.discard(manifest.scenario_hash)
    assert not store.discard(manifest.scenario_hash)
    assert manifest.scenario_hash not in store


def test_default_store_under_cache_dir(isolated_cache):
    store = ResultStore.default()
    assert store.root == isolated_cache / "results"


def test_atomic_write_leaves_no_temp_debris(tmp_path):
    target = tmp_path / "deep" / "entry.json"
    atomic_write_json(target, {"a": 1})
    assert json.loads(target.read_text()) == {"a": 1}
    # Unserialisable payload: write fails, temp file cleaned up, the
    # previous published value untouched.
    with pytest.raises(TypeError):
        atomic_write_json(target, {"bad": object()})
    assert json.loads(target.read_text()) == {"a": 1}
    assert list(target.parent.iterdir()) == [target]


def test_atomic_write_concurrent_writers_never_torn(tmp_path):
    """Concurrent writers race benignly: every observable state of the
    file is one writer's complete document."""
    import threading

    target = tmp_path / "entry.json"
    payloads = [{"writer": i, "blob": "x" * 4096} for i in range(8)]
    stop = threading.Event()
    torn: list[Exception] = []

    def reader():
        while not stop.is_set():
            try:
                data = json.loads(target.read_text())
                assert data["blob"] == "x" * 4096
            except FileNotFoundError:
                continue
            except (ValueError, AssertionError) as exc:  # pragma: no cover
                torn.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    writers = [
        threading.Thread(
            target=lambda p=p: [atomic_write_json(target, p)
                                for _ in range(20)]
        )
        for p in payloads
    ]
    for w in writers:
        w.start()
    for w in writers:
        w.join()
    stop.set()
    for t in threads:
        t.join()
    assert not torn
    assert json.loads(target.read_text())["writer"] in range(8)
