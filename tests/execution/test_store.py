"""ResultStore: persistence, atomicity, schema versioning, eviction."""

import json
import os

import pytest

from repro.execution import RESULT_SCHEMA, ResultStore, ResultStoreError
from repro.execution.atomic import atomic_write_json
from repro.scenario import run_scenario


@pytest.fixture
def manifest(tiny_scenario):
    return run_scenario(tiny_scenario())


def test_put_get_round_trip(tmp_path, manifest):
    store = ResultStore(tmp_path / "results")
    assert store.get(manifest.scenario_hash) is None
    assert store.misses == 1
    path = store.put(manifest)
    assert path.is_file()
    again = store.get(manifest.scenario_hash)
    assert store.hits == 1
    assert again.to_json() == manifest.to_json()
    assert again.metrics_hash() == manifest.metrics_hash()
    assert manifest.scenario_hash in store
    assert list(store.keys()) == [manifest.scenario_hash]
    assert len(store) == 1


def test_corrupt_entry_is_a_counted_miss(tmp_path, manifest):
    """Corruption is a miss (the run re-executes) but no longer a
    *silent* one: the ``corrupt`` counter records it."""
    store = ResultStore(tmp_path)
    store.put(manifest)
    store.path_for(manifest.scenario_hash).write_text("{torn")
    assert store.get(manifest.scenario_hash) is None
    assert store.misses == 1 and store.corrupt == 1
    # A plain absent entry is a miss but not a corruption.
    assert store.get("no-such-hash") is None
    assert store.misses == 2 and store.corrupt == 1


def test_unknown_schema_raises_with_keys(tmp_path, manifest):
    store = ResultStore(tmp_path)
    path = store.put(manifest)
    data = json.loads(path.read_text())
    data["schema"] = RESULT_SCHEMA + 99
    path.write_text(json.dumps(data))
    with pytest.raises(ResultStoreError) as err:
        store.get(manifest.scenario_hash)
    msg = str(err.value)
    assert str(RESULT_SCHEMA + 99) in msg
    assert "manifest" in msg and "schema" in msg  # the entry's keys
    assert str(store.root) in msg


def test_missing_schema_field_raises(tmp_path, manifest):
    store = ResultStore(tmp_path)
    path = store.put(manifest)
    path.write_text(json.dumps({"manifest": manifest.to_dict()}))
    with pytest.raises(ResultStoreError) as err:
        store.get(manifest.scenario_hash)
    assert "None" in str(err.value)


def test_discard(tmp_path, manifest):
    store = ResultStore(tmp_path)
    store.put(manifest)
    assert store.discard(manifest.scenario_hash)
    assert not store.discard(manifest.scenario_hash)
    assert manifest.scenario_hash not in store


def test_default_store_under_cache_dir(isolated_cache):
    store = ResultStore.default()
    assert store.root == isolated_cache / "results"


def _fake_entry(store, name, size, mtime):
    path = store.path_for(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("x" * size)
    os.utime(path, (mtime, mtime))
    return path


def test_entries_and_size(tmp_path):
    store = ResultStore(tmp_path)
    assert store.entries() == [] and store.size_bytes() == 0
    _fake_entry(store, "b", size=10, mtime=200)
    _fake_entry(store, "a", size=30, mtime=100)
    assert [(h, s) for h, _m, s in store.entries()] == [("a", 30), ("b", 10)]
    assert store.size_bytes() == 40


def test_evict_lru_by_bytes(tmp_path):
    store = ResultStore(tmp_path)
    for i, mtime in enumerate((100, 300, 200)):
        _fake_entry(store, f"h{i}", size=100, mtime=mtime)
    report = store.evict(max_bytes=250)
    # Oldest first: h0 (mtime 100) goes, h2 + h1 (250 > 200) stay.
    assert report.removed == ["h0"]
    assert report.freed_bytes == 100
    assert report.kept_entries == 2 and report.kept_bytes == 200
    assert store.evicted == 1
    assert "h0" not in store and "h1" in store and "h2" in store


def test_evict_by_entry_count_and_dry_run(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(4):
        _fake_entry(store, f"h{i}", size=10, mtime=100 + i)
    dry = store.evict(max_entries=1, dry_run=True)
    assert dry.removed == ["h0", "h1", "h2"] and dry.dry_run
    assert len(store) == 4  # nothing actually deleted
    wet = store.evict(max_entries=1)
    assert wet.removed == ["h0", "h1", "h2"]
    assert list(store.keys()) == ["h3"]


def test_evict_without_budget_is_a_noop(tmp_path):
    store = ResultStore(tmp_path)
    _fake_entry(store, "h0", size=10, mtime=100)
    report = store.evict()
    assert report.removed == [] and len(store) == 1


def test_get_refreshes_mtime_for_lru(tmp_path, manifest):
    """A *read* keeps an entry warm: eviction is least-recently-used,
    not least-recently-written."""
    store = ResultStore(tmp_path)
    path = store.put(manifest)
    os.utime(path, (100, 100))
    _fake_entry(store, "cold", size=10, mtime=200)
    assert store.get(manifest.scenario_hash) is not None  # touches mtime
    assert path.stat().st_mtime > 200
    report = store.evict(max_entries=1)
    assert report.removed == ["cold"]
    assert manifest.scenario_hash in store


def test_atomic_write_fsyncs_file_and_directory(tmp_path, monkeypatch):
    """Satellite contract: the rename is made durable — the file is
    fsynced before publication and the containing directory after."""
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
    )
    target = tmp_path / "sub" / "entry.json"
    atomic_write_json(target, {"a": 1})
    assert len(synced) >= 2  # temp file + containing directory
    from repro.execution.atomic import fsync_dir

    synced.clear()
    fsync_dir(tmp_path / "sub")
    assert len(synced) == 1
    fsync_dir(tmp_path / "missing")  # best-effort: no raise


def test_atomic_write_leaves_no_temp_debris(tmp_path):
    target = tmp_path / "deep" / "entry.json"
    atomic_write_json(target, {"a": 1})
    assert json.loads(target.read_text()) == {"a": 1}
    # Unserialisable payload: write fails, temp file cleaned up, the
    # previous published value untouched.
    with pytest.raises(TypeError):
        atomic_write_json(target, {"bad": object()})
    assert json.loads(target.read_text()) == {"a": 1}
    assert list(target.parent.iterdir()) == [target]


def test_atomic_write_concurrent_writers_never_torn(tmp_path):
    """Concurrent writers race benignly: every observable state of the
    file is one writer's complete document."""
    import threading

    target = tmp_path / "entry.json"
    payloads = [{"writer": i, "blob": "x" * 4096} for i in range(8)]
    stop = threading.Event()
    torn: list[Exception] = []

    def reader():
        while not stop.is_set():
            try:
                data = json.loads(target.read_text())
                assert data["blob"] == "x" * 4096
            except FileNotFoundError:
                continue
            except (ValueError, AssertionError) as exc:  # pragma: no cover
                torn.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    writers = [
        threading.Thread(
            target=lambda p=p: [atomic_write_json(target, p)
                                for _ in range(20)]
        )
        for p in payloads
    ]
    for w in writers:
        w.start()
    for w in writers:
        w.join()
    stop.set()
    for t in threads:
        t.join()
    assert not torn
    assert json.loads(target.read_text())["writer"] in range(8)
