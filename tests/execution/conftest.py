import pathlib

import pytest

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.scenario import single_app

EXAMPLES = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "scenarios"
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point both persistent caches (calibration + result store) at a
    throwaway directory so tests never touch ``~/.cache``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path / "cache"


@pytest.fixture
def tiny_scenario():
    """A fast single-app run (1/2048 scale, ~centiseconds of work)."""
    def build(seed: int = 20160531, name: str = "tiny"):
        config = default_cluster(scale=1.0 / 2048, seed=seed)
        return single_app(
            config, PolicySpec.native(), "teravalidate",
            name=name, params={"input_path": "/in/x"},
            preloads=(("/in/x", 25 * GB),), max_cores=48,
        )
    return build
