"""Tests for the Hive engine and the TPC-H query models."""

import pytest

from repro.cluster import BigDataCluster
from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.hive import HiveQuery, run_query, tpch_q9, tpch_q21
from repro.mapreduce import JobSpec


def test_query_validation():
    with pytest.raises(ValueError):
        HiveQuery(name="q", stages=(), table_paths=(), table_bytes=())
    with pytest.raises(ValueError):
        HiveQuery(
            name="q",
            stages=(JobSpec(name="s", n_maps=1),),
            table_paths=("/t",),
            table_bytes=(),
        )


def test_tpch_specs_match_paper_totals():
    cfg = default_cluster()
    q9 = tpch_q9(cfg)
    q21 = tpch_q21(cfg)
    assert q9.table_bytes == (53 * GB,)
    assert q21.table_bytes == (45 * GB,)
    # Q9's declared intermediate volume dominates Q21's (120 vs 40 GB):
    shuffle9 = sum(s.shuffle_bytes for s in q9.stages)
    shuffle21 = sum(s.shuffle_bytes for s in q21.stages)
    assert shuffle9 > 2.0 * shuffle21
    # Up to 15 sequential jobs per query (paper): ours are within that.
    assert 1 < len(q9.stages) <= 15
    assert 1 < len(q21.stages) <= 15


def test_query_stages_run_sequentially():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    q = tpch_q21(cfg)
    cl.preload_input(q.table_paths[0], q.table_bytes[0])
    run = run_query(cl, q, max_cores=96)
    cl.run(run.done)
    assert run.runtime > 0
    assert len(run.stage_jobs) == len(q.stages)
    for earlier, later in zip(run.stage_jobs, run.stage_jobs[1:]):
        assert later.submit_time >= earlier.finish_time


def test_stage_inputs_materialised_from_producers():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    q = tpch_q9(cfg)
    cl.preload_input(q.table_paths[0], q.table_bytes[0])
    run = run_query(cl, q, max_cores=96)
    cl.run(run.done)
    # Every intermediate stage input exists in the namespace afterwards.
    for stage in q.stages[1:]:
        assert cl.namenode.exists(stage.input_path)


def test_missing_producer_rejected():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    bad = HiveQuery(
        name="bad",
        stages=(
            JobSpec(name="s0", input_path="/tmp/unknown", n_reduces=0),
        ),
        table_paths=("/t",),
        table_bytes=(1 * GB,),
    )
    run = run_query(cl, bad)
    with pytest.raises(ValueError, match="no producer"):
        cl.sim.run(until=run.done)


def test_delayed_query_submission():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    q = tpch_q21(cfg)
    cl.preload_input(q.table_paths[0], q.table_bytes[0])
    run = run_query(cl, q, max_cores=96, delay=4.0)
    cl.run(run.done)
    assert run.submit_time == 4.0


def test_query_runtime_before_finish_raises():
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    q = tpch_q21(cfg)
    cl.preload_input(q.table_paths[0], q.table_bytes[0])
    run = run_query(cl, q, max_cores=96)
    with pytest.raises(RuntimeError):
        _ = run.runtime
