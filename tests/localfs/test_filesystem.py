"""Unit tests for intermediate-data I/O via LocalFS."""

import pytest

from repro.config import MB, default_cluster
from repro.core import DataNodeIO, IOClass, IOTag, PolicySpec
from repro.localfs import LocalFS
from repro.simcore import Simulator


def make_lfs():
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.native())
    return sim, node, LocalFS(sim, node, chunk=4 * MB)


def test_write_goes_to_tmp_device_intermediate_class():
    sim, node, lfs = make_lfs()
    seen = []
    node.schedulers[IOClass.INTERMEDIATE].add_submit_hook(
        lambda r: seen.append((r.op, r.io_class))
    )

    def proc():
        got = yield from lfs.write(10 * MB, IOTag("app"))
        return got

    assert sim.run(until=sim.process(proc())) == 10 * MB
    assert node.tmp_device.write_meter.total == 10 * MB
    assert node.hdfs_device.write_meter.total == 0
    assert all(op == "write" and c is IOClass.INTERMEDIATE for op, c in seen)


def test_read_intermediate():
    sim, node, lfs = make_lfs()

    def proc():
        got = yield from lfs.read(6 * MB, IOTag("app"))
        return got

    assert sim.run(until=sim.process(proc())) == 6 * MB
    assert node.tmp_device.read_meter.total == 6 * MB


def test_servlet_read_uses_network_class():
    sim, node, lfs = make_lfs()
    seen = []
    node.schedulers[IOClass.NETWORK].add_submit_hook(
        lambda r: seen.append(r.io_class)
    )

    def proc():
        yield from lfs.servlet_read(4 * MB, IOTag("app"))

    sim.run(until=sim.process(proc()))
    assert seen == [IOClass.NETWORK]
    # Served by the same physical tmp disk.
    assert node.tmp_device.read_meter.total == 4 * MB


def test_zero_bytes_rejected():
    sim, node, lfs = make_lfs()

    def proc():
        yield from lfs.write(0, IOTag("app"))

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()
