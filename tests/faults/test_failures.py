"""End-to-end failure handling: failover, retry, outage, determinism."""

from dataclasses import replace

import pytest

from repro import GB, BigDataCluster, PolicySpec, default_cluster
from repro.core import DepthController
from repro.faults import FaultEvent, FaultPlan
from repro.mapreduce import JobSpec
from repro.simcore import SimulationError
from repro.telemetry import REPLICA_FAILOVER, TASK_RETRY, CounterSink

CFG = default_cluster()
CTRL = DepthController.symmetric(0.05)

SCAN = dict(name="scan", input_path="/in/w", n_reduces=0)


def _scan_run(cfg=CFG, policy=None, faults=None, nodes=None):
    """One 10 GB scan under ``policy``; returns (cluster, job, counters)."""
    cl = BigDataCluster(cfg, policy or PolicySpec.native(), faults=faults)
    failovers = CounterSink(cl.telemetry, REPLICA_FAILOVER)
    retries = CounterSink(cl.telemetry, TASK_RETRY)
    cl.preload_input("/in/w", 10 * GB, nodes=nodes)
    job = cl.submit(JobSpec(**SCAN), max_cores=96)
    return cl, job, failovers, retries


def _healthy_runtime(**kw):
    cl, job, _f, _r = _scan_run(**kw)
    cl.run()
    return job.runtime


def test_empty_plan_is_equivalent_to_no_plan():
    """FaultPlan() arms the machinery but injects nothing: the run must
    be indistinguishable from one without the fault layer."""
    runs = []
    for faults in (None, FaultPlan()):
        cl, job, _f, _r = _scan_run(faults=faults)
        cl.run()
        runs.append((job.runtime, cl.total_service_by_app()))
    assert runs[0] == runs[1]


def test_transient_crash_jobs_finish_with_task_retries():
    t0 = _healthy_runtime()
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.3 * t0, "dn00", duration=0.2 * t0),
    ))
    cl, job, _failovers, retries = _scan_run(faults=plan)
    cl.run()
    assert job.finish_time is not None
    assert retries.count >= 1          # dn00's tasks were re-attempted
    assert job.runtime >= t0           # losing a node never speeds it up
    assert cl.faults.injected == 1


def test_crash_of_sole_replica_holder_causes_failover():
    """All replicas on dn00 (skewed preload), dn00 crashes transiently:
    remote readers must fail over / retry until the node returns."""
    t0 = _healthy_runtime(nodes=["dn00"])
    plan = FaultPlan(
        events=(
            FaultEvent.node_crash(0.3 * t0, "dn00", duration=0.1 * t0),
        ),
        # 3 retries at backoff b, 2b, 4b: the last lands past recovery.
        read_backoff=0.05 * t0,
    )
    cl, job, failovers, _retries = _scan_run(faults=plan, nodes=["dn00"])
    cl.run()
    assert job.finish_time is not None
    assert failovers.count >= 1


def test_same_seed_and_plan_give_identical_runs():
    t0 = _healthy_runtime()
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.3 * t0, "dn00", duration=0.2 * t0, jitter=0.1),
        FaultEvent.slow_disk(0.5 * t0, "dn01", duration=0.2 * t0, factor=0.25),
    ))

    def run():
        cl, job, failovers, retries = _scan_run(faults=plan)
        cl.run()
        return (job.runtime, cl.total_service_by_app(),
                failovers.count, retries.count, cl.sim.orphaned_faults)

    assert run() == run()


def test_retry_budget_exhaustion_raises_simulation_error():
    cfg = replace(CFG, yarn=replace(CFG.yarn, max_task_attempts=1))
    t0 = _healthy_runtime(cfg=cfg)
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.3 * t0, "dn00"),  # permanent
    ))
    cl, _job, _f, _r = _scan_run(cfg=cfg, faults=plan)
    with pytest.raises(SimulationError, match="attempt"):
        cl.run()


def test_broker_outage_skips_rounds_and_job_finishes():
    # A fast sync period so coordination rounds land inside the window.
    policy = PolicySpec(kind="sfqd2", controller=CTRL, coordinated=True,
                        sync_period=0.02)
    t0 = _healthy_runtime(policy=policy)
    plan = FaultPlan(events=(
        FaultEvent.broker_outage(0.2 * t0, duration=0.5 * t0),
    ))
    cl, job, _f, _r = _scan_run(policy=policy, faults=plan)
    cl.run()
    assert job.finish_time is not None
    assert not cl.broker.down
    skipped = sum(c.rounds_skipped
                  for n in cl.nodes.values() for c in n.broker_clients)
    assert skipped >= 1
