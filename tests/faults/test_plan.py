"""Unit tests for FaultEvent / FaultPlan: validation and serialisation."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    NODE_CRASH,
    FaultEvent,
    FaultPlan,
)


def small_plan():
    return FaultPlan(
        events=(
            FaultEvent.node_crash(1.0, "dn01", duration=2.0),
            FaultEvent.slow_disk(3.0, "dn02", duration=1.0, factor=0.5,
                                 device="tmp"),
            FaultEvent.link_degrade(4.0, "dn03", duration=1.0, factor=0.25,
                                    jitter=0.5),
            FaultEvent.broker_outage(5.0, duration=2.0),
        ),
        read_backoff=0.125,
        read_timeout=1.5,
        max_read_attempts=3,
    )


# ------------------------------------------------------------- validation

def test_fault_kinds_is_complete():
    assert set(FAULT_KINDS) == {
        "node_crash", "slow_disk", "link_degrade", "broker_outage"
    }


@pytest.mark.parametrize("bad", [
    dict(kind="meteor_strike", at=1.0, target="dn01"),
    dict(kind=NODE_CRASH, at=-1.0, target="dn01"),
    dict(kind=NODE_CRASH, at=1.0, target=""),            # needs a target
    dict(kind=NODE_CRASH, at=1.0, target="dn01", duration=-1.0),
    dict(kind=NODE_CRASH, at=1.0, target="dn01", jitter=-0.1),
    dict(kind="slow_disk", at=1.0, target="dn01"),       # duration <= 0
    dict(kind="slow_disk", at=1.0, target="dn01", duration=1.0, factor=0.0),
    dict(kind="slow_disk", at=1.0, target="dn01", duration=1.0, factor=1.5),
    dict(kind="slow_disk", at=1.0, target="dn01", duration=1.0, factor=0.5,
         device="floppy"),
    dict(kind="link_degrade", at=1.0, target="dn01", duration=1.0, factor=2.0),
    dict(kind="broker_outage", at=1.0, target="dn01", duration=1.0),
    dict(kind="broker_outage", at=1.0),                  # duration <= 0
])
def test_invalid_events_rejected(bad):
    with pytest.raises(ValueError):
        FaultEvent(**bad)


def test_permanent_crash_is_duration_zero():
    ev = FaultEvent.node_crash(1.0, "dn01")
    assert ev.duration == 0.0  # permanent by convention


def test_plan_validation():
    ev = FaultEvent.broker_outage(1.0, duration=1.0)
    with pytest.raises(ValueError):
        FaultPlan(events=(ev,), read_backoff=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(events=(ev,), read_timeout=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(events=(ev,), max_read_attempts=0)
    with pytest.raises(TypeError):
        FaultPlan(events=({"kind": "node_crash"},))


def test_plan_coerces_events_to_tuple():
    ev = FaultEvent.broker_outage(1.0, duration=1.0)
    plan = FaultPlan(events=[ev])
    assert plan.events == (ev,)
    assert isinstance(plan.events, tuple)


# --------------------------------------------------------- serialisation

def test_round_trip_preserves_equality():
    plan = small_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_canonical_json_is_stable():
    # Equal plans built independently serialise to identical bytes.
    assert small_plan().to_json() == small_plan().to_json()
    text = small_plan().to_json()
    assert FaultPlan.from_json(text).to_json() == text


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan"):
        FaultPlan.from_dict({"events": [], "blast_radius": 3})
    with pytest.raises(ValueError, match="unknown FaultEvent"):
        FaultEvent.from_dict({"kind": NODE_CRASH, "at": 1.0,
                              "target": "dn01", "severity": "high"})


def test_from_dict_accepts_event_instances():
    ev = FaultEvent.node_crash(1.0, "dn01", duration=2.0)
    plan = FaultPlan.from_dict({"events": [ev]})
    assert plan.events == (ev,)


def test_from_dict_rejects_non_sequence_events():
    with pytest.raises(TypeError):
        FaultPlan.from_dict({"events": "node_crash"})


def test_default_plan_has_no_events():
    plan = FaultPlan()
    assert plan.events == ()
    assert plan.max_read_attempts >= 1
