"""Unit tests for the FaultInjector against a small cluster."""

import pytest

from repro import GB, BigDataCluster, PolicySpec, default_cluster
from repro.faults import FaultEvent, FaultPlan
from repro.mapreduce import JobSpec
from repro.telemetry import FAULT_INJECTED

TINY = default_cluster(scale=1 / 256)


def test_unknown_target_rejected_at_construction():
    plan = FaultPlan(events=(FaultEvent.node_crash(1.0, "ghost"),))
    with pytest.raises(ValueError, match="unknown node"):
        BigDataCluster(TINY, PolicySpec.native(), faults=plan)


def test_injector_cannot_be_armed_twice():
    cl = BigDataCluster(TINY, PolicySpec.native(), faults=FaultPlan())
    with pytest.raises(RuntimeError):
        cl.faults.arm()  # the cluster already armed it


def test_no_plan_means_no_injector():
    cl = BigDataCluster(TINY, PolicySpec.native())
    assert cl.faults is None


def test_crash_and_recovery_toggle_liveness():
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.1, "dn00", duration=0.2),
    ))
    cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
    cl.run_for(0.15)  # mid-outage
    assert not cl.faults.alive("dn00")
    assert not cl.namenode.is_alive("dn00")
    assert not cl.rm.is_alive("dn00")
    assert cl.nodes["dn00"].hdfs_device.failed
    assert cl.net.egress["dn00"].failed
    cl.run_for(0.5)  # past recovery
    assert cl.faults.alive("dn00")
    assert cl.namenode.is_alive("dn00")
    assert cl.rm.is_alive("dn00")
    assert not cl.nodes["dn00"].hdfs_device.failed
    assert not cl.net.egress["dn00"].failed
    assert cl.faults.injected == 1


def test_crashing_a_crashed_node_is_noop():
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.1, "dn00", duration=0.3),
        FaultEvent.node_crash(0.2, "dn00", duration=0.05),  # overlaps: no-op
    ))
    cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
    cl.run_for(1.0)
    assert cl.faults.injected == 2
    assert cl.faults.alive("dn00")  # recovered via the first crash


def test_broker_outage_noop_without_broker():
    plan = FaultPlan(events=(
        FaultEvent.broker_outage(0.1, duration=0.1),
    ))
    cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
    assert cl.broker is None
    cl.run_for(0.5)
    assert cl.faults.injected == 1


def test_jitter_is_deterministic_across_runs():
    plan = FaultPlan(events=(
        FaultEvent.node_crash(0.1, "dn00", duration=0.1, jitter=0.5),
        FaultEvent.broker_outage(0.2, duration=0.1, jitter=0.5),
    ))

    def fire_times():
        cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
        times = []
        cl.telemetry.subscribe(FAULT_INJECTED, lambda ev: times.append(ev.t))
        cl.run_for(2.0)
        return times

    first = fire_times()
    assert first == fire_times()      # same seed + plan => same schedule
    assert len(first) == 2
    assert first[0] >= 0.1            # jitter only ever delays


def test_slow_disk_slows_a_scan():
    def runtime(plan):
        cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
        cl.preload_input("/in/w", 10 * GB)
        job = cl.submit(JobSpec(name="scan", input_path="/in/w",
                                n_reduces=0), max_cores=96)
        cl.run(job.done)
        return job.runtime

    healthy = runtime(None)
    slow = runtime(FaultPlan(events=tuple(
        FaultEvent.slow_disk(0.0, f"dn{i:02d}", duration=1e6, factor=0.1)
        for i in range(8)
    )))
    assert slow > 1.5 * healthy


def test_link_degrade_fires_and_restores():
    plan = FaultPlan(events=(
        FaultEvent.link_degrade(0.1, "dn00", duration=0.2, factor=0.5),
    ))
    cl = BigDataCluster(TINY, PolicySpec.native(), faults=plan)
    cl.run_for(0.5)
    assert cl.faults.injected == 1
    assert not cl.net.egress["dn00"].failed  # degraded, never failed
