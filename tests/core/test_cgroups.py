"""Unit tests for the cgroups blkio baseline."""

import pytest

from repro.config import MB, StorageProfile
from repro.core import (
    CgroupsThrottleScheduler,
    CgroupsWeightScheduler,
    IOClass,
    IORequest,
    IOTag,
)
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def submit(sim, sched, app, weight=1.0, nbytes=1 * MB, op="write"):
    req = IORequest(sim, IOTag(app, weight), op, nbytes, IOClass.INTERMEDIATE)
    sched.submit(req)
    return req


def test_weight_mode_shares_proportionally():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsWeightScheduler(sim, dev)
    for _ in range(100):
        submit(sim, sched, "hi", weight=100.0)
        submit(sim, sched, "lo", weight=1.0)
    sim.run(until=0.6)
    hi = sched.stats.service_by_app["hi"]
    lo = sched.stats.service_by_app.get("lo", 0.0)
    assert hi > 5 * max(lo, 1.0)


def test_throttle_caps_rate():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsThrottleScheduler(sim, dev, rates_bps={"capped": 1.0 * MB})
    reqs = [submit(sim, sched, "capped", nbytes=1 * MB) for _ in range(5)]
    sim.run()
    # 5 x 1MB at 1 MB/s: the last request cannot *dispatch* before t=4.
    assert all(r.completion.processed for r in reqs)
    assert reqs[-1].t_dispatched >= 4.0


def test_throttle_is_not_work_conserving():
    """Even with the device idle, a capped app is paced — the defining
    difference from IBIS (§7.4)."""
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsThrottleScheduler(sim, dev, rates_bps={"capped": 10.0 * MB})
    r1 = submit(sim, sched, "capped", nbytes=10 * MB)
    r2 = submit(sim, sched, "capped", nbytes=10 * MB)
    sim.run()
    # Device could do 100 MB/s but pacing releases r2 only at t=1.
    assert r2.t_dispatched == pytest.approx(1.0)


def test_throttle_uncapped_apps_passthrough():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsThrottleScheduler(sim, dev, rates_bps={"capped": 1.0 * MB})
    free = submit(sim, sched, "free", nbytes=4 * MB)
    assert free.t_dispatched == 0.0
    sim.run()
    assert free.completion.processed


def test_throttle_queue_accounting():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsThrottleScheduler(sim, dev, rates_bps={"c": 1.0 * MB})
    for _ in range(3):
        submit(sim, sched, "c", nbytes=1 * MB)
    assert sched.queued == 2  # first dispatched immediately, two paced
    sim.run()
    assert sched.queued == 0


def test_throttle_rate_validation():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    with pytest.raises(ValueError):
        CgroupsThrottleScheduler(sim, dev, rates_bps={"x": 0.0})


def test_throttle_bucket_refills_over_idle_gaps():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = CgroupsThrottleScheduler(sim, dev, rates_bps={"c": 1.0 * MB})

    def proc():
        r1 = IORequest(sim, IOTag("c", 1.0), "write", 1 * MB, IOClass.INTERMEDIATE)
        yield sched.submit(r1)
        yield sim.timeout(10.0)  # long idle: bucket owes nothing
        r2 = IORequest(sim, IOTag("c", 1.0), "write", 1 * MB, IOClass.INTERMEDIATE)
        t0 = sim.now
        yield sched.submit(r2)
        return r2.t_dispatched - t0

    wait = sim.run(until=sim.process(proc()))
    assert wait == pytest.approx(0.0)  # no residual debt after the gap
