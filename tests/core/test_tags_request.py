"""Unit tests for I/O tags and requests."""

import pytest

from repro.core import IOClass, IORequest, IOTag
from repro.simcore import Simulator


def test_tag_validation():
    with pytest.raises(ValueError):
        IOTag(app_id="", weight=1.0)
    with pytest.raises(ValueError):
        IOTag(app_id="a", weight=0.0)
    with pytest.raises(ValueError):
        IOTag(app_id="a", weight=-3.0)


def test_tag_is_hashable_value_object():
    assert IOTag("a", 2.0) == IOTag("a", 2.0)
    assert len({IOTag("a", 2.0), IOTag("a", 2.0)}) == 1


def test_request_carries_tag_fields():
    sim = Simulator()
    req = IORequest(sim, IOTag("app1", 32.0), "read", 1024, IOClass.NETWORK)
    assert req.app_id == "app1"
    assert req.weight == 32.0
    assert req.io_class is IOClass.NETWORK
    assert req.submit_time == 0.0
    assert req.t_dispatched is None


def test_request_validation():
    sim = Simulator()
    tag = IOTag("a")
    with pytest.raises(ValueError):
        IORequest(sim, tag, "erase", 100)
    with pytest.raises(ValueError):
        IORequest(sim, tag, "read", 0)


def test_io_class_members():
    assert {c.value for c in IOClass} == {"persistent", "intermediate", "network"}
