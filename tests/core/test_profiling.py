"""Unit tests for the reference-latency profiling procedure (§4)."""

import pytest

from repro.config import HDD_PROFILE, MB, SSD_PROFILE, default_cluster
from repro.core.profiling import (
    ProfilePoint,
    calibrate_controller,
    profile_device,
    reference_latency,
)


def test_profile_points_monotone_throughput_and_latency():
    points = profile_device(HDD_PROFILE, "read", chunk=4 * MB, max_concurrency=8,
                            duration=5.0)
    assert len(points) == 8
    thr = [p.throughput for p in points]
    lat = [p.latency for p in points]
    # Throughput grows (to saturation) and latency grows with concurrency.
    assert thr[-1] > thr[0]
    assert lat[-1] > lat[0]
    assert all(p.concurrency == i + 1 for i, p in enumerate(points))


def test_profile_rejects_bad_op():
    with pytest.raises(ValueError):
        profile_device(HDD_PROFILE, "erase", chunk=1 * MB)


def test_reference_latency_picks_knee():
    points = [
        ProfilePoint(1, 0.010, 50.0),
        ProfilePoint(2, 0.020, 80.0),
        ProfilePoint(3, 0.030, 95.0),
        ProfilePoint(4, 0.040, 100.0),
    ]
    # 0.9 * 100 = 90 -> first point at or above is n=3.
    assert reference_latency(points, 0.9) == 0.030
    assert reference_latency(points, 0.5) == 0.010


def test_reference_latency_validation():
    with pytest.raises(ValueError):
        reference_latency([], 0.9)
    with pytest.raises(ValueError):
        reference_latency([ProfilePoint(1, 1.0, 1.0)], 0.0)


def test_calibrate_controller_hdd_is_symmetricish():
    cfg = default_cluster()
    ctrl = calibrate_controller(cfg)
    # HDD: identical read/write service -> identical references.
    assert ctrl.ref_latency_read == pytest.approx(ctrl.ref_latency_write)
    assert ctrl.ref_latency_read > 0


def test_calibrate_controller_ssd_asymmetric():
    cfg = default_cluster(storage=SSD_PROFILE)
    ctrl = calibrate_controller(cfg)
    # Writes cost 3x on flash: the write reference must be clearly higher.
    assert ctrl.ref_latency_write > 1.5 * ctrl.ref_latency_read
