"""Theory-backed invariants of the SFQ family.

SFQ's fairness theorem bounds the normalised service gap of two
continuously backlogged flows by one maximum-cost request per flow;
SFQ(D) relaxes the bound by the dispatch depth.  These tests check the
bound against the implementation over randomized workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, StorageProfile
from repro.core import IOClass, IORequest, IOTag, SFQDScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice

FCFS = StorageProfile(name="f", peak_rate=100.0 * MB, n_half=0.5,
                      discipline="fcfs")


def closed_loop(sim, sched, app, weight, nbytes, streams):
    def stream():
        while True:
            req = IORequest(sim, IOTag(app, weight), "read", nbytes,
                            IOClass.PERSISTENT)
            yield sched.submit(req)

    for _ in range(streams):
        sim.process(stream())


@settings(max_examples=25, deadline=None)
@given(
    wa=st.floats(min_value=0.5, max_value=16.0),
    wb=st.floats(min_value=0.5, max_value=16.0),
    depth=st.integers(min_value=1, max_value=6),
    size_mb=st.integers(min_value=1, max_value=4),
)
def test_property_sfq_fairness_bound(wa, wb, depth, size_mb):
    """|S_a/w_a − S_b/w_b| ≤ (D+1)·(c_a/w_a + c_b/w_b) for backlogged
    flows (Goyal's bound with the SFQ(D) relaxation)."""
    sim = Simulator()
    dev = StorageDevice(sim, FCFS)
    sched = SFQDScheduler(sim, dev, depth=depth)
    nbytes = size_mb * MB
    closed_loop(sim, sched, "a", wa, nbytes, streams=depth + 2)
    closed_loop(sim, sched, "b", wb, nbytes, streams=depth + 2)
    sim.run(until=5.0)
    sa = sched.stats.service_by_app.get("a", 0.0)
    sb = sched.stats.service_by_app.get("b", 0.0)
    if sa + sb < 20 * MB:
        return  # not enough service to exercise the bound
    gap = abs(sa / wa - sb / wb)
    bound = (depth + 1) * (nbytes / wa + nbytes / wb)
    assert gap <= bound + 1e-6


@settings(max_examples=15, deadline=None)
@given(depth=st.integers(min_value=1, max_value=8))
def test_property_work_conservation(depth):
    """The device is never idle while the scheduler holds requests."""
    sim = Simulator()
    dev = StorageDevice(sim, FCFS)
    sched = SFQDScheduler(sim, dev, depth=depth)
    violations = []

    def check():
        if sched.queued > 0 and dev.in_flight == 0:
            violations.append(sim.now)

    # Completion hooks fire before the scheduler re-dispatches, so probe
    # one (zero-delay) event later, after _on_complete has run.
    sched.add_completion_hook(lambda req, done: sim.call_in(0.0, check))
    for i in range(40):
        req = IORequest(sim, IOTag(f"app{i % 3}", 1.0 + i % 4), "read",
                        1 * MB, IOClass.PERSISTENT)
        sched.submit(req)
    sim.run()
    assert not violations
    assert sched.stats.total_requests == 40


def test_sfq_bound_tightens_with_depth_one():
    """At D=1 the realised split of two equal-demand backlogged flows
    with 3:1 weights stays within one request of 3:1 at all times."""
    sim = Simulator()
    dev = StorageDevice(sim, FCFS)
    sched = SFQDScheduler(sim, dev, depth=1)
    closed_loop(sim, sched, "hi", 3.0, 1 * MB, streams=4)
    closed_loop(sim, sched, "lo", 1.0, 1 * MB, streams=4)
    worst = 0.0

    def watch(req, done):
        nonlocal worst
        hi = sched.stats.service_by_app.get("hi", 0.0)
        lo = sched.stats.service_by_app.get("lo", 0.0)
        if hi + lo > 10 * MB:
            worst = max(worst, abs(hi / 3.0 - lo / 1.0))

    sched.add_completion_hook(watch)
    sim.run(until=4.0)
    assert worst <= 2 * (1 * MB / 3.0 + 1 * MB)


def test_weights_only_relative_values_matter():
    """Scaling all weights by a constant must not change the schedule."""
    def run(scale):
        sim = Simulator()
        dev = StorageDevice(sim, FCFS)
        sched = SFQDScheduler(sim, dev, depth=2)
        closed_loop(sim, sched, "a", 2.0 * scale, 1 * MB, streams=3)
        closed_loop(sim, sched, "b", 1.0 * scale, 1 * MB, streams=3)
        sim.run(until=3.0)
        return (sched.stats.service_by_app["a"],
                sched.stats.service_by_app["b"])

    assert run(1.0) == run(100.0)
