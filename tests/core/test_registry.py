"""The policy registry, PolicySpec/NodePolicy validation & serialization.

Includes the headline extensibility check: a third-party scheduler
defined *here* (no edits to ``repro.core``) registers itself by
subclassing, becomes constructible through ``PolicySpec``/``NodePolicy``,
and runs inside a ``DataNodeIO``.
"""

import pytest

from repro.config import MB, StorageProfile, default_cluster
from repro.core import (
    REGISTRY,
    CgroupsThrottleScheduler,
    CgroupsWeightScheduler,
    DataNodeIO,
    DepthController,
    IOClass,
    IORequest,
    IOScheduler,
    IOTag,
    NativeScheduler,
    NodePolicy,
    PolicySpec,
    SFQD2Scheduler,
    SFQDScheduler,
    get_policy,
    policy_names,
)
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)

CTRL = DepthController.symmetric(0.05)


# ----------------------------------------------------------------- registry
def test_builtins_registered_under_canonical_names():
    for name in ("native", "sfq(d)", "sfq(d2)", "cgroups-weight",
                 "cgroups-throttle", "reservation"):
        assert name in REGISTRY
        assert get_policy(name).name == name
    assert set(policy_names()) >= {"native", "sfq(d)", "sfq(d2)"}


def test_aliases_resolve_to_canonical():
    assert get_policy("sfqd").scheduler is SFQDScheduler
    assert get_policy("sfqd2").scheduler is SFQD2Scheduler
    assert REGISTRY.canonical("sfqd") == "sfq(d)"
    assert REGISTRY.canonical("sfqd2") == "sfq(d2)"


def test_unknown_kind_raises_with_choices():
    with pytest.raises(ValueError, match="unknown policy kind"):
        get_policy("elevator")


def test_capability_declarations():
    assert get_policy("sfq(d)").supports_coordination
    assert get_policy("sfq(d2)").supports_coordination
    assert not get_policy("native").supports_coordination
    # cgroups sees only container-issued local I/O (§6): the capability
    # says so, for both modes — including the SFQD-derived weight mode.
    for kind in ("cgroups-weight", "cgroups-throttle"):
        info = get_policy(kind)
        assert info.manages_classes == frozenset({IOClass.INTERMEDIATE})
        assert not info.supports_coordination
    assert get_policy("sfq(d2)").required_params == ("controller",)
    assert get_policy("cgroups-throttle").required_params == ("throttle_rates",)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        class Impostor(IOScheduler):  # registration happens in the class body
            algorithm = "native"


def test_abstract_and_optout_subclasses_stay_unregistered():
    class NoAlgorithm(IOScheduler):  # inherits algorithm: not registered
        pass

    class OptedOut(IOScheduler, register=False):
        algorithm = "opted-out-test-policy"

    assert "opted-out-test-policy" not in REGISTRY


# --------------------------------------------------------------- PolicySpec
def test_spec_normalizes_alias_kinds():
    assert PolicySpec(kind="sfqd", depth=2).kind == "sfq(d)"
    assert PolicySpec.sfqd2(CTRL).kind == "sfq(d2)"


def test_spec_validates_required_params():
    with pytest.raises(ValueError, match="DepthController"):
        PolicySpec(kind="sfqd2")
    with pytest.raises(ValueError, match="throttle_rates"):
        PolicySpec(kind="cgroups-throttle")


def test_spec_rejects_unsupported_coordination():
    with pytest.raises(ValueError, match="coordination"):
        PolicySpec(kind="native", coordinated=True)
    with pytest.raises(ValueError, match="coordination"):
        PolicySpec(kind="cgroups-weight", coordinated=True)
    assert PolicySpec.sfqd(4, coordinated=True).coordinated


def test_spec_json_round_trip():
    for spec in (
        PolicySpec.native(),
        PolicySpec.sfqd(7, coordinated=True),
        PolicySpec.sfqd2(DepthController(
            ref_latency_read=0.02, ref_latency_write=0.08, gain=40.0)),
        PolicySpec.cgroups_throttle({"terasort": 48.0 * MB}),
    ):
        text = spec.to_json()
        again = PolicySpec.from_json(text)
        assert again == spec
        assert again.to_json() == text  # canonical: stable fixed point


def test_spec_json_is_canonical():
    a = PolicySpec.sfqd(4).to_json()
    assert a == PolicySpec(kind="sfqd", depth=4).to_json()
    assert "\n" not in a and ": " not in a  # compact separators, one line


# --------------------------------------------------------------- NodePolicy
def test_node_policy_uniform_and_coerce():
    spec = PolicySpec.sfqd(4)
    np_ = NodePolicy.uniform(spec)
    assert np_.spec_for(IOClass.PERSISTENT) is spec
    assert NodePolicy.coerce(spec) == np_
    assert NodePolicy.coerce(np_) is np_
    with pytest.raises(TypeError):
        NodePolicy.coerce("sfqd")


def test_node_policy_coordinated_any():
    coord = PolicySpec.sfqd(4, coordinated=True)
    nat = PolicySpec.native()
    assert NodePolicy(persistent=coord, intermediate=nat, network=nat).coordinated
    assert not NodePolicy.uniform(nat).coordinated


def test_node_policy_json_round_trip():
    policy = NodePolicy(
        persistent=PolicySpec.sfqd2(CTRL),
        intermediate=PolicySpec.cgroups_weight(),
        network=PolicySpec.sfqd(2),
    )
    again = NodePolicy.from_json(policy.to_json())
    assert again == policy
    assert again.to_json() == policy.to_json()


# --------------------------------------------------- registry-driven wiring
def _mk_node(policy):
    sim = Simulator()
    config = default_cluster()
    node = DataNodeIO(sim, "dn00", config, policy)
    return sim, node


def test_datanode_builds_mixed_policies_per_class():
    sim, node = _mk_node(NodePolicy(
        persistent=PolicySpec.sfqd2(CTRL),
        intermediate=PolicySpec.sfqd(depth=2),
        network=PolicySpec.native(),
    ))
    assert isinstance(node.schedulers[IOClass.PERSISTENT], SFQD2Scheduler)
    assert isinstance(node.schedulers[IOClass.INTERMEDIATE], SFQDScheduler)
    assert type(node.schedulers[IOClass.NETWORK]) is NativeScheduler
    assert node.schedulers[IOClass.INTERMEDIATE].depth == 2
    # every scheduler shares the node's bus
    for sched in node.schedulers.values():
        assert sched.telemetry is node.telemetry


def test_cgroups_policy_falls_back_to_native_outside_intermediate():
    for spec in (PolicySpec.cgroups_weight(),
                 PolicySpec.cgroups_throttle({"terasort": 1.0 * MB})):
        _sim, node = _mk_node(spec)
        assert isinstance(
            node.schedulers[IOClass.INTERMEDIATE],
            (CgroupsWeightScheduler, CgroupsThrottleScheduler),
        )
        assert type(node.schedulers[IOClass.PERSISTENT]) is NativeScheduler
        assert type(node.schedulers[IOClass.NETWORK]) is NativeScheduler


# ----------------------------------------------------- third-party plug-in
class RoundRobinScheduler(IOScheduler):
    """A scheduler the core knows nothing about: FIFO with depth 1,
    round-robin across apps.  Exists purely to prove the plug-in path."""

    algorithm = "test-round-robin"
    aliases = ("rr",)
    required_params = ()

    def __init__(self, sim, device, name="", telemetry=None, bonus=0):
        super().__init__(sim, device, name, telemetry=telemetry)
        self.bonus = bonus  # arbitrary spec.params pass-through
        self._order: list[str] = []
        self._queues: dict[str, list] = {}

    @property
    def queued(self):
        return sum(len(q) for q in self._queues.values())

    def _enqueue(self, req):
        app = req.app_id
        if app not in self._queues:
            self._queues[app] = []
            self._order.append(app)
        self._queues[app].append(req)
        self._try_dispatch()

    def _try_dispatch(self):
        while self.outstanding < 1 and self._order:
            app = self._order.pop(0)
            queue = self._queues[app]
            req = queue.pop(0)
            if queue:
                self._order.append(app)
            else:
                del self._queues[app]
            self._dispatch_to_device(req)

    def _on_complete(self, req, done):
        self._try_dispatch()


def test_third_party_scheduler_registers_and_runs():
    info = get_policy("test-round-robin")
    assert info.scheduler is RoundRobinScheduler
    assert get_policy("rr").scheduler is RoundRobinScheduler

    spec = PolicySpec(kind="rr", params={"bonus": 3})
    assert spec.kind == "test-round-robin"
    assert PolicySpec.from_json(spec.to_json()) == spec

    # Constructible standalone through the registry factory...
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = info.build(sim, dev, spec, name="rr0")
    assert isinstance(sched, RoundRobinScheduler)
    assert sched.bonus == 3

    # ...and inside a DataNodeIO via NodePolicy, end to end.
    sim, node = _mk_node(NodePolicy(
        persistent=spec,
        intermediate=PolicySpec.native(),
        network=PolicySpec.native(),
    ))
    assert isinstance(node.schedulers[IOClass.PERSISTENT], RoundRobinScheduler)
    reqs = [
        IORequest(sim, IOTag(app, 1.0), "read", 4 * MB, IOClass.PERSISTENT)
        for app in ("a", "b", "a")
    ]
    for req in reqs:
        node.submit(req)
    sim.run()
    stats = node.schedulers[IOClass.PERSISTENT].stats
    assert stats.total_requests == 3
    assert stats.service_by_app == {"a": 8 * MB, "b": 4 * MB}
