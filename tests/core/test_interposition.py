"""Unit tests for PolicySpec and the per-datanode interposition layer."""

import pytest

from repro.config import MB, default_cluster
from repro.core import (
    DataNodeIO,
    DepthController,
    IOClass,
    IORequest,
    IOTag,
    NativeScheduler,
    PolicySpec,
    SchedulingBroker,
    SFQD2Scheduler,
)
from repro.core.cgroups import CgroupsThrottleScheduler, CgroupsWeightScheduler
from repro.simcore import Simulator

CTRL = DepthController.symmetric(0.05)


def test_policy_validation():
    with pytest.raises(ValueError):
        PolicySpec(kind="bogus")
    with pytest.raises(ValueError):
        PolicySpec(kind="sfqd2")  # missing controller
    with pytest.raises(ValueError):
        PolicySpec(kind="cgroups-throttle")  # missing rates
    with pytest.raises(ValueError):
        PolicySpec(kind="native", coordinated=True)


def test_policy_constructors():
    assert PolicySpec.native().kind == "native"
    assert PolicySpec.sfqd(depth=2).depth == 2
    assert PolicySpec.sfqd2(CTRL).controller is CTRL
    assert PolicySpec.cgroups_weight().kind == "cgroups-weight"
    assert PolicySpec.cgroups_throttle({"a": 1.0}).throttle_rates == {"a": 1.0}


def test_native_node_has_native_everywhere():
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.native())
    for c in IOClass:
        assert isinstance(node.scheduler(c), NativeScheduler)


def test_sfqd2_node_has_sfqd2_everywhere():
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.sfqd2(CTRL))
    for c in IOClass:
        assert isinstance(node.scheduler(c), SFQD2Scheduler)


def test_cgroups_controls_only_intermediate_class():
    """§6: containers cannot differentiate HDFS or shuffle I/Os."""
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.cgroups_weight())
    assert isinstance(node.scheduler(IOClass.INTERMEDIATE), CgroupsWeightScheduler)
    assert isinstance(node.scheduler(IOClass.PERSISTENT), NativeScheduler)
    assert isinstance(node.scheduler(IOClass.NETWORK), NativeScheduler)

    node2 = DataNodeIO(
        sim, "n1", default_cluster(), PolicySpec.cgroups_throttle({"a": 1.0 * MB})
    )
    assert isinstance(node2.scheduler(IOClass.INTERMEDIATE), CgroupsThrottleScheduler)
    assert isinstance(node2.scheduler(IOClass.PERSISTENT), NativeScheduler)


def test_devices_split_by_class():
    """HDFS data and intermediate data live on separate disks (§7.1)."""
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.sfqd(depth=2))
    assert node.scheduler(IOClass.PERSISTENT).device is node.hdfs_device
    assert node.scheduler(IOClass.INTERMEDIATE).device is node.tmp_device
    assert node.scheduler(IOClass.NETWORK).device is node.tmp_device


def test_submit_routes_by_class():
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.sfqd(depth=4))
    reqs = {
        c: IORequest(sim, IOTag("a"), "read", 1 * MB, c) for c in IOClass
    }
    for req in reqs.values():
        node.submit(req)
    sim.run()
    assert node.scheduler(IOClass.PERSISTENT).stats.total_requests == 1
    assert node.scheduler(IOClass.INTERMEDIATE).stats.total_requests == 1
    assert node.scheduler(IOClass.NETWORK).stats.total_requests == 1


def test_coordinated_policy_attaches_broker_clients():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    node = DataNodeIO(
        sim, "n0", default_cluster(), PolicySpec.sfqd(depth=4, coordinated=True),
        broker=broker,
    )
    assert len(node.broker_clients) == 3  # one per interposition point


def test_uncoordinated_policy_has_no_broker_clients():
    sim = Simulator()
    node = DataNodeIO(sim, "n0", default_cluster(), PolicySpec.sfqd(depth=4))
    assert node.broker_clients == []
