"""Unit tests for the Scheduling Broker and DSFQ coordination."""

import pytest

from repro.config import MB, StorageProfile
from repro.core import (
    BrokerClient,
    IOClass,
    IORequest,
    IOTag,
    SchedulingBroker,
    SFQDScheduler,
)
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def submit(sim, sched, app, weight, nbytes=1 * MB):
    req = IORequest(sim, IOTag(app, weight), "read", nbytes, IOClass.PERSISTENT)
    sched.submit(req)
    return req


def test_broker_aggregates_totals_across_clients():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"app1": 100.0, "app2": 50.0})
    broker.report("n2", {"app1": 40.0})
    totals = broker.report("n1", {"app1": 100.0, "app2": 50.0})
    assert totals == {"app1": 140.0, "app2": 50.0}


def test_broker_incremental_updates():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 10.0})
    broker.report("n1", {"a": 25.0})  # cumulative, so +15
    assert broker.totals["a"] == 25.0


def test_broker_rejects_backwards_reports():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 10.0})
    with pytest.raises(ValueError):
        broker.report("n1", {"a": 5.0})


def test_broker_reply_scoped_to_reported_apps():
    """The reply is bounded by the apps the scheduler serves (§5)."""
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 10.0, "b": 10.0})
    reply = broker.report("n2", {"a": 3.0})
    assert set(reply) == {"a"}


def test_broker_message_accounting():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 1.0})
    broker.report("n2", {"a": 1.0, "b": 2.0})
    assert broker.messages == 2
    assert broker.message_bytes > 0


def test_client_sync_applies_foreign_service_as_delay():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1")

    # Local node serviced 2 MB for app "x"; another node reports 10 MB.
    submit(sim, sched, "x", 1.0, nbytes=2 * MB)
    sim.run()
    broker.report("n2", {"x": 10.0 * MB})
    client.sync()
    # Next request of x should be delayed by 10 MB of virtual time.
    assert sched._pending_delay["x"] == pytest.approx(10.0)


def test_client_sync_weight_scales_delay():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1")
    submit(sim, sched, "x", 4.0, nbytes=2 * MB)
    sim.run()
    broker.report("n2", {"x": 8.0 * MB})
    client.sync()
    assert sched._pending_delay["x"] == pytest.approx(2.0)  # 8 MB / weight 4


def test_client_sync_only_counts_growth_once():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1")
    submit(sim, sched, "x", 1.0, nbytes=1 * MB)
    sim.run()
    broker.report("n2", {"x": 5.0 * MB})
    client.sync()
    client.sync()  # no new foreign growth -> no extra delay
    assert sched._pending_delay["x"] == pytest.approx(5.0)


def test_client_sync_noop_without_local_service():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1")
    client.sync()
    assert broker.messages == 0


def test_client_period_validation():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    with pytest.raises(ValueError):
        BrokerClient(sim, broker, sched, client_id="n1", period=0.0)


def _run_two_node_scenario(coordinated: bool) -> tuple[float, float]:
    """Two nodes, equal weights.  App 'solo' runs only on node 0; app
    'wide' runs on both.  Tasks issue I/O closed-loop (the next request
    is tagged when the previous completes), as MapReduce tasks do."""
    sim = Simulator()
    broker = SchedulingBroker(sim)
    devs = [StorageDevice(sim, FLAT, name=f"d{i}") for i in range(2)]
    scheds = [SFQDScheduler(sim, d, depth=1) for d in devs]
    if coordinated:
        for i, s in enumerate(scheds):
            BrokerClient(sim, broker, s, client_id=f"n{i}", period=0.05)

    def task(sched, app):
        def proc():
            while True:
                req = IORequest(sim, IOTag(app, 1.0), "read", 1 * MB)
                yield sched.submit(req)

        return proc

    # Two closed-loop streams per app per node keep everything backlogged.
    for _ in range(2):
        sim.process(task(scheds[0], "solo")())
        sim.process(task(scheds[0], "wide")())
        sim.process(task(scheds[1], "wide")())
    sim.run(until=3.0)
    total_solo = sum(s.stats.service_by_app.get("solo", 0.0) for s in scheds)
    total_wide = sum(s.stats.service_by_app.get("wide", 0.0) for s in scheds)
    return total_solo, total_wide


def test_coordination_rebalances_total_service():
    """The §5 objective: with DSFQ coordination the two equal-weight apps
    approach a 1:1 split of *total* service even though 'wide' runs on
    twice the nodes; without it, wide collects ~3x."""
    solo_sync, wide_sync = _run_two_node_scenario(coordinated=True)
    assert wide_sync / solo_sync < 1.5

    solo_nosync, wide_nosync = _run_two_node_scenario(coordinated=False)
    assert wide_nosync / solo_nosync > 2.0

    # Coordination must strictly improve the total-service balance.
    assert wide_sync / solo_sync < wide_nosync / solo_nosync


# ----------------------------------------------- outages & reconciliation

def test_broker_outage_rejects_reports():
    from repro.faults import BrokerUnavailable
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.set_down(True)
    with pytest.raises(BrokerUnavailable):
        broker.report("n1", {"a": 1.0})
    broker.set_down(False)
    broker.report("n1", {"a": 1.0})
    assert broker.totals["a"] == 1.0


def test_epoch_rebase_forfeits_gap_service():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 10.0}, epoch=0)
    # The client restarted: a lower cumulative vector with a bumped epoch
    # rebases the baseline instead of tripping the monotonicity check.
    broker.report("n1", {"a": 3.0}, epoch=1)
    assert broker.totals["a"] == 10.0     # gap service forfeited
    broker.report("n1", {"a": 5.0}, epoch=1)
    assert broker.totals["a"] == 12.0     # deltas resume from the rebase


def test_stale_epoch_rejected():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    broker.report("n1", {"a": 1.0}, epoch=2)
    with pytest.raises(ValueError, match="stale epoch"):
        broker.report("n1", {"a": 2.0}, epoch=1)


def test_client_restart_rebases_without_double_counting():
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1")
    submit(sim, sched, "x", 1.0, nbytes=2 * MB)
    sim.run()
    client.sync()
    total_before = broker.totals["x"]
    client.restart()
    client.sync()  # rebase round: same cumulative vector, no delta
    assert client.epoch == 1
    assert broker.totals["x"] == total_before


def test_tick_survives_broker_outage():
    """The coordination loop must not die while the broker is down: it
    counts skipped rounds and resumes when the outage ends."""
    sim = Simulator()
    broker = SchedulingBroker(sim)
    dev = StorageDevice(sim, FLAT)
    sched = SFQDScheduler(sim, dev, depth=1)
    client = BrokerClient(sim, broker, sched, client_id="n1", period=0.05)

    def task():
        while True:
            req = IORequest(sim, IOTag("x", 1.0), "read", 1 * MB)
            yield sched.submit(req)

    sim.process(task())
    broker.set_down(True)
    sim.call_at(0.5, lambda: broker.set_down(False))
    sim.run(until=1.0)
    assert client.rounds_skipped >= 1
    assert broker.messages >= 1  # reports resumed after the outage
