"""Unit and property tests for SFQ(D)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MB, StorageProfile
from repro.core import IOClass, IORequest, IOTag, NativeScheduler, SFQDScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0)


def make_stack(depth=1, profile=FLAT):
    sim = Simulator()
    dev = StorageDevice(sim, profile)
    sched = SFQDScheduler(sim, dev, depth=depth)
    return sim, dev, sched


def submit(sim, sched, app, weight, op="read", nbytes=4 * MB):
    req = IORequest(sim, IOTag(app, weight), op, nbytes, IOClass.PERSISTENT)
    sched.submit(req)
    return req


def test_depth_validation():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    with pytest.raises(ValueError):
        SFQDScheduler(sim, dev, depth=0)


def test_single_flow_fifo_order():
    sim, dev, sched = make_stack(depth=1)
    reqs = [submit(sim, sched, "a", 1.0, nbytes=1 * MB) for _ in range(5)]
    done_order = []
    for i, r in enumerate(reqs):
        r.completion.callbacks.append(lambda ev, i=i: done_order.append(i))
    sim.run()
    assert done_order == [0, 1, 2, 3, 4]


def test_start_and_finish_tags_monotone_per_flow():
    sim, dev, sched = make_stack(depth=1)
    reqs = [submit(sim, sched, "a", 2.0, nbytes=2 * MB) for _ in range(4)]
    for earlier, later in zip(reqs, reqs[1:]):
        assert later.start_tag >= earlier.finish_tag
        assert later.finish_tag == pytest.approx(later.start_tag + 1.0)  # 2MB/w2


def test_weighted_interleave_two_to_one():
    """With weights 2:1 and equal request sizes, the dispatch pattern gives
    flow A two dispatches per B dispatch."""
    sim, dev, sched = make_stack(depth=1)
    order = []
    for _ in range(6):
        r = submit(sim, sched, "A", 2.0, nbytes=1 * MB)
        r.completion.callbacks.append(lambda ev: order.append("A"))
    for _ in range(3):
        r = submit(sim, sched, "B", 1.0, nbytes=1 * MB)
        r.completion.callbacks.append(lambda ev: order.append("B"))
    sim.run()
    # In every prefix, A's completions should be >= B's (A has 2x priority
    # and arrived first); overall A gets 2 dispatches per B.
    counts = {"A": 0, "B": 0}
    for i, who in enumerate(order):
        counts[who] += 1
        assert counts["A"] >= counts["B"]
    assert counts == {"A": 6, "B": 3}


def test_proportional_service_under_backlog():
    """Two continuously backlogged flows with weights 3:1 receive service
    ~3:1 over any long window."""
    sim, dev, sched = make_stack(depth=2)
    n = 120
    for _ in range(n):
        submit(sim, sched, "heavy", 3.0, nbytes=1 * MB)
        submit(sim, sched, "light", 1.0, nbytes=1 * MB)
    # Run until ~half the requests are done, then inspect the split.
    sim.run(until=1.0)
    sh = sched.stats.service_by_app["heavy"]
    sl = sched.stats.service_by_app["light"]
    assert sh / sl == pytest.approx(3.0, rel=0.15)


def test_work_conserving_when_one_flow_empties():
    """After the favoured flow finishes, the other gets full bandwidth."""
    sim, dev, sched = make_stack(depth=1)
    submit(sim, sched, "fav", 10.0, nbytes=10 * MB)
    tail = [submit(sim, sched, "bg", 1.0, nbytes=10 * MB) for _ in range(3)]
    sim.run()
    # Everything completes; total time = 40MB / 100MB/s.
    assert all(t.completion.processed for t in tail)
    assert sim.now == pytest.approx(0.4)


def test_depth_limits_outstanding():
    sim, dev, sched = make_stack(depth=3)
    for _ in range(10):
        submit(sim, sched, "a", 1.0, nbytes=4 * MB)
    # Before any completion, exactly depth requests are at the device.
    assert dev.in_flight == 3
    assert sched.queued == 7
    sim.run()
    assert sched.queued == 0


def test_virtual_time_advances_with_dispatch():
    sim, dev, sched = make_stack(depth=1)
    assert sched.virtual_time == 0.0
    submit(sim, sched, "a", 1.0, nbytes=4 * MB)
    submit(sim, sched, "a", 1.0, nbytes=4 * MB)
    sim.run()
    assert sched.virtual_time == pytest.approx(4.0)  # second req start tag


def test_add_start_delay_defers_next_request():
    sim, dev, sched = make_stack(depth=1)
    # Flow B is delayed by 8 virtual-time units (cost of 8MB at weight 1).
    sched.add_start_delay("B", 8.0)
    a = submit(sim, sched, "A", 1.0, nbytes=4 * MB)
    b = submit(sim, sched, "B", 1.0, nbytes=4 * MB)
    a2 = submit(sim, sched, "A", 1.0, nbytes=4 * MB)
    order = []
    for tag, r in (("a", a), ("b", b), ("a2", a2)):
        r.completion.callbacks.append(lambda ev, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "a2", "b"]  # B pushed behind both A requests


def test_add_start_delay_negative_rejected():
    sim, dev, sched = make_stack()
    with pytest.raises(ValueError):
        sched.add_start_delay("x", -1.0)


def test_delay_does_not_starve_forever():
    """max(v, F_prev + delay) bounds the penalty: once virtual time passes
    the delayed start tag, the flow is served again."""
    sim, dev, sched = make_stack(depth=1)
    sched.add_start_delay("B", 3.0)  # 3 MB-units of foreign service
    b = submit(sim, sched, "B", 1.0, nbytes=1 * MB)
    for _ in range(20):
        submit(sim, sched, "A", 1.0, nbytes=1 * MB)
    sim.run(until=b.completion)
    # B must complete well before all of A's 20 requests are done.
    assert sched.stats.service_by_app["A"] < 20 * MB


def test_native_scheduler_passthrough():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = NativeScheduler(sim, dev)
    reqs = [
        submit(sim, sched, f"app{i}", 1.0, nbytes=4 * MB) for i in range(5)
    ]
    assert dev.in_flight == 5  # no admission control at all
    sim.run()
    assert all(r.completion.processed for r in reqs)
    assert sched.stats.total_requests == 5


def test_stats_account_bytes_and_weights():
    sim, dev, sched = make_stack(depth=2)
    submit(sim, sched, "a", 5.0, nbytes=3 * MB)
    submit(sim, sched, "b", 1.0, op="write", nbytes=2 * MB)
    sim.run()
    assert sched.stats.service_by_app["a"] == 3 * MB
    assert sched.stats.service_by_app["b"] == 2 * MB
    assert sched.stats.weight_by_app == {"a": 5.0, "b": 1.0}
    reads, writes = sched.stats.drain_window()
    assert len(reads) == 1 and len(writes) == 1
    # Window is consumed.
    assert sched.stats.drain_window() == ([], [])


def test_completion_and_submit_hooks_fire():
    sim, dev, sched = make_stack()
    seen = {"submit": 0, "complete": 0}
    sched.add_submit_hook(lambda req: seen.__setitem__("submit", seen["submit"] + 1))
    sched.add_completion_hook(
        lambda req, done: seen.__setitem__("complete", seen["complete"] + 1)
    )
    submit(sim, sched, "a", 1.0)
    sim.run()
    assert seen == {"submit": 1, "complete": 1}


# --------------------------------------------------------------- properties
@settings(max_examples=40, deadline=None)
@given(
    weights=st.tuples(
        st.floats(min_value=0.5, max_value=32.0),
        st.floats(min_value=0.5, max_value=32.0),
    ),
    depth=st.integers(min_value=1, max_value=8),
    nreq=st.integers(min_value=30, max_value=80),
)
def test_property_backlogged_service_tracks_weights(weights, depth, nreq):
    """SFQ's fairness bound: for continuously backlogged flows the byte
    split tracks the weight split within a few requests' slack."""
    wa, wb = weights
    sim, dev, sched = make_stack(depth=depth)
    for _ in range(nreq):
        submit(sim, sched, "A", wa, nbytes=1 * MB)
        submit(sim, sched, "B", wb, nbytes=1 * MB)
    horizon = (nreq * 1.0) / 100.0  # ~half the work at 100 MB/s
    sim.run(until=horizon)
    sa = sched.stats.service_by_app.get("A", 0.0) / MB
    sb = sched.stats.service_by_app.get("B", 0.0) / MB
    total = sa + sb
    if total < 10:  # not enough service to judge fairness
        return
    expected_a = total * wa / (wa + wb)
    # SFQ bound: discrepancy is O(depth + 1) requests of 1 MB each.
    assert abs(sa - expected_a) <= depth + 2.0


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=2, max_size=40),
    depth=st.integers(min_value=1, max_value=6),
)
def test_property_all_requests_complete_and_bytes_conserved(sizes, depth):
    """No request is ever lost or double-counted, whatever the arrival mix."""
    sim, dev, sched = make_stack(depth=depth)
    reqs = []
    for i, sz in enumerate(sizes):
        app = f"app{i % 3}"
        reqs.append(submit(sim, sched, app, 1.0 + (i % 2), nbytes=sz * MB))
    sim.run()
    assert all(r.completion.processed and r.completion.ok for r in reqs)
    assert sched.stats.total_bytes == sum(sizes) * MB
    assert sched.stats.total_requests == len(sizes)


@settings(max_examples=30, deadline=None)
@given(depth=st.integers(min_value=1, max_value=8))
def test_property_outstanding_never_exceeds_depth(depth):
    sim, dev, sched = make_stack(depth=depth)
    max_seen = 0

    def watch(req):
        nonlocal max_seen
        max_seen = max(max_seen, dev.in_flight)

    sched.add_submit_hook(watch)
    for i in range(30):
        submit(sim, sched, f"a{i % 4}", 1.0, nbytes=2 * MB)
    sim.run()
    assert max_seen <= depth
