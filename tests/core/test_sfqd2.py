"""Unit tests for the SFQ(D2) depth controller and scheduler."""

import pytest

from repro.config import MB, StorageProfile
from repro.core import DepthController, IOClass, IORequest, IOTag, SFQD2Scheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice

KNEE = StorageProfile(name="knee", peak_rate=100.0 * MB, n_half=1.0)


def make_controller(**kw):
    defaults = dict(ref_latency_read=0.05, ref_latency_write=0.05, gain=50.0)
    defaults.update(kw)
    return DepthController(**defaults)


def submit(sim, sched, app, weight, op="read", nbytes=2 * MB):
    req = IORequest(sim, IOTag(app, weight), op, nbytes, IOClass.PERSISTENT)
    sched.submit(req)
    return req


# ------------------------------------------------------------- controller
def test_controller_validation():
    with pytest.raises(ValueError):
        make_controller(ref_latency_read=0.0)
    with pytest.raises(ValueError):
        make_controller(gain=-1.0)
    with pytest.raises(ValueError):
        make_controller(period=0.0)
    with pytest.raises(ValueError):
        DepthController(
            ref_latency_read=0.1, ref_latency_write=0.1, d_min=4, d_max=2, d_init=3
        )


def test_controller_raises_depth_when_latency_low():
    c = make_controller(gain=50.0)
    d = c.update(4.0, reads=[0.01, 0.01], writes=[])
    # error = 0.05 - 0.01 = 0.04 -> +2 depth
    assert d == pytest.approx(6.0)


def test_controller_lowers_depth_when_latency_high():
    c = make_controller(gain=50.0)
    d = c.update(8.0, reads=[0.15], writes=[0.15])
    # error = 0.05 - 0.15 = -0.1 -> -5 depth
    assert d == pytest.approx(3.0)


def test_controller_clamps_to_bounds():
    c = make_controller(gain=1000.0)
    assert c.update(6.0, reads=[10.0], writes=[]) == c.d_min
    assert c.update(6.0, reads=[1e-9], writes=[]) == c.d_max


def test_controller_holds_depth_on_idle_period():
    c = make_controller()
    assert c.update(5.5, reads=[], writes=[]) == 5.5


def test_controller_blends_read_write_references():
    """With split references, the target tracks the observed mix (§4)."""
    c = DepthController(
        ref_latency_read=0.02, ref_latency_write=0.10, gain=50.0, d_init=6.0
    )
    # All-read period at exactly the read reference: no movement.
    assert c.update(6.0, reads=[0.02, 0.02], writes=[]) == pytest.approx(6.0)
    # All-write period at exactly the write reference: no movement.
    assert c.update(6.0, reads=[], writes=[0.10]) == pytest.approx(6.0)
    # Mixed 50/50 at the blended reference 0.06: no movement.
    assert c.update(6.0, reads=[0.06], writes=[0.06]) == pytest.approx(6.0)


def test_controller_symmetric_constructor():
    c = DepthController.symmetric(0.03, gain=10.0)
    assert c.ref_latency_read == c.ref_latency_write == 0.03


# -------------------------------------------------------------- scheduler
def test_sfqd2_depth_decreases_under_overload():
    """A heavy backlog drives latency above Lref; D must fall toward d_min."""
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    ctrl = make_controller(gain=50.0, d_init=12.0, d_max=12.0)
    sched = SFQD2Scheduler(sim, dev, ctrl)
    for _ in range(400):
        submit(sim, sched, "hog", 1.0, nbytes=2 * MB)
    sim.run(until=8.0)
    assert sched.depth < 12
    assert len(sched.depth_series) >= 5
    assert len(sched.latency_series) >= 1


def test_sfqd2_depth_recovers_when_load_lightens():
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    ctrl = make_controller(gain=100.0, d_init=8.0)
    sched = SFQD2Scheduler(sim, dev, ctrl)

    def trickle():
        # One small request at a time: latency far below Lref.
        for _ in range(40):
            req = IORequest(sim, IOTag("light", 1.0), "read", 256 * 1024)
            yield sched.submit(req)
            yield sim.timeout(0.3)

    sim.process(trickle())
    sim.run()
    ts = sched.depth_series
    assert ts.values[-1] > ctrl.d_init  # controller pushed depth up


def test_sfqd2_simulation_drains_when_idle():
    """The control tick must stop re-arming once the scheduler is idle."""
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    sched = SFQD2Scheduler(sim, dev, make_controller())
    submit(sim, sched, "a", 1.0)
    sim.run()  # would hang/raise if the tick re-armed forever
    assert sim.peek() == float("inf")


def test_sfqd2_admits_more_after_depth_increase():
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    ctrl = make_controller(gain=400.0, d_init=1.0, d_max=12.0)
    sched = SFQD2Scheduler(sim, dev, ctrl)
    for _ in range(50):
        submit(sim, sched, "a", 1.0, nbytes=1 * MB)
    assert dev.in_flight == 1
    sim.run(until=3.0)
    # Small requests at depth 1 are fast -> low latency -> D grows ->
    # more in flight.
    assert max(sched.depth_series.values) > 1.0


def test_sfqd2_inherits_proportional_sharing():
    sim = Simulator()
    dev = StorageDevice(sim, KNEE)
    sched = SFQD2Scheduler(sim, dev, make_controller(d_init=4.0))
    for _ in range(150):
        submit(sim, sched, "big", 4.0, nbytes=1 * MB)
        submit(sim, sched, "small", 1.0, nbytes=1 * MB)
    sim.run(until=1.5)
    sb = sched.stats.service_by_app["big"]
    ss = sched.stats.service_by_app["small"]
    assert sb / ss == pytest.approx(4.0, rel=0.3)
