"""Tests for the non-work-conserving reservation scheduler (§9)."""

import pytest

from repro.config import MB, StorageProfile
from repro.core import IOClass, IORequest, IOTag
from repro.core.reservation import ReservationScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice

FLAT = StorageProfile(name="flat", peak_rate=100.0 * MB, n_half=0.0,
                      discipline="fcfs")


def make(reservations, nominal=100.0 * MB, depth=4):
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    sched = ReservationScheduler(sim, dev, reservations, nominal, depth=depth)
    return sim, dev, sched


def submit(sim, sched, app, nbytes=1 * MB):
    req = IORequest(sim, IOTag(app), "read", nbytes, IOClass.PERSISTENT)
    sched.submit(req)
    return req


def test_validation():
    sim = Simulator()
    dev = StorageDevice(sim, FLAT)
    with pytest.raises(ValueError):
        ReservationScheduler(sim, dev, {"a": 0.0}, 100.0)
    with pytest.raises(ValueError):
        ReservationScheduler(sim, dev, {"a": 0.7, "b": 0.5}, 100.0)
    with pytest.raises(ValueError):
        ReservationScheduler(sim, dev, {}, 0.0)
    with pytest.raises(ValueError):
        ReservationScheduler(sim, dev, {}, 100.0, depth=0)


def test_reserved_app_paced_to_fraction():
    sim, dev, sched = make({"a": 0.2})  # 20 MB/s
    for _ in range(10):
        submit(sim, sched, "a", 2 * MB)
    sim.run(until=1.0)
    # ~20 MB in the first second despite a 100 MB/s idle device.
    assert sched.stats.service_by_app["a"] <= 24 * MB


def test_not_work_conserving_even_when_idle():
    sim, dev, sched = make({"a": 0.1})
    r1 = submit(sim, sched, "a", 10 * MB)
    r2 = submit(sim, sched, "a", 10 * MB)
    sim.run()
    # Second request waits for the bucket (10 MB at 10 MB/s = 1 s).
    assert r2.t_dispatched == pytest.approx(1.0)


def test_isolation_between_reserved_apps():
    """Each app's share is its own, whatever the other does."""
    sim, dev, sched = make({"quiet": 0.5, "noisy": 0.5})
    for _ in range(200):
        submit(sim, sched, "noisy", 1 * MB)
    submit(sim, sched, "quiet", 1 * MB)
    probe = submit(sim, sched, "quiet", 1 * MB)
    sim.run(until=probe.completion)
    # quiet's 2 MB at 50 MB/s: done within ~0.05s + bounded queue time.
    assert sim.now < 0.2


def test_unreserved_apps_share_leftover():
    sim, dev, sched = make({"vip": 0.8})
    for _ in range(50):
        submit(sim, sched, "bg", 1 * MB)
    sim.run(until=1.0)
    # leftover = 20%: background gets ~20 MB/s.
    assert sched.stats.service_by_app["bg"] <= 25 * MB


def test_job_name_matching_like_cgroups():
    sim, dev, sched = make({"terasort": 0.5})
    assert sched.rate_for("app01-terasort") == pytest.approx(50.0 * MB)
    assert sched.rate_for("terasort") == pytest.approx(50.0 * MB)


def test_depth_limit_respected():
    sim, dev, sched = make({"a": 1.0}, depth=2)
    for _ in range(10):
        submit(sim, sched, "a", 1 * MB)
    assert dev.in_flight <= 2
    sim.run()
    assert sched.stats.total_requests == 10


def test_all_requests_complete():
    sim, dev, sched = make({"a": 0.5, "b": 0.25})
    reqs = [submit(sim, sched, app, 1 * MB)
            for app in ("a", "b", "c") for _ in range(5)]
    sim.run()
    assert all(r.completion.processed for r in reqs)
