"""Unit tests for performance metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    aggregate_service,
    jain_fairness,
    proportional_share_error,
    relative_performance,
    slowdown,
)


def test_slowdown_basic():
    assert slowdown(207.0, 100.0) == pytest.approx(1.07)
    assert slowdown(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        slowdown(1.0, 0.0)
    with pytest.raises(ValueError):
        slowdown(0.0, 1.0)


def test_relative_performance():
    assert relative_performance(200.0, 100.0) == pytest.approx(0.5)
    assert relative_performance(100.0, 100.0) == 1.0
    # Faster than standalone clamps at 1.0 (Fig. 8's SSD anomaly).
    assert relative_performance(90.0, 100.0) == 1.0


def test_proportional_share_error_perfect():
    service = {"a": 320.0, "b": 10.0}
    weights = {"a": 32.0, "b": 1.0}
    assert proportional_share_error(service, weights) == pytest.approx(0.0)


def test_proportional_share_error_skewed():
    service = {"a": 50.0, "b": 50.0}
    weights = {"a": 3.0, "b": 1.0}
    # assigned a-share 0.75, observed 0.5 -> error 0.25
    assert proportional_share_error(service, weights) == pytest.approx(0.25)


def test_proportional_share_error_missing_app_counts_as_zero():
    err = proportional_share_error({"a": 10.0}, {"a": 1.0, "b": 1.0})
    assert err == pytest.approx(0.5)


def test_proportional_share_error_validation():
    with pytest.raises(ValueError):
        proportional_share_error({}, {})
    with pytest.raises(ValueError):
        proportional_share_error({"x": 0.0}, {"x": 1.0})


def test_jain_fairness_bounds():
    assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
    assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness([0.0, 0.0]) == 1.0
    with pytest.raises(ValueError):
        jain_fairness([])
    with pytest.raises(ValueError):
        jain_fairness([-1.0, 1.0])


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=30))
def test_property_jain_in_unit_interval(values):
    f = jain_fairness(values)
    assert 1.0 / len(values) - 1e-9 <= f <= 1.0 + 1e-9


def test_aggregate_service_sums_across_schedulers():
    total = aggregate_service(
        [{"a": 1.0, "b": 2.0}, {"a": 3.0}, {"c": 4.0}]
    )
    assert total == {"a": 4.0, "b": 2.0, "c": 4.0}


def test_aggregate_service_empty():
    assert aggregate_service([]) == {}
