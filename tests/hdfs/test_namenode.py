"""Unit tests for the NameNode: namespace and replica placement."""

import numpy as np
import pytest

from repro.config import MB
from repro.hdfs import NameNode
from repro.hdfs.blocks import Block, BlockLocations

NODES = [f"dn{i}" for i in range(8)]


def make_nn(replication=3, block_size=16 * MB, nodes=NODES):
    return NameNode(nodes, block_size=block_size, replication=replication,
                    rng=np.random.default_rng(7))


def test_constructor_validation():
    with pytest.raises(ValueError):
        NameNode([], 16 * MB, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        NameNode(NODES, 0, 3, np.random.default_rng(0))
    with pytest.raises(ValueError):
        NameNode(NODES, 16 * MB, 0, np.random.default_rng(0))


def test_replication_capped_at_cluster_size():
    nn = NameNode(["a", "b"], 16 * MB, replication=3,
                  rng=np.random.default_rng(0))
    assert nn.replication == 2


def test_split_into_blocks_sizes():
    nn = make_nn()
    blocks = nn.split_into_blocks("/f", 40 * MB)
    assert [b.size for b in blocks] == [16 * MB, 16 * MB, 8 * MB]
    assert [b.index for b in blocks] == [0, 1, 2]
    # ids are unique and monotone
    ids = [b.block_id for b in blocks]
    assert len(set(ids)) == 3


def test_split_rejects_empty_file():
    with pytest.raises(ValueError):
        make_nn().split_into_blocks("/f", 0)


def test_create_file_places_replicas_distinct():
    nn = make_nn()
    f = nn.create_file("/f", 64 * MB, spread=True)
    assert f.size == 64 * MB
    for loc in f.blocks:
        assert len(loc.replicas) == 3
        assert len(set(loc.replicas)) == 3


def test_create_file_duplicate_rejected():
    nn = make_nn()
    nn.create_file("/f", 1 * MB)
    with pytest.raises(FileExistsError):
        nn.create_file("/f", 1 * MB)


def test_lookup_missing_raises():
    with pytest.raises(FileNotFoundError):
        make_nn().lookup("/nope")


def test_writer_local_primary():
    nn = make_nn()
    f = nn.create_file("/f", 32 * MB, writer_node="dn3")
    for loc in f.blocks:
        assert loc.replicas[0] == "dn3"


def test_spread_round_robins_primaries():
    nn = make_nn()
    f = nn.create_file("/f", 8 * 16 * MB, spread=True)
    primaries = [loc.replicas[0] for loc in f.blocks]
    assert sorted(primaries) == sorted(NODES)  # perfectly even


def test_candidates_restrict_placement():
    nn = make_nn()
    subset = ["dn0", "dn1", "dn2"]
    f = nn.create_file("/f", 64 * MB, spread=True, candidates=subset)
    for loc in f.blocks:
        assert set(loc.replicas) <= set(subset)


def test_candidates_unknown_node_rejected():
    nn = make_nn()
    with pytest.raises(ValueError):
        nn.place_replicas(candidates=["ghost"])


def test_delete_removes_file():
    nn = make_nn()
    nn.create_file("/f", 1 * MB)
    nn.delete("/f")
    assert not nn.exists("/f")
    nn.delete("/f")  # idempotent


def test_files_listing_sorted():
    nn = make_nn()
    nn.create_file("/b", 1 * MB)
    nn.create_file("/a", 1 * MB)
    assert nn.files() == ["/a", "/b"]


def test_block_location_closest():
    b = Block(1, "/f", 0, 4 * MB)
    loc = BlockLocations(b, ("dn1", "dn2", "dn3"))
    assert loc.closest("dn2") == "dn2"   # local wins
    assert loc.closest("dn7") == "dn1"   # else primary


def test_block_validation():
    with pytest.raises(ValueError):
        Block(1, "/f", 0, 0)
    with pytest.raises(ValueError):
        Block(1, "/f", -1, 5)
    with pytest.raises(ValueError):
        BlockLocations(Block(1, "/f", 0, 5), ())


# ----------------------------------------------------------- liveness

def test_dead_node_excluded_from_placement():
    nn = make_nn()
    nn.node_down("dn3")
    assert not nn.is_alive("dn3")
    assert nn.alive_datanodes == [n for n in NODES if n != "dn3"]
    for _ in range(20):
        assert "dn3" not in nn.place_replicas()
    nn.node_up("dn3")
    assert nn.is_alive("dn3")
    assert nn.alive_datanodes == NODES


def test_node_down_unknown_rejected():
    with pytest.raises(ValueError):
        make_nn().node_down("ghost")


def test_placement_fails_when_all_candidates_dead():
    nn = make_nn()
    nn.node_down("dn0")
    nn.node_down("dn1")
    with pytest.raises(ValueError, match="no live datanode"):
        nn.place_replicas(candidates=["dn0", "dn1"])


def test_placement_degrades_below_replication_when_pool_small():
    nn = make_nn(replication=3)
    for n in NODES[2:]:
        nn.node_down(n)  # only dn0, dn1 left alive
    replicas = nn.place_replicas()
    assert set(replicas) == {"dn0", "dn1"}
    assert len(replicas) == 2  # fewer than replication, but all live


def test_dead_writer_falls_back_to_live_primary():
    nn = make_nn()
    nn.node_down("dn3")
    replicas = nn.place_replicas(writer_node="dn3")
    assert "dn3" not in replicas


def test_writer_outside_candidate_pool_not_primary():
    nn = make_nn()
    subset = {"dn0", "dn1", "dn2"}
    replicas = nn.place_replicas(writer_node="dn5", candidates=sorted(subset))
    assert replicas[0] in subset
    assert set(replicas) <= subset
