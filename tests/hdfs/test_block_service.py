"""Integration tests for the block service over interposed datanodes."""

import pytest

from repro.config import MB, default_cluster
from repro.core import DataNodeIO, IOClass, IOTag, PolicySpec
from repro.hdfs.blocks import Block, BlockLocations
from repro.hdfs.datanode import BlockService, iter_chunks, windowed_stream
from repro.net import NetFabric
from repro.simcore import Simulator


def make_stack(n_nodes=3, policy=None):
    sim = Simulator()
    cfg = default_cluster()
    node_ids = [f"n{i}" for i in range(n_nodes)]
    nodes = {
        nid: DataNodeIO(sim, nid, cfg, policy or PolicySpec.native())
        for nid in node_ids
    }
    net = NetFabric(sim, node_ids, cfg.nic_bandwidth)
    svc = BlockService(sim, nodes, net, chunk=4 * MB)
    return sim, nodes, net, svc


def test_iter_chunks_covers_total():
    assert list(iter_chunks(10 * MB, 4 * MB)) == [4 * MB, 4 * MB, 2 * MB]
    assert list(iter_chunks(4 * MB, 4 * MB)) == [4 * MB]
    with pytest.raises(ValueError):
        list(iter_chunks(0, 4 * MB))
    with pytest.raises(ValueError):
        list(iter_chunks(1, 0))


def test_windowed_stream_limits_concurrency():
    sim = Simulator()
    active_peak = 0
    active = 0

    def op():
        nonlocal active, active_peak

        def proc():
            nonlocal active, active_peak
            active += 1
            active_peak = max(active_peak, active)
            yield sim.timeout(1.0)
            active -= 1

        return sim.process(proc())

    def driver():
        yield from windowed_stream(sim, (op for _ in range(10)), window=3)

    sim.run(until=sim.process(driver()))
    assert active_peak == 3


def test_windowed_stream_rejects_bad_window():
    sim = Simulator()

    def driver():
        yield from windowed_stream(sim, iter(()), window=0)

    sim.process(driver())
    with pytest.raises(ValueError):
        sim.run()


def test_local_read_no_network():
    sim, nodes, net, svc = make_stack()
    loc = BlockLocations(Block(1, "/f", 0, 8 * MB), ("n0", "n1", "n2"))

    def proc():
        got = yield from svc.read_block(loc, "n0", IOTag("app"))
        return got

    assert sim.run(until=sim.process(proc())) == 8 * MB
    assert net.total_bytes == 0
    assert nodes["n0"].hdfs_device.read_meter.total == 8 * MB


def test_remote_read_crosses_network():
    sim, nodes, net, svc = make_stack()
    loc = BlockLocations(Block(1, "/f", 0, 8 * MB), ("n1", "n2"))

    def proc():
        got = yield from svc.read_block(loc, "n0", IOTag("app"))
        return got

    sim.run(until=sim.process(proc()))
    assert net.total_bytes == 8 * MB
    assert nodes["n1"].hdfs_device.read_meter.total == 8 * MB  # primary read


def test_write_block_hits_every_replica():
    sim, nodes, net, svc = make_stack()
    loc = BlockLocations(Block(1, "/f", 0, 8 * MB), ("n0", "n1", "n2"))

    def proc():
        got = yield from svc.write_block(loc, "n0", IOTag("app"))
        return got

    sim.run(until=sim.process(proc()))
    for nid in ("n0", "n1", "n2"):
        assert nodes[nid].hdfs_device.write_meter.total == 8 * MB
    # two remote replicas crossed the wire
    assert net.total_bytes == 16 * MB


def test_requests_are_tagged_with_app_and_class():
    sim, nodes, net, svc = make_stack()
    loc = BlockLocations(Block(1, "/f", 0, 4 * MB), ("n0",))
    seen = []
    nodes["n0"].schedulers[IOClass.PERSISTENT].add_submit_hook(
        lambda req: seen.append((req.app_id, req.weight, req.io_class))
    )

    def proc():
        yield from svc.read_block(loc, "n0", IOTag("job42", 8.0))

    sim.run(until=sim.process(proc()))
    assert seen == [("job42", 8.0, IOClass.PERSISTENT)]
