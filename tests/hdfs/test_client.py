"""Tests for the DFSClient read/write paths."""

import pytest

from repro.config import MB, default_cluster
from repro.core import IOTag, PolicySpec
from repro.cluster import BigDataCluster


def make_cluster():
    return BigDataCluster(default_cluster(), PolicySpec.native())


def test_read_file_returns_full_size():
    cl = make_cluster()
    f = cl.dfs.preload("/f", 40 * MB)
    assert f.size == 40 * MB

    def proc():
        got = yield from cl.dfs.read_file("/f", "dn00", IOTag("a"))
        return got

    assert cl.sim.run(until=cl.sim.process(proc())) == 40 * MB


def test_read_blocks_subset():
    cl = make_cluster()
    f = cl.dfs.preload("/f", 64 * MB)  # 4 blocks of 16 MB

    def proc():
        got = yield from cl.dfs.read_blocks(f, [0, 2], "dn00", IOTag("a"))
        return got

    assert cl.sim.run(until=cl.sim.process(proc())) == 32 * MB


def test_write_file_creates_and_replicates():
    cl = make_cluster()

    def proc():
        f = yield from cl.dfs.write_file("/out", 32 * MB, "dn03", IOTag("a"))
        return f

    f = cl.sim.run(until=cl.sim.process(proc()))
    assert cl.namenode.exists("/out")
    assert f.size == 32 * MB
    # writer-local primaries
    for loc in f.blocks:
        assert loc.replicas[0] == "dn03"
    total_written = sum(
        n.hdfs_device.write_meter.total for n in cl.nodes.values()
    )
    assert total_written == 32 * MB * 3


def test_read_missing_file_raises():
    cl = make_cluster()

    def proc():
        yield from cl.dfs.read_file("/nope", "dn00", IOTag("a"))

    cl.sim.process(proc())
    with pytest.raises(FileNotFoundError):
        cl.sim.run()


def test_preferred_nodes_reports_replicas():
    cl = make_cluster()
    cl.dfs.preload("/f", 16 * MB)
    nodes = cl.dfs.preferred_nodes("/f", 0)
    assert len(nodes) == 3
    assert all(n in cl.nodes for n in nodes)


def test_preload_consumes_no_simulated_io():
    cl = make_cluster()
    cl.dfs.preload("/f", 160 * MB)
    assert cl.sim.now == 0.0
    for n in cl.nodes.values():
        assert n.hdfs_device.write_meter.total == 0
