"""Unit tests for the network fabric."""

import pytest

from repro.config import MB
from repro.net import Link, NetFabric
from repro.simcore import Simulator

BW = 100.0 * MB


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 0.0, "x")


def test_single_transfer_time():
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)

    def proc():
        yield net.transfer("a", "b", 100 * MB)
        return sim.now

    assert sim.run(until=sim.process(proc())) == pytest.approx(1.0)


def test_local_transfer_is_free():
    sim = Simulator()
    net = NetFabric(sim, ["a"], BW)

    def proc():
        yield net.transfer("a", "a", 500 * MB)
        return sim.now

    assert sim.run(until=sim.process(proc())) == 0.0
    assert net.total_bytes == 0


def test_ingress_sharing_between_flows():
    """Two senders into one receiver: the receiver NIC is the bottleneck
    and both flows finish at the fair-share time."""
    sim = Simulator()
    net = NetFabric(sim, ["a", "b", "c"], BW)
    done = []

    def send(src):
        yield net.transfer(src, "c", 50 * MB)
        done.append((src, sim.now))

    sim.process(send("a"))
    sim.process(send("b"))
    sim.run()
    # 100 MB total into a 100 MB/s NIC: both complete at t=1.
    assert done[0][1] == pytest.approx(1.0)
    assert done[1][1] == pytest.approx(1.0)


def test_independent_paths_do_not_contend():
    sim = Simulator()
    net = NetFabric(sim, ["a", "b", "c", "d"], BW)
    times = []

    def send(src, dst):
        yield net.transfer(src, dst, 100 * MB)
        times.append(sim.now)

    sim.process(send("a", "b"))
    sim.process(send("c", "d"))
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(1.0)]


def test_transfer_validation():
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)
    with pytest.raises(KeyError):
        net.transfer("a", "ghost", 1)
    with pytest.raises(ValueError):
        net.transfer("a", "b", 0)


def test_total_bytes_accounting():
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)

    def proc():
        yield net.transfer("a", "b", 10 * MB)
        yield net.transfer("b", "a", 5 * MB)

    sim.run(until=sim.process(proc()))
    assert net.total_bytes == 15 * MB
    assert net.egress["a"].bytes_carried == 10 * MB
    assert net.ingress["a"].bytes_carried == 5 * MB


# ------------------------------------------------- fault injection hooks

def test_link_failure_fails_inflight_transfer():
    """A leg failing mid-transfer must fail the transfer event (not hang
    it, and not complete it as a success)."""
    from repro.faults import LinkFailure
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)
    caught = []

    def proc():
        try:
            yield net.transfer("a", "b", 100 * MB)
        except LinkFailure:
            caught.append(sim.now)

    sim.process(proc())
    sim.call_at(0.5, lambda: net.egress["a"].fail(LinkFailure("cable cut")))
    sim.run()
    assert caught == [0.5]


def test_link_rate_factor_slows_transfer():
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)
    net.egress["a"].set_rate_factor(0.5)

    def proc():
        yield net.transfer("a", "b", 100 * MB)
        return sim.now

    # The degraded 50 MB/s egress leg is the bottleneck.
    assert sim.run(until=sim.process(proc())) == pytest.approx(2.0)


def test_link_repair_restores_transfers():
    from repro.faults import LinkFailure
    sim = Simulator()
    net = NetFabric(sim, ["a", "b"], BW)
    net.egress["a"].fail(LinkFailure("down"))
    net.egress["a"].repair()
    assert not net.egress["a"].failed

    def proc():
        yield net.transfer("a", "b", 100 * MB)
        return sim.now

    assert sim.run(until=sim.process(proc())) == pytest.approx(1.0)
