"""Cross-layer property tests: conservation and fairness invariants that
must hold for any workload the stack can generate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GB, MB, default_cluster
from repro.core import IOClass, PolicySpec
from repro.core.sfqd2 import DepthController
from repro.cluster import BigDataCluster
from repro.mapreduce import JobSpec

CTRL = DepthController.symmetric(0.05)

POLICIES = [
    PolicySpec.native(),
    PolicySpec.sfqd(depth=2),
    PolicySpec.sfqd(depth=8),
    PolicySpec.sfqd2(CTRL),
    PolicySpec.sfqd2(CTRL, coordinated=True),
    PolicySpec.cgroups_weight(),
]


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.kind}"
                         + ("+sync" if p.coordinated else ""))
def test_input_bytes_conserved_under_every_policy(policy):
    """Whatever the scheduler, a scan job reads exactly its input."""
    cfg = default_cluster()
    cl = BigDataCluster(cfg, policy)
    cl.preload_input("/in", 16 * GB)
    job = cl.submit(JobSpec(name="scan", input_path="/in", n_reduces=0),
                    max_cores=96)
    cl.run()
    total_read = sum(n.hdfs_device.read_meter.total for n in cl.nodes.values())
    assert total_read == cfg.scaled(16 * GB)
    assert cl.total_service_by_app()[job.app_id] == cfg.scaled(16 * GB)


@settings(max_examples=10, deadline=None)
@given(
    n_reduces=st.integers(min_value=1, max_value=6),
    shuffle_mb=st.integers(min_value=16, max_value=256),
    out_mb=st.integers(min_value=4, max_value=64),
)
def test_property_pipeline_volume_accounting(n_reduces, shuffle_mb, out_mb):
    """HDFS writes = 3x declared output (replication); shuffle servlet
    reads equal the fetched partitions; nothing is lost, whatever the
    job geometry."""
    cfg = default_cluster()
    cl = BigDataCluster(cfg, PolicySpec.native())
    cl.preload_input("/in", 8 * GB)
    spec = JobSpec(
        name="mr",
        input_path="/in",
        shuffle_bytes=shuffle_mb * MB,
        output_bytes=out_mb * MB,
        n_reduces=n_reduces,
    )
    job = cl.submit(spec, max_cores=96)
    cl.run()

    fetched = sum(
        (o.nbytes // n_reduces) * n_reduces for o in job.map_outputs
    )
    servlet_reads = sum(
        s.stats.total_bytes for s in cl.schedulers(IOClass.NETWORK)
    )
    assert servlet_reads == fetched

    hdfs_writes = sum(n.hdfs_device.write_meter.total for n in cl.nodes.values())
    assert hdfs_writes == (spec.output_bytes // n_reduces) * n_reduces * 3


@settings(max_examples=6, deadline=None)
@given(weight=st.sampled_from([2.0, 8.0, 32.0]))
def test_property_weighted_app_never_worse_than_equal_weight(weight):
    """Raising an app's IBIS weight must not increase its runtime under
    the same contention (monotonicity of the control knob)."""
    def run(w):
        cfg = default_cluster()
        cl = BigDataCluster(cfg, PolicySpec.sfqd(depth=2))
        cl.preload_input("/in", 8 * GB)
        fav = cl.submit(JobSpec(name="fav", input_path="/in", n_reduces=0),
                        io_weight=w, max_cores=48)
        cl.submit(JobSpec(name="hog", n_maps=64, n_reduces=0,
                          output_bytes=cfg.scaled(256 * GB)),
                  io_weight=1.0, max_cores=48)
        cl.run(fav.done)
        return fav.runtime

    assert run(weight) <= run(1.0) * 1.1  # jitter tolerance


def test_fifo_vs_sfq_same_total_work():
    """Schedulers reorder work; they must not create or destroy it."""
    def total_bytes(policy):
        cfg = default_cluster()
        cl = BigDataCluster(cfg, policy)
        cl.preload_input("/in", 8 * GB)
        cl.submit(JobSpec(name="a", input_path="/in", n_reduces=0),
                  max_cores=48)
        cl.submit(JobSpec(name="b", n_maps=16, n_reduces=0,
                          output_bytes=cfg.scaled(8 * GB)), max_cores=48)
        cl.run()
        return sum(
            d.read_meter.total + d.write_meter.total
            for n in cl.nodes.values()
            for d in (n.hdfs_device, n.tmp_device)
        )

    assert total_bytes(PolicySpec.native()) == total_bytes(PolicySpec.sfqd(2))
