#!/usr/bin/env python
"""Extending IBIS: plug a custom I/O scheduler into the framework.

The paper's Table 3 argues that IBIS makes new schedulers cheap to
build (~a thousand lines for a sophisticated one).  This example builds
a tiny *strict-priority* scheduler (highest weight always dispatches
first, depth-limited) in ~30 lines, wires it into a datanode, and
contrasts its behaviour with SFQ(D): strict priority starves the
low-weight flow while SFQ shares proportionally.

Run:  python examples/custom_scheduler.py
"""

import heapq

from repro import MB, HDD_PROFILE
from repro.core import IOClass, IORequest, IOTag, SFQDScheduler
from repro.core.base import IOScheduler
from repro.simcore import Simulator
from repro.storage import StorageDevice


class StrictPriorityScheduler(IOScheduler):
    """Dispatch the highest-weight queued request first, up to ``depth``
    outstanding.  Work-conserving but unfair: a busy high-priority flow
    starves everyone else."""

    algorithm = "strict-priority"

    def __init__(self, sim, device, depth=4, name=""):
        super().__init__(sim, device, name)
        self.depth = depth
        self._queue = []
        self._seq = 0

    @property
    def queued(self):
        return len(self._queue)

    def _enqueue(self, req):
        self._seq += 1
        heapq.heappush(self._queue, (-req.weight, self._seq, req))
        self._pump()

    def _on_complete(self, req, done):
        self._pump()

    def _pump(self):
        while self._queue and self.outstanding < self.depth:
            _p, _s, req = heapq.heappop(self._queue)
            self._dispatch_to_device(req)


def drive(make_scheduler) -> tuple[float, float]:
    """Two backlogged flows (weights 4:1) for 5 simulated seconds."""
    sim = Simulator()
    device = StorageDevice(sim, HDD_PROFILE)
    sched = make_scheduler(sim, device)

    def flow(app, weight):
        while True:
            req = IORequest(sim, IOTag(app, weight), "read", 4 * MB,
                            IOClass.PERSISTENT)
            yield sched.submit(req)

    # More streams per app than the dispatch depth, so the queue always
    # holds requests of both priorities — the regime where the two
    # policies diverge.
    for _ in range(8):
        sim.process(flow("high", 4.0))
        sim.process(flow("low", 1.0))
    sim.run(until=5.0)
    stats = sched.stats.service_by_app
    return stats.get("high", 0.0) / MB, stats.get("low", 0.0) / MB


def main() -> None:
    hi, lo = drive(lambda sim, dev: StrictPriorityScheduler(sim, dev, depth=4))
    print(f"strict priority : high {hi:7.0f} MB, low {lo:7.0f} MB "
          f"(ratio {hi / max(lo, 1e-9):.1f}, target 4.0)")
    hi, lo = drive(lambda sim, dev: SFQDScheduler(sim, dev, depth=4))
    print(f"sfq(d=4)        : high {hi:7.0f} MB, low {lo:7.0f} MB "
          f"(ratio {hi / max(lo, 1e-9):.1f}, target 4.0)")


if __name__ == "__main__":
    main()
