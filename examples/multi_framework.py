#!/usr/bin/env python
"""Multi-framework I/O scheduling: Hive queries vs MapReduce batch jobs.

A TPC-H decision-support query (Q21 on Hive — a chain of MapReduce
stages) shares the cluster with TeraSort.  The example compares four
I/O-management regimes (§6, §7.4):

* native YARN — no I/O management at all;
* cgroups blkio weight 100:1 — can only prioritise the *intermediate*
  I/Os that containers issue directly; HDFS I/Os (serviced by the
  shared Data Node daemon) remain unmanaged;
* cgroups blkio throttle — caps TeraSort's intermediate I/O rate, a
  non-work-conserving policy that also hurts TeraSort;
* IBIS 100:1 — interposes *all* I/O classes and proportionally shares
  them, work-conserving.

Run:  python examples/multi_framework.py
"""

from repro import GB, MB, BigDataCluster, PolicySpec, default_cluster
from repro.core.profiling import calibrate_controller
from repro.hive import run_query, tpch_q21
from repro.workloads import terasort


def standalone_runtimes(config):
    cluster = BigDataCluster(config, PolicySpec.native())
    query = tpch_q21(config)
    cluster.preload_input(query.table_paths[0], query.table_bytes[0])
    qrun = run_query(cluster, query, max_cores=96)
    cluster.run(qrun.done)

    cluster2 = BigDataCluster(config, PolicySpec.native())
    cluster2.preload_input("/in/tera", 100 * GB)
    ts = cluster2.submit(terasort(config, "/in/tera"), max_cores=96)
    cluster2.run()
    return qrun.runtime, ts.runtime


def contended(config, policy, io_weight):
    cluster = BigDataCluster(config, policy)
    query = tpch_q21(config)
    cluster.preload_input(query.table_paths[0], query.table_bytes[0])
    cluster.preload_input("/in/tera", 100 * GB)
    qrun = run_query(cluster, query, io_weight=io_weight, max_cores=48)
    ts = cluster.submit(terasort(config, "/in/tera"),
                        io_weight=1.0, max_cores=48)
    cluster.run(qrun.done, ts.done)
    return qrun.runtime, ts.runtime


def main() -> None:
    config = default_cluster()
    q_solo, ts_solo = standalone_runtimes(config)
    print(f"standalone: Q21 {q_solo:.1f} s, TeraSort {ts_solo:.1f} s\n")
    print(f"{'policy':<22} {'Q21 rel perf':>12} {'TS rel perf':>12}")

    controller = calibrate_controller(config)
    regimes = [
        ("native", PolicySpec.native(), 1.0),
        ("cgroups weight 100:1", PolicySpec.cgroups_weight(), 100.0),
        ("cgroups throttle", PolicySpec.cgroups_throttle(
            {"terasort": 48.0 * MB}), 100.0),
        ("IBIS 100:1", PolicySpec.sfqd2(controller), 100.0),
    ]
    for label, policy, weight in regimes:
        q_rt, ts_rt = contended(config, policy, weight)
        print(
            f"{label:<22} {min(1.0, q_solo / q_rt):>12.2f} "
            f"{min(1.0, ts_solo / ts_rt):>12.2f}"
        )


if __name__ == "__main__":
    main()
