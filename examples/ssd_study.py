#!/usr/bin/env python
"""Flash asymmetry study: why SFQ(D2) splits its reference latencies.

On an SSD, writes are several times slower than reads and queued writes
delay subsequent reads.  The paper's controller therefore profiles
separate read/write reference latencies and blends them by the observed
mix each period (§4).  This example:

1. profiles the SSD model, showing the asymmetric references;
2. runs the WC+TG isolation scenario on SSDs with (a) the split
   references and (b) a naive single reference taken from the *read*
   profile only.  Against a write-heavy aggressor the naive reference
   reads every period as "overloaded", pins the depth low, and gives up
   cluster throughput; the split reference isolates equally well while
   letting TeraGen keep the flash busy.

Run:  python examples/ssd_study.py
"""

import dataclasses

from repro import GB, MB, BigDataCluster, PolicySpec, SSD_PROFILE, default_cluster
from repro.core.profiling import calibrate_controller
from repro.workloads import teragen, wordcount


def run_wc(config, policy, with_tg=True):
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(config, "/in/wiki"),
                        io_weight=32.0, max_cores=48)
    if with_tg:
        cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
    cluster.run(wc.done)
    total = sum(
        d.read_meter.window_total(0, wc.finish_time)
        + d.write_meter.window_total(0, wc.finish_time)
        for n in cluster.nodes.values()
        for d in (n.hdfs_device, n.tmp_device)
    )
    return wc.runtime, total / wc.finish_time / MB


def main() -> None:
    config = default_cluster(storage=SSD_PROFILE)
    ctrl = calibrate_controller(config)
    print("profiled SSD references: "
          f"read {ctrl.ref_latency_read * 1000:.1f} ms, "
          f"write {ctrl.ref_latency_write * 1000:.1f} ms "
          f"({ctrl.ref_latency_write / ctrl.ref_latency_read:.1f}x asymmetry)\n")

    alone, _ = run_wc(config, PolicySpec.native(), with_tg=False)
    native, thr_native = run_wc(config, PolicySpec.native())
    split, thr_split = run_wc(config, PolicySpec.sfqd2(ctrl))

    # Naive controller: single reference taken from the read profile.
    naive = dataclasses.replace(ctrl, ref_latency_write=ctrl.ref_latency_read)
    naive_rt, thr_naive = run_wc(config, PolicySpec.sfqd2(naive))

    print(f"WordCount alone:              {alone:6.2f} s")
    print(f"+ TeraGen, native:            {native:6.2f} s "
          f"({100 * (native / alone - 1):3.0f}%)  cluster {thr_native:5.0f} MB/s")
    print(f"+ TeraGen, SFQ(D2) split ref: {split:6.2f} s "
          f"({100 * (split / alone - 1):3.0f}%)  cluster {thr_split:5.0f} MB/s")
    print(f"+ TeraGen, SFQ(D2) naive ref: {naive_rt:6.2f} s "
          f"({100 * (naive_rt / alone - 1):3.0f}%)  cluster {thr_naive:5.0f} MB/s")


if __name__ == "__main__":
    main()
