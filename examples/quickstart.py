#!/usr/bin/env python
"""Quickstart: protect a compute-heavy job from an I/O hog with IBIS.

Builds the paper's 8-worker Hadoop/YARN testbed (simulated), runs
WordCount alone, then against TeraGen on native Hadoop (no I/O
management), then again with IBIS's SFQ(D2) scheduler and a 32:1
bandwidth sharing ratio favouring WordCount — reproducing the headline
result of the paper's §7.2 in a few seconds.

Run:  python examples/quickstart.py
"""

from repro import GB, BigDataCluster, PolicySpec, default_cluster
from repro.core.profiling import calibrate_controller
from repro.workloads import teragen, wordcount


def run_wordcount(policy, with_teragen: bool) -> float:
    """One experiment: WordCount (half the CPUs) +/- TeraGen."""
    config = default_cluster()
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/wiki", 50 * GB)  # 50 GB Wikipedia text
    wc = cluster.submit(
        wordcount(config, "/in/wiki"),
        io_weight=32.0,     # IBIS bandwidth share (only ratios matter)
        max_cores=48,       # half of the 96 cores, as in the paper
    )
    if with_teragen:
        cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
    cluster.run(wc.done)
    return wc.runtime


def main() -> None:
    alone = run_wordcount(PolicySpec.native(), with_teragen=False)
    print(f"WordCount alone:                 {alone:6.2f} s")

    native = run_wordcount(PolicySpec.native(), with_teragen=True)
    print(
        f"WordCount + TeraGen (native):    {native:6.2f} s  "
        f"(slowdown {100 * (native / alone - 1):.0f}%)"
    )

    # IBIS needs a reference latency for the SFQ(D2) controller, found
    # by profiling the storage once per setup (§4).
    controller = calibrate_controller(default_cluster())
    ibis = run_wordcount(PolicySpec.sfqd2(controller), with_teragen=True)
    print(
        f"WordCount + TeraGen (IBIS):      {ibis:6.2f} s  "
        f"(slowdown {100 * (ibis / alone - 1):.0f}%)"
    )


if __name__ == "__main__":
    main()
