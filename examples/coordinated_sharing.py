#!/usr/bin/env python
"""Total-service proportional sharing via the Scheduling Broker (§5).

Two equal-weight scan applications share the cluster, but one's data
lives on only half the nodes (skewed placement — one of the sources of
uneven per-node service the paper lists).  Local-only scheduling gives
the widely-placed scan a large multiple of the skewed scan's total
I/O service; enabling the broker's DSFQ coordination pulls the split
back toward the 1:1 target.

Run:  python examples/coordinated_sharing.py
"""

from repro import GB, BigDataCluster, PolicySpec, default_cluster
from repro.core.profiling import calibrate_controller
from repro.workloads import teravalidate


def measure(config, coordinated: bool, window: float = 8.0):
    controller = calibrate_controller(config)
    cluster = BigDataCluster(
        config, PolicySpec.sfqd2(controller, coordinated=coordinated)
    )
    skew_nodes = [f"dn{i:02d}" for i in range(config.n_workers // 2)]
    cluster.preload_input("/in/hot", 800 * GB, nodes=skew_nodes)
    cluster.preload_input("/in/wide", 800 * GB)
    cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                   io_weight=1.0, max_cores=48)
    cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                   io_weight=1.0, max_cores=48)
    cluster.run_for(window)

    service = cluster.total_service_by_app()
    hot = next(v for k, v in service.items() if "hot" in k)
    wide = next(v for k, v in service.items() if "wide" in k)
    messages = cluster.broker.messages if cluster.broker else 0
    return wide / hot, messages


def main() -> None:
    config = default_cluster()
    print("two equal-weight scans; target total-service ratio = 1.0\n")
    ratio, _ = measure(config, coordinated=False)
    print(f"no coordination : wide/hot total service = {ratio:.2f}")
    ratio, messages = measure(config, coordinated=True)
    print(f"with broker sync: wide/hot total service = {ratio:.2f} "
          f"({messages} broker messages)")


if __name__ == "__main__":
    main()
