"""A deliberately simple cluster network model.

The paper's design note (§3) holds that IBIS needs no network-layer
bandwidth control because (1) storage saturates before the Gigabit
network and (2) scheduling the storage endpoints of network I/Os
indirectly shapes network contention.  The model therefore only needs
to create realistic *transfer delays* and congestion when many flows
land on one receiver:

* each node has one full-duplex NIC;
* concurrent flows into (out of) a NIC share its bandwidth equally
  (processor sharing — a good approximation of per-flow TCP fairness
  on a non-blocking switch);
* a transfer is paced by the slower of its two NIC shares; we
  approximate this by charging the bytes to both endpoint links and
  completing when both are done.
"""

from __future__ import annotations

from repro.config import StorageProfile
from repro.simcore import Event, Simulator
from repro.storage import StorageDevice

__all__ = ["Link", "NetFabric"]


class Link:
    """One direction of a NIC, as a flat processor-sharing pipe."""

    def __init__(self, sim: Simulator, bandwidth: float, name: str):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        # Reuse the PS machinery of StorageDevice with a flat rate curve:
        # n flows share `bandwidth` equally, no knee, no overhead.
        self._pipe = StorageDevice(
            sim,
            StorageProfile(name=f"link:{name}", peak_rate=bandwidth, n_half=0.0),
            name=f"link:{name}",
        )
        self.name = name

    def send(self, nbytes: int) -> Event:
        return self._pipe.submit("read", nbytes)

    @property
    def bytes_carried(self) -> float:
        return self._pipe.read_meter.total

    @property
    def flows(self) -> int:
        return self._pipe.in_flight

    # -------------------------------------------------------------- faults
    @property
    def failed(self) -> bool:
        return self._pipe.failed

    def set_rate_factor(self, factor: float) -> None:
        """Scale this direction's bandwidth (link degradation)."""
        self._pipe.set_rate_factor(factor)

    def fail(self, exc: BaseException) -> None:
        """Cut the link: in-flight and future sends fail with ``exc``."""
        self._pipe.fail(exc)

    def repair(self) -> None:
        self._pipe.repair()


class NetFabric:
    """All NICs plus the transfer primitive used by HDFS and shuffle."""

    def __init__(self, sim: Simulator, node_ids: list[str], bandwidth: float):
        self.sim = sim
        self.bandwidth = bandwidth
        self.egress = {nid: Link(sim, bandwidth, f"{nid}:out") for nid in node_ids}
        self.ingress = {nid: Link(sim, bandwidth, f"{nid}:in") for nid in node_ids}
        self.total_bytes = 0.0

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Local 'transfers' (src == dst) complete immediately — the data
        never leaves the node.  Remote transfers occupy both the sender's
        egress and the receiver's ingress; the completion fires when the
        slower side finishes.
        """
        if src not in self.egress or dst not in self.egress:
            raise KeyError(f"unknown endpoint in transfer {src!r}->{dst!r}")
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        done = Event(self.sim, name=f"xfer:{src}->{dst}")
        if src == dst:
            done.succeed(nbytes)
            return done
        self.total_bytes += nbytes
        both = self.sim.all_of(
            [self.egress[src].send(nbytes), self.ingress[dst].send(nbytes)]
        )

        def _settle(ev: Event) -> None:
            # A failed leg (link cut mid-transfer) must fail the transfer,
            # not strand it: all_of propagates the first leg failure.
            if ev.exception is not None:
                done.fail(ev.exception)
            else:
                done.succeed(nbytes)

        both.callbacks.append(_settle)
        return done
