"""Network substrate: per-node NICs with fair-shared bandwidth."""

from repro.net.fabric import Link, NetFabric

__all__ = ["Link", "NetFabric"]
