"""DFSClient: the task-facing HDFS interface.

Tasks use the DFSClient to read splits and write output files; the
client resolves blocks with the NameNode and streams them through the
:class:`BlockService`, carrying the application tag in every request
header exactly as the modified DFSClient of the prototype does (§3).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import IOTag
from repro.hdfs.blocks import HdfsFile
from repro.hdfs.datanode import BlockService
from repro.hdfs.namenode import NameNode
from repro.simcore import Simulator

__all__ = ["DFSClient"]


class DFSClient:
    def __init__(self, sim: Simulator, namenode: NameNode, blocks: BlockService):
        self.sim = sim
        self.namenode = namenode
        self.blocks = blocks

    # ----------------------------------------------------------------- read
    def read_file(self, path: str, reader_node: str, tag: IOTag):
        """Generator: read a whole file sequentially; returns bytes read."""
        f = self.namenode.lookup(path)
        return (yield from self.read_blocks(f, range(len(f.blocks)), reader_node, tag))

    def read_blocks(
        self,
        f: HdfsFile,
        indices: Sequence[int],
        reader_node: str,
        tag: IOTag,
    ):
        """Generator: read selected blocks of a file (a map task's split)."""
        total = 0
        for i in indices:
            total += yield from self.blocks.read_block(f.blocks[i], reader_node, tag)
        return total

    # ---------------------------------------------------------------- write
    def write_file(
        self,
        path: str,
        size: int,
        writer_node: str,
        tag: IOTag,
        spread: bool = False,
    ):
        """Generator: create and write a file of ``size`` bytes.

        Blocks are written sequentially through the replication
        pipeline; returns the created :class:`HdfsFile`.
        """
        f = self.namenode.create_file(path, size, writer_node=writer_node,
                                      spread=spread)
        for loc in f.blocks:
            yield from self.blocks.write_block(loc, writer_node, tag)
        return f

    # ------------------------------------------------------------- locality
    def preferred_nodes(self, path: str, block_index: int) -> tuple[str, ...]:
        """Replica nodes of one block — the AM's locality hint."""
        return self.namenode.lookup(path).blocks[block_index].replicas

    def preload(
        self,
        path: str,
        size: int,
        node: Optional[str] = None,
        nodes: Optional[Sequence[str]] = None,
    ) -> HdfsFile:
        """Instantly materialise an input file (no simulated I/O), spread
        evenly across the cluster — the state after the paper's data
        ingestion, which is not part of any measured experiment.
        ``nodes`` restricts placement (skewed data distribution, §7.6)."""
        return self.namenode.create_file(
            path, size, writer_node=node, spread=True, candidates=nodes
        )
