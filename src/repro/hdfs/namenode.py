"""The NameNode: namespace and replica placement.

Placement follows HDFS's default policy: first replica on the writer's
node (when the writer is a datanode), the remaining replicas on
distinct randomly-chosen nodes.  Data spread for pre-loaded input files
uses round-robin primaries so map tasks get even locality — matching a
well-balanced cluster, which the paper's experiments assume.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

import numpy as np

from repro.hdfs.blocks import Block, BlockLocations, HdfsFile

__all__ = ["NameNode"]


class NameNode:
    def __init__(
        self,
        datanodes: Sequence[str],
        block_size: int,
        replication: int,
        rng: np.random.Generator,
    ):
        if not datanodes:
            raise ValueError("need at least one datanode")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        if not (1 <= replication):
            raise ValueError("replication must be >= 1")
        self.datanodes = list(datanodes)
        self.block_size = int(block_size)
        self.replication = min(int(replication), len(self.datanodes))
        self._rng = rng
        self._files: dict[str, HdfsFile] = {}
        self._next_block_id = itertools.count(1)
        self._rr = 0  # round-robin pointer for spread placement
        self._dead: set[str] = set()  # nodes excluded from placement

    # ------------------------------------------------------------- liveness
    def node_down(self, node: str) -> None:
        """Mark a datanode dead: it stops receiving new replicas."""
        if node not in self.datanodes:
            raise ValueError(f"unknown datanode {node!r}")
        self._dead.add(node)

    def node_up(self, node: str) -> None:
        """A dead datanode rejoined the cluster."""
        self._dead.discard(node)

    def is_alive(self, node: str) -> bool:
        return node not in self._dead

    @property
    def alive_datanodes(self) -> list[str]:
        if not self._dead:
            return list(self.datanodes)
        return [n for n in self.datanodes if n not in self._dead]

    # ---------------------------------------------------------------- reads
    def lookup(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def files(self) -> list[str]:
        return sorted(self._files)

    # --------------------------------------------------------------- writes
    def split_into_blocks(self, path: str, size: int) -> list[Block]:
        """Plan the block list for a file of ``size`` bytes."""
        if size <= 0:
            raise ValueError("file size must be positive")
        blocks = []
        remaining = size
        index = 0
        while remaining > 0:
            bsize = min(self.block_size, remaining)
            blocks.append(
                Block(next(self._next_block_id), path, index, bsize)
            )
            remaining -= bsize
            index += 1
        return blocks

    def create_file(self, path: str, size: int, writer_node: Optional[str] = None,
                    spread: bool = False,
                    candidates: Optional[Sequence[str]] = None) -> HdfsFile:
        """Create a file and place its replicas.

        ``spread=True`` round-robins primaries across datanodes (used to
        pre-load benchmark inputs evenly).  Otherwise the primary is the
        writer's node, per the default HDFS policy.  ``candidates``
        restricts placement to a node subset — used to induce the uneven
        data distribution whose effect §7.6 studies.
        """
        if path in self._files:
            raise FileExistsError(path)
        f = HdfsFile(path)
        for block in self.split_into_blocks(path, size):
            f.blocks.append(BlockLocations(block, self.place_replicas(
                writer_node=None if spread else writer_node,
                candidates=candidates,
            )))
        self._files[path] = f
        return f

    def place_replicas(
        self,
        writer_node: Optional[str] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> tuple[str, ...]:
        """Pick ``replication`` distinct datanodes, primary first."""
        pool = list(candidates) if candidates else self.datanodes
        for n in pool:
            if n not in self.datanodes:
                raise ValueError(f"unknown datanode {n!r} in placement pool")
        if self._dead:
            pool = [n for n in pool if n not in self._dead]
            if not pool:
                raise ValueError("no live datanode available for placement")
        replication = min(self.replication, len(pool))
        if writer_node is not None and writer_node not in self.datanodes:
            raise ValueError(f"unknown writer node {writer_node!r}")
        if writer_node is None or writer_node not in pool:
            primary = pool[self._rr % len(pool)]
            self._rr += 1
        else:
            primary = writer_node
        others = [n for n in pool if n != primary]
        extra = self._rng.choice(
            len(others), size=replication - 1, replace=False
        ) if replication > 1 else []
        return (primary, *(others[i] for i in extra))

    def delete(self, path: str) -> None:
        self._files.pop(path, None)
