"""Block and file metadata objects."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Block", "BlockLocations", "HdfsFile"]


@dataclass(frozen=True)
class Block:
    """One HDFS block of a file."""

    block_id: int
    path: str
    index: int   # position within the file
    size: int    # bytes (the last block may be short)

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if self.index < 0:
            raise ValueError("block index must be non-negative")


@dataclass(frozen=True)
class BlockLocations:
    """A block plus the datanodes holding its replicas (primary first)."""

    block: Block
    replicas: tuple[str, ...]

    def __post_init__(self):
        if not self.replicas:
            raise ValueError("a block must have at least one replica")

    def closest(self, reader_node: str) -> str:
        """The replica a reader should use: local if present, else primary."""
        if reader_node in self.replicas:
            return reader_node
        return self.replicas[0]


@dataclass
class HdfsFile:
    """Namespace entry: an ordered list of located blocks."""

    path: str
    blocks: list[BlockLocations] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(loc.block.size for loc in self.blocks)
