"""Block service: streams blocks through the interposed schedulers.

The DataXceiver of a real datanode streams a block as a pipeline of
packets: several chunks are in flight per stream (readahead for reads,
write-behind for writes).  This pipelining is what lets an uncontrolled
aggressive application flood the storage on native Hadoop — "TeraGen's
I/Os are sent to storage as soon as they come without any control"
(§7.2) — and what the IBIS schedulers' dispatch depth D reins in.

Every chunk request carries the application's :class:`IOTag` (§3) and
is queued at the PERSISTENT-class scheduler of the replica's node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core import DataNodeIO, IOClass, IORequest, IOTag

# Deprecated re-exports: the chunking/windowing primitives moved into
# the dataplane (every streaming entry point shares them, not just
# HDFS).  Import them from repro.dataplane.streams in new code.
from repro.dataplane.streams import iter_chunks, windowed_stream
from repro.hdfs.blocks import BlockLocations
from repro.net import NetFabric
from repro.simcore import Event, FaultError, Interrupt, Simulator
from repro.telemetry import REPLICA_FAILOVER, ReplicaFailover, TelemetryBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultInjector, FaultPlan

__all__ = ["BlockService", "iter_chunks", "windowed_stream"]


class BlockService:
    """Chunked, pipelined block read/write against the interposition layer."""

    def __init__(
        self,
        sim: Simulator,
        nodes: dict[str, DataNodeIO],
        net: NetFabric,
        chunk: int,
        read_window: int = 2,
        write_window: int = 4,
        telemetry: Optional[TelemetryBus] = None,
    ):
        self.sim = sim
        self.nodes = nodes
        self.net = net
        self.chunk = chunk
        self.read_window = read_window
        self.write_window = write_window
        self.telemetry = telemetry
        self._fault_plan: Optional["FaultPlan"] = None
        self._injector: Optional["FaultInjector"] = None

    def enable_failover(
        self, plan: "FaultPlan", injector: Optional["FaultInjector"] = None
    ) -> None:
        """Turn on the read retry/failover path (fault-injected runs only;
        without a plan, reads take the exact pre-fault-layer code path)."""
        self._fault_plan = plan
        self._injector = injector

    def read_block(self, loc: BlockLocations, reader_node: str, tag: IOTag):
        """Generator: stream one block to ``reader_node``.

        Reads from the closest replica; remote reads additionally cross
        the network.  Returns the number of bytes read.  With a fault
        plan attached, a failed or timed-out attempt retries on the next
        replica with exponential backoff.
        """
        if self._fault_plan is not None:
            return (yield from self._read_block_failover(loc, reader_node, tag))
        yield from self._stream_from_replica(
            loc, loc.closest(reader_node), reader_node, tag
        )
        return loc.block.size

    def _stream_from_replica(
        self, loc: BlockLocations, replica: str, reader_node: str, tag: IOTag
    ):
        """Generator: one streaming attempt from one chosen replica."""
        node = self.nodes[replica]
        remote = replica != reader_node

        def make_chunk(size: int) -> Callable[[], Event]:
            def thunk() -> Event:
                req = IORequest(self.sim, tag, "read", size, IOClass.PERSISTENT)
                if not remote:
                    return node.submit(req)

                def leg():
                    yield node.submit(req)
                    yield self.net.transfer(replica, reader_node, size)

                return self.sim.process(leg(), name="read-leg")

            return thunk

        thunks = (make_chunk(s) for s in iter_chunks(loc.block.size, self.chunk))
        yield from windowed_stream(self.sim, thunks, self.read_window)

    # -------------------------------------------------------- read failover
    def _failover_order(self, loc: BlockLocations, reader_node: str) -> list[str]:
        """Replica preference: local first (matching :meth:`closest`),
        then the remaining replicas in placement order."""
        if reader_node in loc.replicas:
            return [reader_node] + [r for r in loc.replicas if r != reader_node]
        return list(loc.replicas)

    def _read_block_failover(self, loc: BlockLocations, reader_node: str, tag: IOTag):
        plan = self._fault_plan
        order = self._failover_order(loc, reader_node)
        last_exc: Optional[Exception] = None
        for attempt in range(plan.max_read_attempts):
            if attempt > 0 and plan.read_backoff > 0:
                yield self.sim.timeout(plan.read_backoff * 2 ** (attempt - 1))
            live = order
            if self._injector is not None:
                live = [r for r in order if self._injector.alive(r)] or order
            replica = live[attempt % len(live)]
            try:
                yield from self._read_attempt(
                    loc, replica, reader_node, tag, plan.read_timeout
                )
                return loc.block.size
            except FaultError as exc:
                last_exc = exc
                telemetry = self.telemetry
                if telemetry is not None and telemetry.publishes(REPLICA_FAILOVER):
                    telemetry.publish(ReplicaFailover(
                        t=self.sim.now, source=reader_node, app_id=tag.app_id,
                        block_id=loc.block.block_id, failed=replica,
                        attempt=attempt + 1,
                    ))
        raise last_exc

    def _read_attempt(
        self,
        loc: BlockLocations,
        replica: str,
        reader_node: str,
        tag: IOTag,
        timeout: float,
    ):
        """Generator: one attempt, optionally bounded by ``timeout``."""
        if timeout <= 0:
            yield from self._stream_from_replica(loc, replica, reader_node, tag)
            return
        from repro.faults.errors import ReadTimeout

        proc = self.sim.process(
            self._stream_from_replica(loc, replica, reader_node, tag),
            name=f"read-try:{replica}",
        )
        guard = self.sim.timeout(timeout)
        yield self.sim.any_of([proc, guard])
        if not proc.is_alive:
            _ = proc.value  # re-raise a failure that raced the guard
            return
        timeout_exc = ReadTimeout(
            f"read of block {loc.block.block_id} from {replica} "
            f"exceeded {timeout}s"
        )
        proc.interrupt(timeout_exc)
        try:
            yield proc
        except Interrupt:
            pass
        raise timeout_exc

    def write_block(self, loc: BlockLocations, writer_node: str, tag: IOTag):
        """Generator: write one block through the replication pipeline.

        Each chunk is persisted on every replica (crossing the network
        for remote ones); up to ``write_window`` chunks ride the
        pipeline concurrently, as HDFS packets do.
        """

        def make_chunk(size: int) -> Callable[[], Event]:
            def thunk() -> Event:
                legs = [
                    self.sim.process(
                        self._write_chunk(replica, writer_node, size, tag),
                        name=f"pipe:{replica}",
                    )
                    for replica in loc.replicas
                ]
                return self.sim.all_of(legs)

            return thunk

        thunks = (make_chunk(s) for s in iter_chunks(loc.block.size, self.chunk))
        yield from windowed_stream(self.sim, thunks, self.write_window)
        return loc.block.size

    def _write_chunk(self, replica: str, writer_node: str, size: int, tag: IOTag):
        if replica != writer_node:
            yield self.net.transfer(writer_node, replica, size)
        req = IORequest(self.sim, tag, "write", size, IOClass.PERSISTENT)
        yield self.nodes[replica].submit(req)
