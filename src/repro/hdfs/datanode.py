"""Block service: streams blocks through the interposed schedulers.

The DataXceiver of a real datanode streams a block as a pipeline of
packets: several chunks are in flight per stream (readahead for reads,
write-behind for writes).  This pipelining is what lets an uncontrolled
aggressive application flood the storage on native Hadoop — "TeraGen's
I/Os are sent to storage as soon as they come without any control"
(§7.2) — and what the IBIS schedulers' dispatch depth D reins in.

Every chunk request carries the application's :class:`IOTag` (§3) and
is queued at the PERSISTENT-class scheduler of the replica's node.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core import DataNodeIO, IOClass, IORequest, IOTag
from repro.hdfs.blocks import BlockLocations
from repro.net import NetFabric
from repro.simcore import Event, Simulator

__all__ = ["BlockService", "iter_chunks", "windowed_stream"]


def iter_chunks(total: int, chunk: int) -> Iterator[int]:
    """Yield chunk sizes covering ``total`` bytes."""
    if total <= 0:
        raise ValueError("total must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    remaining = total
    while remaining > 0:
        size = min(chunk, remaining)
        yield size
        remaining -= size


def windowed_stream(
    sim: Simulator,
    chunk_events: Iterator[Callable[[], Event]],
    window: int,
):
    """Generator: drive chunk operations keeping up to ``window`` in flight.

    Each element of ``chunk_events`` is a thunk producing the event for
    one chunk (a device completion, or a sub-process for multi-leg
    chunks).  Completes when every chunk has completed.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    active: list[Event] = []
    for make in chunk_events:
        while len(active) >= window:
            yield sim.any_of(active)
            active = [e for e in active if not e.processed]
        active.append(make())
    if active:
        yield sim.all_of(active)


class BlockService:
    """Chunked, pipelined block read/write against the interposition layer."""

    def __init__(
        self,
        sim: Simulator,
        nodes: dict[str, DataNodeIO],
        net: NetFabric,
        chunk: int,
        read_window: int = 2,
        write_window: int = 4,
    ):
        self.sim = sim
        self.nodes = nodes
        self.net = net
        self.chunk = chunk
        self.read_window = read_window
        self.write_window = write_window

    def read_block(self, loc: BlockLocations, reader_node: str, tag: IOTag):
        """Generator: stream one block to ``reader_node``.

        Reads from the closest replica; remote reads additionally cross
        the network.  Returns the number of bytes read.
        """
        replica = loc.closest(reader_node)
        node = self.nodes[replica]
        remote = replica != reader_node

        def make_chunk(size: int) -> Callable[[], Event]:
            def thunk() -> Event:
                req = IORequest(self.sim, tag, "read", size, IOClass.PERSISTENT)
                if not remote:
                    return node.submit(req)

                def leg():
                    yield node.submit(req)
                    yield self.net.transfer(replica, reader_node, size)

                return self.sim.process(leg(), name="read-leg")

            return thunk

        thunks = (make_chunk(s) for s in iter_chunks(loc.block.size, self.chunk))
        yield from windowed_stream(self.sim, thunks, self.read_window)
        return loc.block.size

    def write_block(self, loc: BlockLocations, writer_node: str, tag: IOTag):
        """Generator: write one block through the replication pipeline.

        Each chunk is persisted on every replica (crossing the network
        for remote ones); up to ``write_window`` chunks ride the
        pipeline concurrently, as HDFS packets do.
        """

        def make_chunk(size: int) -> Callable[[], Event]:
            def thunk() -> Event:
                legs = [
                    self.sim.process(
                        self._write_chunk(replica, writer_node, size, tag),
                        name=f"pipe:{replica}",
                    )
                    for replica in loc.replicas
                ]
                return self.sim.all_of(legs)

            return thunk

        thunks = (make_chunk(s) for s in iter_chunks(loc.block.size, self.chunk))
        yield from windowed_stream(self.sim, thunks, self.write_window)
        return loc.block.size

    def _write_chunk(self, replica: str, writer_node: str, size: int, tag: IOTag):
        if replica != writer_node:
            yield self.net.transfer(writer_node, replica, size)
        req = IORequest(self.sim, tag, "write", size, IOClass.PERSISTENT)
        yield self.nodes[replica].submit(req)
