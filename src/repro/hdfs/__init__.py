"""HDFS substrate: namenode, datanode block service, and the DFSClient.

The paper interposes at the GFS/HDFS layer (§3): map inputs are HDFS
reads, reduce outputs are HDFS writes (with a 3-way replication
pipeline), and the Data Node converts tagged block requests into local
file-system I/Os which the IBIS scheduler queues and dispatches.
"""

from repro.hdfs.blocks import Block, BlockLocations, HdfsFile
from repro.hdfs.client import DFSClient
from repro.hdfs.namenode import NameNode

__all__ = ["Block", "BlockLocations", "DFSClient", "HdfsFile", "NameNode"]
