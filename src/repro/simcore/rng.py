"""Named, seeded random-number streams.

Every stochastic decision in the simulation (data placement, compute
jitter, SWIM job sampling, ...) draws from a stream keyed by a stable
name, derived from one root seed.  Two runs with the same root seed are
bit-identical regardless of the order in which subsystems are created.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for per-purpose ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 20160531):  # HPDC'16 opening day
        if root_seed < 0:
            raise ValueError("root seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A registry whose streams are all derived under a sub-namespace."""
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:4], "little"))
