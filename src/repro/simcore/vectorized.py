"""Vectorized storage-device bank: batched ticks across a whole cluster.

The event-driven :class:`~repro.storage.device.StorageDevice` pays one
Python dispatch per request per device — fine for the paper's nine-node
testbed, a wall at the 1000-node scale the ROADMAP calls for.  This
module exploits a structural fact about the device model: between
population changes and flush-storm boundaries, the virtual work time
``V`` advances *linearly* in wall time.  For the closed-loop workloads
that dominate our experiments (each worker keeps exactly one request
outstanding per window slot, so a completion immediately triggers the
next submit), the in-flight population is a known constant ``W`` except
for the drain tail — which means every completion time in a segment can
be solved in closed form, for **all devices of a bank at once**, with a
handful of numpy array operations:

* ``B(n)`` concurrency curve: the aggregate rate ``rate_at(W)`` is a
  per-device scalar, evaluated once per segment instead of per request.
* Virtual-time advance: FCFS targets are a plain ``cumsum`` of request
  work; PS (uniform work) targets are a ``cumsum`` over generations.
* Flush-storm piecewise integration: a storm splits ``V(t)`` into two
  linear pieces; the completion solve is a vectorized ``where`` over
  the storm's remaining work capacity ``(storm_until - t) · rate · f``.

The Python-level loop runs once per *storm* (and once per drain-tail
slot), not once per request: a million-request bank costs a few hundred
array operations.

Semantics match the event-driven device for the supported workload
shape (closed loop, per-window submits): FCFS accepts arbitrary
per-request work, PS requires uniform work (unequal PS works complete
out of index order, which the closed-form solve does not model — it
raises ``ValueError`` rather than silently diverge).
``tests/simcore/test_vectorized.py`` pins the equivalence against
``StorageDevice`` request by request, storms included.

Determinism: the solve is pure float arithmetic on deterministic
inputs — no RNG, no dict ordering, no threading.  Results are identical
across runs and processes by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    np = None

from repro.config import StorageProfile

__all__ = ["BankResult", "DeviceBank"]


@dataclass(frozen=True)
class BankResult:
    """Outcome of a closed-loop bank run.

    Arrays are indexed ``[device, request]`` with requests in submission
    order (which, for the supported disciplines, is also completion
    order).
    """

    submit_times: "np.ndarray"      # (M, K) wall-clock submit per request
    completion_times: "np.ndarray"  # (M, K) wall-clock completion per request
    storms: int                     # flush storms triggered per device
    workers: int                    # closed-loop window W

    @property
    def n_devices(self) -> int:
        return self.completion_times.shape[0]

    @property
    def n_requests(self) -> int:
        """Requests *per device*."""
        return self.completion_times.shape[1]

    @property
    def makespan(self) -> "np.ndarray":
        """Per-device wall-clock time to drain the whole workload."""
        return self.completion_times[:, -1]

    @property
    def latencies(self) -> "np.ndarray":
        return self.completion_times - self.submit_times

    @property
    def total_requests(self) -> int:
        return self.completion_times.size


class DeviceBank:
    """A bank of identical-profile storage devices ticked together.

    ``rate_factor`` mirrors ``StorageDevice.set_rate_factor`` (fail-slow
    devices) but as a per-device *vector*, so a heterogeneously degraded
    fleet still runs in one batch: degradation changes completion
    *times*, never the byte-driven storm *indices*, which is what keeps
    the devices batchable.
    """

    def __init__(
        self,
        profile: StorageProfile,
        n_devices: int,
        rate_factor: "float | Sequence[float]" = 1.0,
    ):
        if np is None:
            raise RuntimeError(
                "DeviceBank requires numpy; install it or use the "
                "event-driven StorageDevice"
            )
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        self.profile = profile
        self.n_devices = n_devices
        self._fcfs = profile.discipline == "fcfs"
        factor = np.broadcast_to(
            np.asarray(rate_factor, dtype=np.float64), (n_devices,)
        ).copy()
        if np.any(factor <= 0):
            raise ValueError("rate factors must be > 0")
        self.rate_factor = factor

    # ------------------------------------------------------------------ api
    def run_closed_loop(
        self,
        n_requests: int,
        nbytes: "float | Sequence[float]",
        is_write: "Optional[Sequence[bool]]" = None,
        workers: int = 8,
    ) -> BankResult:
        """Simulate ``workers`` closed-loop submitters per device.

        Request ``k`` is submitted the instant request ``k - workers``
        completes (the first ``workers`` requests all at t=0) — exactly
        the shape produced by per-stream windowed pipelining in the
        dataplane.  ``nbytes`` and ``is_write`` are shared across
        devices (length ``n_requests`` or scalars); per-device
        heterogeneity enters through ``rate_factor``.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if n_requests <= 0:
            raise ValueError(f"n_requests must be positive, got {n_requests}")
        K, W = int(n_requests), int(workers)
        prof = self.profile
        sizes = np.broadcast_to(
            np.asarray(nbytes, dtype=np.float64), (K,)
        ).copy()
        if np.any(sizes <= 0):
            raise ValueError("nbytes must be positive")
        if is_write is None:
            wflag = np.zeros(K, dtype=bool)
        else:
            wflag = np.broadcast_to(np.asarray(is_write, dtype=bool), (K,)).copy()

        works = np.where(wflag, prof.write_cost, prof.read_cost) * sizes
        works += prof.request_overhead

        if not self._fcfs:
            if K % W:
                raise ValueError(
                    f"ps closed loop needs n_requests divisible by workers "
                    f"({K} % {W})"
                )
            if np.ptp(works) != 0.0:
                raise ValueError(
                    "ps discipline supports uniform request work only: "
                    "unequal works complete out of index order"
                )
            return self._run_ps(works, sizes, wflag, K, W)
        return self._run_fcfs(works, sizes, wflag, K, W)

    # ------------------------------------------------------------ internals
    def _storm_schedule(self, write_bytes: "np.ndarray"):
        """Submit indices at which a flush storm starts.

        The event-driven device decrements its write counter by exactly
        one threshold per triggering write, so as long as every single
        write is smaller than the threshold (asserted — true for any
        sane chunking), storm count after submit ``k`` is
        ``floor(cum_writes[k] / threshold)``.
        """
        threshold = self.profile.flush_threshold
        if threshold <= 0:
            return np.empty(0, dtype=np.int64)
        if float(write_bytes.max(initial=0.0)) >= threshold:
            raise ValueError(
                "storm accounting requires each write < flush_threshold"
            )
        crossings = np.floor_divide(np.cumsum(write_bytes), threshold)
        return np.flatnonzero(np.diff(crossings, prepend=0.0) > 0)

    @staticmethod
    def _solve(T, t, V, u, rate, storm_rate):
        """Wall-clock times at which ``V`` reaches each target in ``T``.

        ``V`` advances from time ``t`` at ``storm_rate`` until the storm
        end ``u`` (if ``u > t``), then at ``rate`` — the same two-piece
        integration as ``StorageDevice._advance``.  ``T`` is (k,) shared
        across devices; ``t, V, u, rate, storm_rate`` are (M,).
        """
        rel = T[None, :] - V[:, None]              # work left per completion
        storm_left = np.maximum(u - t, 0.0)        # seconds of storm left
        if not storm_left.any():
            return t[:, None] + rel / rate[:, None]
        cap = storm_left * storm_rate              # work the storm can pass
        in_storm = rel <= cap[:, None]
        t_in = t[:, None] + rel / storm_rate[:, None]
        t_out = np.maximum(u, t)[:, None] + (rel - cap[:, None]) / rate[:, None]
        return np.where(in_storm, t_in, t_out)

    def _run_fcfs(self, works, sizes, wflag, K, W):
        prof = self.profile
        M = self.n_devices
        ff = prof.flush_factor
        T = np.cumsum(works)                       # (K,) virtual targets
        write_bytes = np.where(wflag, sizes, 0.0)
        storm_at = self._storm_schedule(write_bytes)

        comp = np.empty((M, K), dtype=np.float64)
        t = np.zeros(M)        # wall clock at last solved completion
        V = np.zeros(M)        # virtual work time at ``t``
        u = np.zeros(M)        # storm end (storm_until)
        rate = prof.rate_at(W) * self.rate_factor  # steady-state aggregate
        storm_rate = rate * ff
        duration = prof.flush_duration

        tail_start = max(K - W, 0)                 # completions past the loop
        prev = 0
        # One Python iteration per *storm*: solve the whole segment of
        # completions before the triggering submit in one vector op,
        # then fold the storm into (u).
        for s in storm_at.tolist():
            # Submits end before the tail does (submit K-1 triggers at
            # completion K-1-W), so every storm start lands in the main
            # phase; only its *effect* can extend into the tail, which
            # the tail solve honors through (u).
            stop = min(max(s - W + 1, 0), tail_start)
            if stop > prev:
                comp[:, prev:stop] = self._solve(
                    T[prev:stop], t, V, u, rate, storm_rate
                )
                t = comp[:, stop - 1].copy()
                V[:] = T[stop - 1]
                prev = stop
            t_s = comp[:, s - W] if s >= W else np.zeros(M)
            u = np.maximum(u, t_s) + duration
        if tail_start > prev:
            comp[:, prev:tail_start] = self._solve(
                T[prev:tail_start], t, V, u, rate, storm_rate
            )
            t = comp[:, tail_start - 1].copy()
            V[:] = T[tail_start - 1]
            prev = tail_start

        # Drain tail: no submits remain, so the population shrinks by
        # one per completion and the B(n) curve re-evaluates each step.
        for j in range(prev, K):
            n = K - j
            rate_n = prof.rate_at(n) * self.rate_factor
            comp[:, j] = self._solve(
                T[j : j + 1], t, V, u, rate_n, rate_n * ff
            )[:, 0]
            t = comp[:, j].copy()
            V[:] = T[j]

        submit = np.zeros((M, K), dtype=np.float64)
        if K > W:
            submit[:, W:] = comp[:, : K - W]
        return BankResult(
            submit_times=submit,
            completion_times=comp,
            storms=int(storm_at.size),
            workers=W,
        )

    def _run_ps(self, works, sizes, wflag, K, W):
        """Processor sharing with uniform work: the ``W`` in-flight
        requests advance in lockstep and complete a *generation* at a
        time, so the solve collapses to ``K / W`` generation targets."""
        prof = self.profile
        M = self.n_devices
        ff = prof.flush_factor
        G = K // W
        gen_work = works[0] * 1.0                  # uniform by validation
        T = np.cumsum(np.full(G, gen_work))        # per-request PS targets
        # Storms: generation g is submitted at the completion instant of
        # generation g-1 (gen 0 at t=0); all W of its writes land at that
        # instant, each able to trigger at most one storm.
        threshold = prof.flush_threshold
        write_bytes = np.where(wflag, sizes, 0.0)
        if threshold > 0:
            if float(write_bytes.max(initial=0.0)) >= threshold:
                raise ValueError(
                    "storm accounting requires each write < flush_threshold"
                )
            crossings = np.floor_divide(np.cumsum(write_bytes), threshold)
            per_gen = np.diff(
                np.concatenate([[0.0], crossings[W - 1 :: W]])
            ).astype(np.int64)
        else:
            per_gen = np.zeros(G, dtype=np.int64)

        gen_comp = np.empty((M, G), dtype=np.float64)
        t = np.zeros(M)
        V = np.zeros(M)
        u = np.zeros(M)
        rate = prof.rate_at(W) * self.rate_factor / W  # per-flow share
        storm_rate = rate * ff
        duration = prof.flush_duration

        stormy = np.flatnonzero(per_gen)
        prev = 0
        for g in stormy.tolist():
            # Storms of generation g start at its *submit* (completion
            # of g-1), so completions prev..g-1 use the current state.
            if g > prev:
                gen_comp[:, prev:g] = self._solve(
                    T[prev:g], t, V, u, rate, storm_rate
                )
                t = gen_comp[:, g - 1].copy()
                V[:] = T[g - 1]
                prev = g
            t_s = gen_comp[:, g - 1] if g >= 1 else np.zeros(M)
            u = np.maximum(u, t_s) + per_gen[g] * duration
        if G > prev:
            gen_comp[:, prev:] = self._solve(T[prev:], t, V, u, rate, storm_rate)

        comp = np.repeat(gen_comp, W, axis=1)
        submit = np.zeros((M, K), dtype=np.float64)
        submit[:, W:] = comp[:, : K - W]
        return BankResult(
            submit_times=submit,
            completion_times=comp,
            storms=int(per_gen.sum()),
            workers=W,
        )
