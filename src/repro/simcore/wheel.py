"""Bucketed event wheel: the engine's calendar event queue.

The simulator's hot loop used to pop a single global binary heap one
event at a time — O(log n) tuple comparisons per push *and* per pop,
all paid in the Python/C comparison boundary.  The wheel replaces it
with a calendar queue:

* Timestamps are slotted into buckets of ``width`` seconds (``width``
  is rounded to a power of two so ``when * 1/width`` is an exact,
  order-preserving float scaling).  A push is a dict lookup and a list
  append — no comparisons.
* Buckets are sorted lazily: only when the wheel advances into a slot
  is its bucket sorted (one C-speed Timsort per bucket), after which
  each pop is an O(1) index bump.
* A min-heap over the *slot keys* (a few orders of magnitude smaller
  than the event population) finds the next non-empty bucket.

Determinism
-----------
Pop order is **exactly** the total order ``(when, seq)`` — identical to
the binary heap it replaces, including same-timestamp tie-breaks: the
wheel assigns the same monotonically increasing sequence numbers in the
same call order, slot scaling is monotone, and entries within a slot
are sorted by the same tuple.  ``tests/simcore/test_wheel_equivalence.py``
drives both implementations through randomized schedule/withdraw
sequences and asserts identical pop sequences.

Tombstones
----------
Dead events — a timeout abandoned by an interrupted process, a storage
device's superseded completion tick, a cancelled request's wait — used
to sit in the queue until their time came just to be popped as no-ops.
:meth:`EventWheel.withdraw` marks such an event ``WITHDRAWN`` in place;
pops skip tombstones, and when tombstones outnumber the live entries
(they "exceed half the queue") the wheel sweeps every bucket in one
pass.  The cumulative sweep count is exposed as
``Simulator.tombstones_compacted``.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from math import ldexp, frexp
from typing import Any

__all__ = ["EventWheel", "HeapEventQueue", "WITHDRAWN"]

#: Event ``_state`` value marking a queued-but-dead entry.  Defined here
#: (not in engine.py) because the queue implementations are the only
#: code that writes or tests it; the engine imports it for its state
#: table.  It compares greater than PROCESSED on purpose: a withdrawn
#: event can never fire again.
WITHDRAWN = 3

_INF = float("inf")

#: Don't bother sweeping queues this small — the scan costs more than
#: letting the handful of tombstones pop as no-ops.
_MIN_SWEEP = 32


def _pow2_width(width: float) -> float:
    """Round ``width`` to the nearest power of two (exact float scaling)."""
    if width <= 0:
        raise ValueError(f"bucket width must be positive, got {width}")
    mantissa, exponent = frexp(width)  # width = mantissa * 2**exponent
    # mantissa in [0.5, 1): round to 0.5 or 1.0, i.e. 2**(e-1) or 2**e.
    return ldexp(1.0, exponent if mantissa > 0.75 else exponent - 1)


class EventWheel:
    """Calendar queue over ``(when, seq, event)`` entries.

    The public surface mirrors what :class:`~repro.simcore.Simulator`
    needs: :meth:`push`, :meth:`pop`, :meth:`peek`, :meth:`withdraw`,
    ``len()`` (live entries only).  Entries must be pushed with
    monotonically non-decreasing lower bound (``when`` >= the ``when``
    of the last popped entry) — the simulator's no-scheduling-in-the-past
    rule — but *pushes between pops may target any future time*,
    including times earlier than entries already handed a bucket.
    """

    __slots__ = (
        "_inv_width",
        "width",
        "_buckets",
        "_slots",
        "_cur",
        "_cur_i",
        "_cur_slot",
        "_seq",
        "_live",
        "_tombstones",
        "tombstones_compacted",
    )

    def __init__(self, width: float = 0.25):
        self.width = width = _pow2_width(width)
        self._inv_width = 1.0 / width
        # slot key -> unsorted list of (when, seq, ev)
        self._buckets: dict[int, list[tuple[float, int, Any]]] = {}
        self._slots: list[int] = []  # min-heap of (possibly stale) slot keys
        self._cur: list[tuple[float, int, Any]] = []  # active slot, sorted asc
        self._cur_i = 0
        self._cur_slot = -1
        self._seq = 0
        self._live = 0
        self._tombstones = 0
        #: total dead entries removed by compaction sweeps
        self.tombstones_compacted = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def tombstones(self) -> int:
        """Withdrawn entries currently still occupying queue slots."""
        return self._tombstones

    # ------------------------------------------------------------------ push
    def push(self, when: float, ev: Any) -> int:
        """Queue ``ev`` at time ``when``; returns its sequence number."""
        self._seq = seq = self._seq + 1
        self._live += 1
        s = int(when * self._inv_width)
        if s == self._cur_slot:
            # Lands in the slot being drained: ordered insert into the
            # active run (C bisect+insert).  New entries carry the
            # largest seq, so they can never sort before the
            # already-popped prefix.
            insort(self._cur, (when, seq, ev), self._cur_i)
        else:
            b = self._buckets.get(s)
            if b is None:
                self._buckets[s] = [(when, seq, ev)]
                heappush(self._slots, s)
            else:
                b.append((when, seq, ev))
        return seq

    # ------------------------------------------------------------- settling
    def _settle(self) -> bool:
        """Advance internal cursors until ``_cur[_cur_i]`` is the next
        live entry (or return False when the wheel is empty)."""
        while True:
            cur = self._cur
            i = self._cur_i
            n = len(cur)
            while i < n and cur[i][2]._state == WITHDRAWN:
                i += 1
                self._tombstones -= 1
            self._cur_i = i
            slots = self._slots
            buckets = self._buckets
            while slots and slots[0] not in buckets:
                heappop(slots)  # stale key: bucket already consumed
            if i < n:
                if slots and slots[0] < self._cur_slot:
                    # An earlier slot gained entries after this run was
                    # activated (possible between run() horizons).  Demote
                    # the unpopped tail back to its bucket so slots drain
                    # strictly in time order.
                    self._buckets[self._cur_slot] = cur[i:]
                    heappush(slots, self._cur_slot)
                    self._cur = []
                    self._cur_i = 0
                    self._cur_slot = -1
                    continue
                return True
            if not slots:
                if n:
                    self._cur = []
                    self._cur_i = 0
                return False
            s = heappop(slots)
            b = buckets.pop(s)
            b.sort()
            self._cur = b
            self._cur_i = 0
            self._cur_slot = s

    # ------------------------------------------------------------------- pop
    def pop(self, limit: float = _INF):
        """Remove and return the next live entry ``(when, seq, ev)``,
        or None when the wheel is empty or its head is later than
        ``limit``."""
        cur = self._cur
        i = self._cur_i
        if i < len(cur):
            entry = cur[i]
            if entry[2]._state != WITHDRAWN:
                slots = self._slots
                if not slots or slots[0] > self._cur_slot:
                    # Fast path: live head, and every pending bucket
                    # sits in a strictly later slot, so the head is the
                    # global minimum (entries never share slot keys
                    # across buckets, and slot order implies time order).
                    if entry[0] > limit:
                        return None
                    self._cur_i = i + 1
                    self._live -= 1
                    return entry
        if not self._settle():
            return None
        entry = self._cur[self._cur_i]
        if entry[0] > limit:
            return None
        self._cur_i += 1
        self._live -= 1
        return entry

    def peek(self) -> float:
        """Time of the next live entry, or ``inf``."""
        if not self._settle():
            return _INF
        return self._cur[self._cur_i][0]

    # ------------------------------------------------------------ tombstones
    def withdraw(self, ev: Any) -> None:
        """Mark a queued event dead in place (O(1)).

        The caller owns the event and guarantees it is queued (state
        TRIGGERED) with no observers left.  The entry stays physically
        in its bucket until a pop skips it or a compaction sweep drops
        it; the event object itself can never fire.
        """
        ev._state = WITHDRAWN
        ev.callbacks = None
        self._live -= 1
        t = self._tombstones + 1
        self._tombstones = t
        if t > _MIN_SWEEP and t > self._live:
            self.compact()

    def compact(self) -> int:
        """Sweep every bucket, dropping withdrawn entries; returns how
        many were removed.  O(total entries), amortized free because it
        only triggers once tombstones outnumber live entries."""
        swept = 0
        buckets = self._buckets
        for s in list(buckets):
            b = buckets[s]
            keep = [e for e in b if e[2]._state != WITHDRAWN]
            swept += len(b) - len(keep)
            if keep:
                buckets[s] = keep
            else:
                del buckets[s]
        cur = self._cur
        i = self._cur_i
        if i < len(cur):
            keep = [e for e in cur[i:] if e[2]._state != WITHDRAWN]
            swept += (len(cur) - i) - len(keep)
            self._cur = keep
        else:
            self._cur = []
        self._cur_i = 0
        self._slots = list(buckets)
        heapify(self._slots)
        self._tombstones -= swept
        self.tombstones_compacted += swept
        return swept


class HeapEventQueue:
    """Reference binary-heap queue with the same API as the wheel.

    This is the engine's original data structure, kept (a) as the
    oracle for the wheel-equivalence property tests and (b) as a
    drop-in alternative (``Simulator(queue=HeapEventQueue())``) for
    debugging suspected queue issues.
    """

    __slots__ = ("_heap", "_seq", "_live", "_tombstones", "tombstones_compacted")

    def __init__(self):
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._live = 0
        self._tombstones = 0
        self.tombstones_compacted = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def tombstones(self) -> int:
        return self._tombstones

    def push(self, when: float, ev: Any) -> int:
        self._seq = seq = self._seq + 1
        self._live += 1
        heappush(self._heap, (when, seq, ev))
        return seq

    def _settle(self) -> bool:
        heap = self._heap
        while heap:
            if heap[0][2]._state == WITHDRAWN:
                heappop(heap)
                self._tombstones -= 1
                continue
            return True
        return False

    def pop(self, limit: float = _INF):
        if not self._settle():
            return None
        if self._heap[0][0] > limit:
            return None
        self._live -= 1
        return heappop(self._heap)

    def peek(self) -> float:
        if not self._settle():
            return _INF
        return self._heap[0][0]

    def withdraw(self, ev: Any) -> None:
        ev._state = WITHDRAWN
        ev.callbacks = None
        self._live -= 1
        t = self._tombstones + 1
        self._tombstones = t
        if t > _MIN_SWEEP and t > self._live:
            self.compact()

    def compact(self) -> int:
        heap = self._heap
        keep = [e for e in heap if e[2]._state != WITHDRAWN]
        swept = len(heap) - len(keep)
        heapify(keep)
        self._heap = keep
        self._tombstones -= swept
        self.tombstones_compacted += swept
        return swept
