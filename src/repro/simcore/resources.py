"""Shared-resource primitives built on the event engine.

* :class:`Resource` — a counting semaphore with a FIFO wait queue.  Used
  for CPU slots / container allocation on nodes.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Used for request queues and message channels.
* :class:`Gate` — a broadcast condition: many waiters, one ``open()``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.simcore.engine import Event, SimulationError, Simulator

__all__ = ["Gate", "Resource", "Store"]


class Resource:
    """Counting resource with FIFO granting.

    ``acquire(n)`` returns an event that succeeds once ``n`` units are
    granted; ``release(n)`` returns units.  Waiters are served strictly
    in FIFO order (a large request at the head blocks later small ones —
    matching how YARN hands out containers per app request order).
    """

    # At 1000-node scale a cluster holds tens of thousands of these
    # (per-node CPU slots, queues, gates); slots cut the per-instance
    # footprint and speed up the attribute access in _grant/put.
    __slots__ = ("sim", "capacity", "in_use", "name", "_waiters")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.in_use = 0
        self.name = name
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, amount: int = 1) -> Event:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot acquire {amount} of {self.capacity} from {self.name!r}"
            )
        ev = Event(self.sim, name=f"acquire:{self.name}")
        self._waiters.append((ev, amount))
        self._grant()
        return ev

    def release(self, amount: int = 1) -> None:
        if amount <= 0:
            raise SimulationError(f"release amount must be positive: {amount}")
        if self.in_use - amount < 0:
            raise SimulationError(
                f"over-release on {self.name!r}: in_use={self.in_use}, amount={amount}"
            )
        self.in_use -= amount
        self._grant()

    def cancel(self, ev: Event) -> bool:
        """Withdraw a pending acquire.  Returns True if it was removed."""
        for i, (waiter, amount) in enumerate(self._waiters):
            if waiter is ev:
                del self._waiters[i]
                return True
        return False

    def _grant(self) -> None:
        while self._waiters:
            ev, amount = self._waiters[0]
            if ev.triggered:  # externally failed / abandoned
                self._waiters.popleft()
                continue
            if amount > self.available:
                return
            self._waiters.popleft()
            self.in_use += amount
            ev.succeed(amount)


class Store:
    """Unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks (queues in big-data daemons are effectively
    unbounded and backpressure is modelled at the device, where it
    belongs for this paper).
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class Gate:
    """A broadcast condition.

    ``wait()`` returns an event; ``open(value)`` triggers every waiter.
    The gate can be reused: after ``open`` it resets to closed.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"gate:{self.name}")
        self._waiters.append(ev)
        return ev

    def open(self, value: Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        n = 0
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(value)
                n += 1
        return n
