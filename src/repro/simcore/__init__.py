"""Discrete-event simulation core.

A small, dependency-free discrete-event engine in the style of SimPy:
generator-coroutine processes scheduled over a binary-heap event queue,
with deterministic tie-breaking, counting resources, stores, and
instrumentation primitives (time series, rate meters).

Everything in the IBIS reproduction — storage devices, HDFS, YARN,
MapReduce tasks, and the IBIS schedulers themselves — runs on this engine.
"""

from repro.simcore.engine import (
    Event,
    FaultError,
    Interrupt,
    Process,
    RequestCancelled,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simcore.instrument import Counter, RateMeter, TimeSeries
from repro.simcore.resources import Gate, Resource, Store
from repro.simcore.rng import RngRegistry
from repro.simcore.wheel import EventWheel, HeapEventQueue

__all__ = [
    "Counter",
    "Event",
    "EventWheel",
    "HeapEventQueue",
    "FaultError",
    "Gate",
    "Interrupt",
    "Process",
    "RateMeter",
    "RequestCancelled",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
]
