"""Instrumentation: time series, counters, and rate meters.

These are the probes behind every figure in the paper: Fig. 2's
throughput-vs-time profiles, Fig. 7's depth/latency traces, and the
per-application service accounting used by the Scheduling Broker.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Counter", "RateMeter", "TimeSeries", "percentile_of"]


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"non-monotone time in series {self.name!r}: {t} < {self.times[-1]}"
            )
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last recorded value at or before t."""
        if not self.times:
            raise ValueError(f"empty series {self.name!r}")
        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            raise ValueError(f"t={t} precedes first sample of {self.name!r}")
        return self.values[i]

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return float(np.mean(self.values))

    def window_mean(self, t0: float, t1: float) -> float:
        """Mean of samples whose timestamps fall in [t0, t1)."""
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        if hi <= lo:
            return 0.0
        return float(np.mean(self.values[lo:hi]))


class Counter:
    """A monotone accumulator (bytes serviced, requests completed, ...)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.total += amount


class RateMeter:
    """Accumulates (time, amount) events and reports windowed rates.

    Used to turn completed-I/O byte counts into MB/s-vs-time series for
    the throughput figures.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.amounts: list[float] = []
        self.total = 0.0

    def add(self, t: float, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative amount in rate meter {self.name!r}")
        if self.times and t < self.times[-1]:
            raise ValueError(f"non-monotone time in rate meter {self.name!r}")
        self.times.append(t)
        self.amounts.append(amount)
        self.total += amount

    def rate_series(self, bucket: float, t_end: float | None = None) -> TimeSeries:
        """Bucketed rate (amount per second) over [0, t_end)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        out = TimeSeries(f"rate:{self.name}")
        if not self.times and t_end is None:
            return out
        end = t_end if t_end is not None else self.times[-1] + bucket
        n_buckets = max(1, int(np.ceil(end / bucket)))
        sums = np.zeros(n_buckets)
        if self.times:
            idx = np.minimum(
                (np.asarray(self.times, dtype=float) / bucket).astype(np.int64),
                n_buckets - 1,
            )
            # np.add.at is unbuffered and applies in index order, so the
            # float accumulation is bit-identical to a sequential loop.
            np.add.at(sums, idx, np.asarray(self.amounts, dtype=float))
        out.times = (np.arange(n_buckets, dtype=float) * bucket).tolist()
        out.values = (sums / bucket).tolist()
        return out

    def window_total(self, t0: float, t1: float) -> float:
        """Sum of amounts recorded in [t0, t1)."""
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        return float(sum(self.amounts[lo:hi]))

    def mean_rate(self, t_end: float | None = None) -> float:
        if not self.times:
            return 0.0
        end = t_end if t_end is not None else self.times[-1]
        if end <= 0:
            return 0.0
        return self.total / end


def percentile_of(samples: Sequence[float] | Iterable[float], q: float) -> float:
    """Convenience wrapper: q-th percentile of a sample list (q in [0,100])."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sample set")
    return float(np.percentile(arr, q))
