"""Event loop, events, and generator-coroutine processes.

The engine is deliberately minimal but complete enough to host the whole
IBIS cluster simulation:

* :class:`Simulator` owns the clock and a binary-heap event queue with
  deterministic ``(time, sequence)`` ordering, so two runs with the same
  seeds produce identical traces.
* :class:`Event` is a one-shot occurrence that callbacks (or processes)
  can wait on; it may succeed with a value or fail with an exception.
* :class:`Process` wraps a generator.  The generator ``yield``s events;
  when the event triggers, its value is sent back into the generator
  (or the stored exception is thrown into it).
* :class:`Timeout` is an event that triggers after a simulated delay.
* Processes can be interrupted (:class:`Interrupt`), which is how task
  preemption is modelled.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.simcore.wheel import EventWheel, HeapEventQueue, WITHDRAWN

__all__ = [
    "Event",
    "FaultError",
    "Interrupt",
    "Process",
    "RequestCancelled",
    "SimulationError",
    "Simulator",
    "Timeout",
    "AllOf",
    "AnyOf",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (not for model errors)."""


class FaultError(Exception):
    """Base class of injected-fault errors (see :mod:`repro.faults`).

    Defined in the engine so the run loop can recognise *fault
    collateral* — a background process killed by an injected fault after
    its owner already died (e.g. an in-flight chunk of an interrupted
    task) — and count it instead of crashing the simulation, while
    genuine unhandled model errors still surface.
    """


class RequestCancelled(Exception):
    """A queued I/O request was cancelled before it reached the device.

    Raised into waiters when a :class:`~repro.dataplane.CancelScope` is
    cancelled (a task died and its not-yet-dispatched I/O was withdrawn
    from the scheduler queues).  Defined in the engine, like
    :class:`FaultError`, so the run loop can recognise *cancellation
    collateral* — a background process (stream leg, shuffle fetcher)
    whose pending request was cancelled after its owner already died —
    and count it (``Simulator.cancelled_collateral``) instead of
    crashing the simulation.
    """


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    ``cause`` carries an arbitrary payload describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled for processing, value/exception set
_PROCESSED = 2  # callbacks have run
_WITHDRAWN = WITHDRAWN  # queued but dead (tombstone); skipped at pop


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* the event: it is put on the simulator's queue (at the
    current time unless it was created by :class:`Timeout`) and its
    callbacks run when it is popped.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_state", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = _PENDING
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering --------------------------------------------------------
    def _retrigger(self, value: Any = None) -> "Event":
        """Re-arm a *processed* event for reuse.

        Engine-internal: lets hot dispatch loops (e.g. the storage
        device's completion ticks) pool event objects instead of
        allocating a fresh one per dispatch.  Only the owner of an event
        that is guaranteed to have no external waiters may do this.
        """
        self._value = value
        self._exc = None
        self._state = _TRIGGERED
        self.callbacks = []
        return self

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.sim._push(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exc = exc
        self._state = _TRIGGERED
        self.sim._push(delay, self)
        return self

    # -- internal -----------------------------------------------------------
    def _process(self) -> None:
        self._state = _PROCESSED
        # A processed event can never fire again: drop the callback list
        # outright (appending to a processed event is a bug and now fails
        # loudly) instead of allocating a fresh empty list per event.
        callbacks = self.callbacks
        self.callbacks = None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<Event {self.name or hex(id(self))} {state[self._state]}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # Hot path: inline Event.__init__ and the heap push, and skip the
        # per-instance formatted name — one Timeout per simulated wait.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self._state = _TRIGGERED
        self.name = "timeout"
        self.delay = delay
        sim._queue.push(sim.now + delay, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout {self.delay:g} {'processed' if self._state >= _PROCESSED else 'triggered'}>"


class _StartSignal:
    """Sentinel 'trigger' for a process's very first resume.

    Looks enough like a triggered event (``_value``/``_exc``/``callbacks``)
    for :meth:`Process._resume` and :meth:`Process.interrupt` to treat it
    uniformly, without allocating a real init :class:`Event` per process.
    """

    __slots__ = ()
    _value: Any = None
    _exc: Optional[BaseException] = None
    callbacks: list = []


_START = _StartSignal()


class Process(Event):
    """A running generator-coroutine.

    The process itself is an event that triggers when the generator
    returns (success, value = return value) or raises (failure).  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_gen", "_target", "_interrupts", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {gen!r}")
        self._gen = gen
        self._interrupts: list[Interrupt] = []
        # Kick off at the current simulation time: the process schedules
        # *itself* as its start record (see _process), so no init Event
        # is allocated.
        self._started = False
        self._target: Optional[Event] = _START
        sim._push(0.0, self)

    def _process(self) -> None:
        if not self._started:
            # First pop: start the generator directly.
            self._started = True
            self._resume(_START)
            return
        Event._process(self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None:
            # Stop waiting on the target: de-register our resume callback.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
            # An abandoned Timeout with no other waiters is a tombstone:
            # withdraw it so it never pops (and can be swept) instead of
            # sitting in the queue until its — possibly far-future — time.
            if (
                type(target) is Timeout
                and target._state == _TRIGGERED
                and not target.callbacks
            ):
                self.sim._queue.withdraw(target)
        wake = Event(self.sim, name=f"interrupt:{self.name}")
        wake.callbacks.append(self._resume)
        wake.succeed()

    # -- stepping ------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if self._state != _PENDING:  # already finished (e.g. raced interrupt)
            return
        interrupts = self._interrupts
        if trigger is not self._target and not interrupts:
            return  # stale wake-up (e.g. interrupt already delivered)
        self._target = None
        sim = self.sim
        sim._active = self
        gen = self._gen
        try:
            while True:
                if not interrupts and trigger._exc is None:
                    # Common case: deliver the trigger's value.
                    try:
                        nxt = gen.send(trigger._value)
                    except StopIteration as stop:
                        self._finish_ok(stop.value)
                        return
                elif interrupts:
                    exc: BaseException = interrupts.pop(0)
                    try:
                        nxt = gen.throw(exc)
                    except StopIteration as stop:
                        self._finish_ok(stop.value)
                        return
                else:
                    try:
                        nxt = gen.throw(trigger._exc)
                    except StopIteration as stop:
                        self._finish_ok(stop.value)
                        return
                # Fast path: the dominant yield is a freshly created
                # Timeout, which is always in the TRIGGERED state.
                if nxt.__class__ is Timeout and nxt._state == _TRIGGERED:
                    self._target = nxt
                    nxt.callbacks.append(self._resume)
                    return
                if not isinstance(nxt, Event):
                    raise SimulationError(
                        f"process {self.name} yielded non-event {nxt!r}"
                    )
                if nxt._state == _PROCESSED:
                    # Already done: loop synchronously with its outcome.
                    trigger = nxt
                    continue
                if nxt._state == _WITHDRAWN:
                    # A withdrawn event can never fire; waiting on it
                    # would hang the process forever.
                    raise SimulationError(
                        f"process {self.name} yielded withdrawn event {nxt!r}"
                    )
                self._target = nxt
                nxt.callbacks.append(self._resume)
                return
        except BaseException as exc:  # generator raised: fail the process event
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._finish_fail(exc)
        finally:
            sim._active = None

    def _finish_ok(self, value: Any) -> None:
        self._value = value
        self._state = _TRIGGERED
        self.sim._push(0.0, self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._state = _TRIGGERED
        self.sim._push(0.0, self)
        # If nobody is joining this process, surface the error at run() time.
        self.sim._defunct.append(self)


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_remaining", "_mode")

    def __init__(self, sim: "Simulator", events: Iterable[Event], mode: str):
        super().__init__(sim, name=mode)
        self._events = list(events)
        self._remaining = len(self._events)
        self._mode = mode
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            if self._state != _PENDING:
                break  # settled already (e.g. AnyOf with a processed component)
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if ev._exc is not None:
            self._detach()
            self.fail(ev._exc)
            return
        self._remaining -= 1
        if self._mode == "any" or self._remaining == 0:
            # _process() flips state to PROCESSED before callbacks run, so
            # the event that fired this check is included.
            self._detach()
            self.succeed([e._value for e in self._events if e.processed])

    def _detach(self) -> None:
        """De-register our callback from components that have not fired.

        Without this, an AnyOf over long-lived events would leave one
        dead callback per component alive on every still-pending event
        for the rest of the simulation.
        """
        cb = self._check
        for ev in self._events:
            if ev._state != _PROCESSED:
                try:
                    ev.callbacks.remove(cb)
                except ValueError:
                    pass


class AllOf(Condition):
    """Triggers when all component events have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "all")


class AnyOf(Condition):
    """Triggers when any component event triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "any")


class Simulator:
    """The event loop: clock + bucketed event wheel of triggered events.

    Ordering is by ``(time, sequence)`` where ``sequence`` is a global
    monotonically increasing counter, making runs fully deterministic.
    The queue is an :class:`~repro.simcore.wheel.EventWheel` (calendar
    queue with lazy per-bucket sorting and tombstone compaction); pass
    ``queue=HeapEventQueue()`` to run on the reference binary heap —
    pop order is identical by construction.
    """

    def __init__(self, queue: "EventWheel | HeapEventQueue | None" = None):
        self.now: float = 0.0
        self._queue = queue if queue is not None else EventWheel()
        self._active: Optional[Process] = None
        self._defunct: list[Process] = []  # failed processes, checked in run()
        #: orphaned processes killed by an injected fault (no joiner);
        #: counted rather than raised — see :class:`FaultError`.
        self.orphaned_faults = 0
        #: orphaned processes killed by request cancellation (no joiner);
        #: counted rather than raised — see :class:`RequestCancelled`.
        self.cancelled_collateral = 0

    @property
    def tombstones_compacted(self) -> int:
        """Dead (withdrawn) events removed by queue compaction sweeps."""
        return self._queue.tombstones_compacted

    # -- event construction helpers ------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"call_at({when}) is in the past (now={self.now})")
        ev = Event(self, name="call_at")
        ev.callbacks.append(lambda _ev: fn())
        ev._state = _TRIGGERED
        self._push(when - self.now, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        return self.call_at(self.now + delay, fn)

    # -- queue internals --------------------------------------------------
    def _push(self, delay: float, ev: Event) -> None:
        self._queue.push(self.now + delay, ev)

    def _withdraw(self, ev: Event) -> None:
        """Tombstone a queued event the caller owns (see wheel docs)."""
        self._queue.withdraw(ev)

    # -- running -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        entry = self._queue.pop()
        if entry is None:
            raise IndexError("step() on an empty event queue")
        self.now = entry[0]
        entry[2]._process()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue.peek()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time, the given event triggers, or the queue
        drains.  Returns the event's value when ``until`` is an event.

        With a finite time horizon the clock always advances to the
        horizon, even when the queue drains early (SimPy semantics).

        Failed processes that nobody joined re-raise here so model bugs
        cannot pass silently.
        """
        # The loops below are the simulation's hottest code: locals are
        # bound once, and the wheel's pop fast path — live head entry in
        # the active slot, every pending bucket strictly later — is
        # inlined so the common case costs an index bump instead of a
        # method call.  The inlined condition is exactly the wheel's own
        # fast-path guard, so falling back to ``pop()`` (which settles:
        # skips tombstones, refills from buckets, handles slot demotion)
        # is always correct.
        queue = self._queue
        pop = queue.pop
        defunct = self._defunct
        wheel = queue if type(queue) is EventWheel else None
        if isinstance(until, Event):
            stop_ev = until
            while stop_ev._state != _PROCESSED:
                entry = None
                if wheel is not None:
                    cur = wheel._cur
                    i = wheel._cur_i
                    if i < len(cur):
                        head = cur[i]
                        if head[2]._state != _WITHDRAWN:
                            slots = wheel._slots
                            if not slots or slots[0] > wheel._cur_slot:
                                wheel._cur_i = i + 1
                                wheel._live -= 1
                                entry = head
                if entry is None:
                    entry = pop()
                    if entry is None:
                        raise SimulationError(
                            f"simulation ran dry before event {stop_ev!r} triggered"
                        )
                self.now = entry[0]
                entry[2]._process()
                if defunct:
                    self._raise_defunct(stop_ev)
            return stop_ev.value
        horizon = float("inf") if until is None else float(until)
        while True:
            entry = None
            if wheel is not None:
                cur = wheel._cur
                i = wheel._cur_i
                if i < len(cur):
                    head = cur[i]
                    if head[2]._state != _WITHDRAWN:
                        slots = wheel._slots
                        if not slots or slots[0] > wheel._cur_slot:
                            if head[0] > horizon:
                                break
                            wheel._cur_i = i + 1
                            wheel._live -= 1
                            entry = head
            if entry is None:
                entry = pop(horizon)
                if entry is None:
                    break
            self.now = entry[0]
            entry[2]._process()
            if defunct:
                self._raise_defunct(None)
        if horizon != float("inf") and horizon > self.now:
            self.now = horizon
        return None

    def _raise_defunct(self, joined: Optional[Event]) -> None:
        while self._defunct:
            proc = self._defunct.pop()
            if proc is joined:
                continue
            # A process failure with a registered waiter is someone else's
            # problem; without one it is an unhandled model error —
            # except fault collateral, which is expected during fault
            # injection and only counted.
            if not proc.callbacks and proc._exc is not None:
                exc = proc._exc
                if isinstance(exc, FaultError) or (
                    isinstance(exc, Interrupt) and isinstance(exc.cause, FaultError)
                ):
                    self.orphaned_faults += 1
                    continue
                if isinstance(exc, RequestCancelled) or (
                    isinstance(exc, Interrupt)
                    and isinstance(exc.cause, RequestCancelled)
                ):
                    self.cancelled_collateral += 1
                    continue
                if getattr(exc, "sim_process", None) is None:
                    try:
                        exc.sim_process = proc.name
                    except (AttributeError, TypeError):
                        pass
                raise exc
