"""Job specifications and runtime job state."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import IOTag
from repro.simcore import Gate, Simulator

__all__ = ["Job", "JobSpec", "MapOutput"]


@dataclass(frozen=True)
class JobSpec:
    """Static description of a MapReduce job.

    Data volumes are totals across the job; per-task volumes derive from
    the task counts.  CPU costs are seconds of compute per MB processed,
    which together with the volumes sets the job's I/O intensity — the
    knob that differentiates TeraGen (I/O-bound) from WordCount
    (compute-heavy, §2.3).
    """

    name: str
    input_path: Optional[str] = None     # HDFS file read by maps (None: generator)
    input_bytes: int = 0                 # ignored when input_path is set
    shuffle_bytes: int = 0               # map output == reduce input, total
    output_bytes: int = 0                # final HDFS output, total
    n_maps: Optional[int] = None         # default: one per input block
    n_reduces: int = 0                   # 0 => map-only job
    map_cpu_s_per_mb: float = 0.002
    reduce_cpu_s_per_mb: float = 0.002
    map_spill_factor: float = 1.0        # intermediate writes per map-output byte
    reduce_merge_factor: float = 1.0     # intermediate write+read per shuffled byte
    slowstart: float = 0.05              # map completion fraction before reducers

    def __post_init__(self):
        if self.input_path is None and self.n_maps is None:
            raise ValueError(f"job {self.name!r}: generator jobs need n_maps")
        if self.n_maps is not None and self.n_maps <= 0:
            raise ValueError("n_maps must be positive when given")
        if self.n_reduces < 0:
            raise ValueError("n_reduces must be non-negative")
        if self.n_reduces == 0 and self.shuffle_bytes > 0:
            raise ValueError("map-only jobs cannot shuffle")
        for attr in ("shuffle_bytes", "output_bytes", "input_bytes"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.map_cpu_s_per_mb < 0 or self.reduce_cpu_s_per_mb < 0:
            raise ValueError("cpu costs must be non-negative")
        if self.map_spill_factor < 1.0 and self.shuffle_bytes > 0:
            raise ValueError("map_spill_factor must be >= 1 for shuffling jobs")
        if self.reduce_merge_factor < 0:
            raise ValueError("reduce_merge_factor must be non-negative")
        if not (0.0 <= self.slowstart <= 1.0):
            raise ValueError("slowstart must be in [0, 1]")


@dataclass(frozen=True)
class MapOutput:
    """Record of one completed map's output, consumed by reducers."""

    map_index: int
    node_id: str
    nbytes: int   # total map output (all partitions)


class Job:
    """Runtime state of a submitted job."""

    def __init__(self, sim: Simulator, spec: JobSpec, app_id: str, tag: IOTag):
        self.sim = sim
        self.spec = spec
        self.app_id = app_id
        self.tag = tag
        self.submit_time: float = sim.now
        self.start_time: Optional[float] = None
        self.maps_done_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.n_maps_total: int = 0            # set by the AM once splits exist
        self.maps_completed: int = 0
        self.reduces_completed: int = 0
        self.map_outputs: list[MapOutput] = []
        self.map_output_gate = Gate(sim, name=f"{app_id}:mapout")
        self.done = sim.event(name=f"{app_id}:done")

    # ---------------------------------------------------------------- state
    @property
    def runtime(self) -> float:
        if self.finish_time is None:
            raise RuntimeError(f"job {self.spec.name!r} has not finished")
        return self.finish_time - self.submit_time

    @property
    def map_phase_done(self) -> bool:
        return self.n_maps_total > 0 and self.maps_completed >= self.n_maps_total

    def note_map_output(self, out: MapOutput) -> None:
        self.maps_completed += 1
        self.map_outputs.append(out)
        if self.map_phase_done:
            self.maps_done_time = self.sim.now
        self.map_output_gate.open()

    def note_reduce_done(self) -> None:
        self.reduces_completed += 1

    def finish(self) -> None:
        self.finish_time = self.sim.now
        self.done.succeed(self)
