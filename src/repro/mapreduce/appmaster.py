"""The per-job Application Master.

Plans splits (one map per input block, locality-preferring), requests
containers from the Resource Manager, runs task processes inside them,
launches reducers once the slowstart fraction of maps has completed
(their shuffle overlaps the remaining map waves, as in Hadoop), and
marks the job finished when its last task ends.
"""

from __future__ import annotations

from repro.config import YarnConfig
from repro.dataplane import CancelScope
from repro.mapreduce.job import Job
from repro.mapreduce.task import TaskEnv, run_map_task, run_reduce_task
from repro.simcore import FaultError, Interrupt, SimulationError
from repro.telemetry import TASK_RETRY, TaskRetry
from repro.yarnsim import ContainerGrant, ResourceManager

__all__ = ["AppMaster"]


class AppMaster:
    def __init__(
        self,
        env: TaskEnv,
        rm: ResourceManager,
        job: Job,
        yarn: YarnConfig,
    ):
        self.env = env
        self.rm = rm
        self.job = job
        self.yarn = yarn

    # ---------------------------------------------------------------- plan
    def plan_splits(self) -> list[tuple[tuple[int, ...], tuple[str, ...]]]:
        """Return one (block_indices, preferred_nodes) entry per map."""
        spec = self.job.spec
        if spec.input_path is None:
            return [((), ()) for _ in range(spec.n_maps or 0)]
        f = self.env.dfs.namenode.lookup(spec.input_path)
        blocks = list(range(len(f.blocks)))
        if spec.n_maps is not None and spec.n_maps < len(blocks):
            # Group consecutive blocks into the requested number of splits.
            n = spec.n_maps
            out = []
            per = len(blocks) / n
            for i in range(n):
                lo, hi = round(i * per), round((i + 1) * per)
                group = tuple(blocks[lo:hi])
                preferred = f.blocks[group[0]].replicas if group else ()
                out.append((group, preferred))
            return [s for s in out if s[0]]
        return [((i,), f.blocks[i].replicas) for i in blocks]

    # ----------------------------------------------------------------- run
    def run(self):
        """Generator: the AM main loop (spawned as a process)."""
        sim = self.env.sim
        job = self.job
        spec = job.spec
        job.start_time = sim.now

        splits = self.plan_splits()
        job.n_maps_total = len(splits)
        if job.n_maps_total == 0:
            raise ValueError(f"job {spec.name!r} planned zero maps")

        def map_factory(i, blocks):
            return lambda node, scope: run_map_task(
                self.env, job, i, node, blocks, scope
            )

        map_procs = [
            sim.process(
                self._run_in_container(
                    map_factory(i, blocks),
                    vcores=self.yarn.map_task_vcores,
                    memory=self.yarn.map_task_memory,
                    preferred=preferred,
                    what=f"map{i}",
                ),
                name=f"{job.app_id}:map{i}",
            )
            for i, (blocks, preferred) in enumerate(splits)
        ]

        reduce_procs = []
        if spec.n_reduces > 0:
            threshold = max(1, int(spec.slowstart * job.n_maps_total))
            while job.maps_completed < threshold:
                yield job.map_output_gate.wait()
            def reduce_factory(r):
                return lambda node, scope: run_reduce_task(
                    self.env, job, r, node, scope
                )

            reduce_procs = [
                sim.process(
                    self._run_in_container(
                        reduce_factory(r),
                        vcores=self.yarn.reduce_task_vcores,
                        memory=self.yarn.reduce_task_memory,
                        preferred=(),
                        what=f"red{r}",
                    ),
                    name=f"{job.app_id}:red{r}",
                )
                for r in range(spec.n_reduces)
            ]

        yield sim.all_of(map_procs + reduce_procs)
        job.finish()

    def _run_in_container(
        self, task_factory, vcores: int, memory: int, preferred, what: str = "task"
    ):
        """Generator: acquire a container, build the task for the granted
        node, run it, and release the container whatever happens.

        A task killed by an injected fault (its node crashed, or all its
        I/O retries were exhausted) is re-run in a fresh container on a
        different node, up to ``yarn.max_task_attempts`` attempts; the
        dead attempt's cancel scope withdraws its still-queued I/O from
        the schedulers before the retry.  Any non-fault failure
        propagates: it's a model bug, not weather.
        """
        sim = self.env.sim
        env = self.env
        attempts = 0
        avoid: set[str] = set()
        while True:
            prefer = tuple(n for n in preferred if n not in avoid) or tuple(preferred)
            grant: ContainerGrant = yield self.rm.request_container(
                self.job.app_id, vcores, memory, prefer
            )
            scope = CancelScope(
                name=f"{self.job.app_id}:{what}:a{attempts}"
            )
            proc = sim.process(
                task_factory(grant.node_id, scope),
                name=f"task@{grant.node_id}",
            )
            if env.faults is not None:
                env.faults.watch_task(grant.node_id, proc)
            try:
                yield proc
                return
            except Interrupt as intr:
                if not isinstance(intr.cause, FaultError):
                    raise
                failure: Exception = intr.cause
            except FaultError as exc:
                failure = exc
            finally:
                self.rm.release_container(self.job.app_id, grant)
            scope.cancel()
            attempts += 1
            avoid.add(grant.node_id)
            if attempts >= self.yarn.max_task_attempts:
                raise SimulationError(
                    f"task {what} of {self.job.app_id} failed "
                    f"{attempts} attempts (last on {grant.node_id})"
                ) from failure
            telemetry = env.telemetry
            if telemetry is not None and telemetry.publishes(TASK_RETRY):
                telemetry.publish(TaskRetry(
                    t=sim.now, source=self.job.app_id, task=what,
                    node=grant.node_id, attempt=attempts,
                ))
