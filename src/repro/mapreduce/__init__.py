"""MapReduce substrate: jobs, tasks, and the per-job Application Master.

Reproduces the I/O anatomy of Figure 1: map tasks read HDFS splits
(persistent I/O), spill/merge intermediate results locally
(intermediate I/O); reduce tasks shuffle map outputs through the Node
Manager servlet (network I/O at the source, intermediate at the sink),
merge, and write their final output to HDFS through the replication
pipeline.
"""

from repro.mapreduce.appmaster import AppMaster
from repro.mapreduce.job import Job, JobSpec

__all__ = ["AppMaster", "Job", "JobSpec"]
