"""Map and reduce task processes.

A task is a generator-coroutine running inside a granted container.
Its I/O follows Figure 1:

* **map**: read split from HDFS (persistent) → compute → spill map
  output locally (intermediate); map-only jobs write straight to HDFS.
* **reduce**: shuffle each map's partition — servlet read at the source
  (network class), wire transfer, spill at the sink (intermediate) —
  then merge (intermediate reads), compute, and write the final output
  to HDFS through the replication pipeline (persistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.config import MB
from repro.dataplane import CancelScope
from repro.hdfs import DFSClient
from repro.localfs import LocalFS
from repro.mapreduce.job import Job, MapOutput
from repro.net import NetFabric
from repro.simcore import Resource, Simulator
from repro.telemetry import TelemetryBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultInjector

__all__ = ["TaskEnv", "run_map_task", "run_reduce_task"]

#: how many map outputs a reducer copies concurrently (Hadoop default 5)
SHUFFLE_PARALLELISM = 5


@dataclass
class TaskEnv:
    """Everything a task needs from the cluster."""

    sim: Simulator
    dfs: DFSClient
    localfs: dict[str, LocalFS]
    net: NetFabric
    rng: np.random.Generator
    telemetry: Optional[TelemetryBus] = None
    faults: Optional["FaultInjector"] = None

    def jitter(self) -> float:
        """±10% multiplicative compute-time jitter."""
        return float(self.rng.uniform(0.9, 1.1))


def _cpu_time(nbytes: float, s_per_mb: float, env: TaskEnv) -> float:
    if nbytes <= 0 or s_per_mb <= 0:
        return 0.0
    return (nbytes / MB) * s_per_mb * env.jitter()


def run_map_task(env: TaskEnv, job: Job, map_index: int, node_id: str,
                 split_blocks: tuple[int, ...],
                 scope: Optional[CancelScope] = None):
    """Generator: one map task on ``node_id``.

    With a ``scope``, every I/O the task issues is registered for
    cancellation: if the attempt dies, its still-queued requests are
    withdrawn from the schedulers instead of draining as orphans.
    """
    sim = env.sim
    spec = job.spec
    tag = job.tag if scope is None else job.tag.scoped(scope)

    # 1. Input: read the split from HDFS, or nothing for generator jobs.
    input_bytes = 0
    if spec.input_path is not None:
        f = env.dfs.namenode.lookup(spec.input_path)
        input_bytes = yield from env.dfs.read_blocks(f, split_blocks, node_id, tag)

    # 2. Compute.
    if spec.n_reduces > 0:
        map_out = spec.shuffle_bytes // job.n_maps_total
    else:
        map_out = 0
    hdfs_out = 0
    if spec.n_reduces == 0 and spec.output_bytes > 0:
        hdfs_out = spec.output_bytes // job.n_maps_total
    processed = input_bytes if input_bytes > 0 else max(map_out, hdfs_out)
    cpu = _cpu_time(processed, spec.map_cpu_s_per_mb, env)
    if cpu > 0:
        yield sim.timeout(cpu)

    # 3. Output.
    if map_out > 0:
        lfs = env.localfs[node_id]
        spill_bytes = int(map_out * spec.map_spill_factor)
        yield from lfs.write(spill_bytes, tag)
        reread = spill_bytes - map_out  # merge passes re-read extra spills
        if reread > 0:
            yield from lfs.read(reread, tag)
    if hdfs_out > 0:
        path = f"/out/{job.app_id}/part-m-{map_index:05d}"
        # A retried attempt overwrites the dead attempt's partial output.
        nn = env.dfs.namenode
        if nn.exists(path):
            nn.delete(path)
        yield from env.dfs.write_file(path, hdfs_out, node_id, tag)

    job.note_map_output(MapOutput(map_index, node_id, map_out))


def run_reduce_task(env: TaskEnv, job: Job, reduce_index: int, node_id: str,
                    scope: Optional[CancelScope] = None):
    """Generator: one reduce task on ``node_id``."""
    sim = env.sim
    spec = job.spec
    tag = job.tag if scope is None else job.tag.scoped(scope)
    lfs = env.localfs[node_id]
    slots = Resource(sim, SHUFFLE_PARALLELISM, name=f"fetch:{job.app_id}")
    merge_f = spec.reduce_merge_factor
    fetched = 0

    def fetch_one(out: MapOutput, part: int):
        grant = slots.acquire()
        yield grant
        try:
            # Source side: the NM shuffle servlet reads the map output
            # from the source node's temporary disk (NETWORK class, §3).
            src_lfs = env.localfs[out.node_id]
            yield from src_lfs.servlet_read(part, tag)
            yield env.net.transfer(out.node_id, node_id, part)
            if merge_f > 0:
                # Sink side: spill the copied partition locally.
                yield from lfs.write(part, tag)
        finally:
            slots.release()

    # Progressive shuffle: copy each map's partition as it appears.
    fetchers = []
    consumed = 0
    while consumed < job.n_maps_total:
        while consumed >= len(job.map_outputs):
            yield job.map_output_gate.wait()
        out = job.map_outputs[consumed]
        consumed += 1
        part = out.nbytes // spec.n_reduces
        if part <= 0:
            continue
        fetched += part
        fetchers.append(sim.process(fetch_one(out, part), name="fetch"))
    if fetchers:
        yield sim.all_of(fetchers)

    # Merge: each shuffled byte is read back merge_factor times, and
    # written (merge_factor - 1) extra times beyond the shuffle spill.
    if fetched > 0 and merge_f > 0:
        extra_writes = int(fetched * (merge_f - 1.0))
        if extra_writes > 0:
            yield from lfs.write(extra_writes, tag)
        merge_reads = int(fetched * merge_f)
        if merge_reads > 0:
            yield from lfs.read(merge_reads, tag)

    # Reduce compute + final HDFS output.
    reduce_input = spec.shuffle_bytes // spec.n_reduces
    cpu = _cpu_time(reduce_input, spec.reduce_cpu_s_per_mb, env)
    if cpu > 0:
        yield sim.timeout(cpu)
    out_bytes = spec.output_bytes // spec.n_reduces
    if out_bytes > 0:
        path = f"/out/{job.app_id}/part-r-{reduce_index:05d}"
        nn = env.dfs.namenode
        if nn.exists(path):
            nn.delete(path)
        yield from env.dfs.write_file(path, out_bytes, node_id, tag)

    job.note_reduce_done()
