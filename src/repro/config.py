"""Configuration: units, storage profiles, and cluster presets.

Mirrors the paper's testbed (§7.1, Table 1): nine nodes — eight workers
with two six-core CPUs, 32 GB RAM and two disks each (HDFS data and
intermediate data on separate spindles), plus one master running the
Resource Manager, Name Node and the IBIS Scheduling Broker.

All experiments run at a configurable ``scale`` so a laptop-sized
simulation finishes in seconds while preserving the relative shapes of
the paper's results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "StorageProfile",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "STORAGE_PROFILES",
    "ClusterConfig",
    "YarnConfig",
    "default_cluster",
]

# Binary units, matching Table 1's dfs.block.size = 134,217,728.
KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
TB = 1 << 40


@dataclass(frozen=True)
class StorageProfile:
    """Parameters of the processor-sharing storage device model.

    The device performs *work* (bytes, weighted per operation) at an
    aggregate rate ``W(n) = peak_rate * n / (n + n_half)`` when ``n``
    requests are in service, shared equally.  This yields throughput
    that saturates with concurrency while latency keeps growing — the
    exact trade-off the SFQ(D) depth parameter exposes (§4).

    ``write_cost`` > 1 models flash read/write asymmetry: a write of
    ``b`` bytes contributes ``b * write_cost`` work.  ``request_overhead``
    is fixed extra work per request (seek/command overhead).

    The write-back model: every ``flush_threshold`` bytes written, the
    device enters a *flush storm* for ``flush_duration`` seconds during
    which its rate is multiplied by ``flush_factor`` — reproducing the
    foreground-flush latency spikes of Fig. 7.
    """

    name: str
    peak_rate: float           # aggregate work units (bytes) per second
    n_half: float              # concurrency at which W(n) = peak/2... (sat. knee)
    read_cost: float = 1.0     # work units per byte read
    write_cost: float = 1.0    # work units per byte written
    request_overhead: float = 0.0  # fixed work units per request
    flush_threshold: float = 0.0   # bytes written per storm; 0 disables
    flush_duration: float = 0.0    # seconds of degraded service
    flush_factor: float = 1.0      # rate multiplier during a storm
    # Service discipline for in-flight requests:
    #   "fcfs" — requests are serviced serially in arrival order at the
    #            aggregate rate W(n) (a disk head: outstanding requests
    #            raise elevator efficiency, but one transfers at a time).
    #   "ps"   — equal processor sharing of W(n) (a network pipe).
    discipline: str = "ps"

    #: Concurrency covered by the precomputed rate tables below; callers
    #: fall back to :meth:`rate_at` past this depth.
    LUT_DEPTH = 256

    def __post_init__(self):
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        if self.n_half < 0:
            raise ValueError("n_half must be non-negative")
        if self.read_cost <= 0 or self.write_cost <= 0:
            raise ValueError("op costs must be positive")
        if not (0 < self.flush_factor <= 1.0):
            raise ValueError("flush_factor must be in (0, 1]")
        if self.discipline not in ("ps", "fcfs"):
            raise ValueError(f"unknown discipline {self.discipline!r}")
        # Derived constants, computed once per profile instead of per
        # current_rate() call.  Set via object.__setattr__ because the
        # dataclass is frozen; they are not fields, so equality, hashing
        # and to_dict() see only the declared parameters.  Every entry
        # keeps the exact float expression the device model historically
        # evaluated (association matters for bit-identical goldens):
        #   rate_lut[n]       = rate_at(n)
        #   storm_rate_lut[n] = rate_at(n) * flush_factor
        #   ps_rate_lut[n]    = rate_at(n) / n          (per-flow share)
        #   ps_storm_lut[n]   = (rate_at(n) * flush_factor) / n
        rate = tuple(self.rate_at(n) for n in range(self.LUT_DEPTH + 1))
        ff = self.flush_factor
        object.__setattr__(self, "rate_lut", rate)
        object.__setattr__(
            self, "storm_rate_lut", tuple(r * ff for r in rate)
        )
        object.__setattr__(
            self,
            "ps_rate_lut",
            (0.0,) + tuple(r / n for n, r in enumerate(rate) if n > 0),
        )
        object.__setattr__(
            self,
            "ps_storm_lut",
            (0.0,) + tuple((r * ff) / n for n, r in enumerate(rate) if n > 0),
        )
        object.__setattr__(
            self, "op_cost", {"read": self.read_cost, "write": self.write_cost}
        )
        object.__setattr__(
            self, "write_read_ratio", self.write_cost / self.read_cost
        )

    def rate_at(self, n: int) -> float:
        """Aggregate service rate with ``n`` requests in flight."""
        if n <= 0:
            return 0.0
        return self.peak_rate * n / (n + self.n_half)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form (every field explicit, JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any] | str") -> "StorageProfile":
        """Build from a full field dict, or a named preset (``"hdd"``)."""
        if isinstance(data, str):
            try:
                return STORAGE_PROFILES[data]
            except KeyError:
                raise ValueError(
                    f"unknown storage profile {data!r}; "
                    f"expected one of {sorted(STORAGE_PROFILES)}"
                ) from None
        return cls(**dict(data))


# A 7.2K RPM SAS disk: ~160 MB/s streaming at depth, noticeable
# per-request positioning overhead, symmetric read/write, and page-cache
# flush storms (Fig. 7's ~260 s and ~790 s spikes).
HDD_PROFILE = StorageProfile(
    name="hdd",
    peak_rate=160.0 * MB,
    n_half=0.4,
    read_cost=1.0,
    write_cost=1.0,
    request_overhead=0.375 * MB,  # ~6 ms positioning at 60 MB/s effective
    flush_threshold=3.0 * GB,
    flush_duration=4.0,
    flush_factor=0.3,
    discipline="fcfs",
)

# An Intel 120 GB MLC SATA SSD: fast reads, much slower writes
# (write_cost = 3 → effective ~140 MB/s writes vs ~420 MB/s reads),
# minimal per-request overhead, shallow saturation knee, no flush storms.
SSD_PROFILE = StorageProfile(
    name="ssd",
    peak_rate=420.0 * MB,
    n_half=0.3,
    read_cost=1.0,
    write_cost=3.0,
    request_overhead=0.02 * MB,
    discipline="fcfs",
)

#: Named presets accepted wherever a profile is given declaratively
#: (scenario JSON, the experiment CLI's ``--storage`` flag).
STORAGE_PROFILES: dict[str, StorageProfile] = {
    "hdd": HDD_PROFILE,
    "ssd": SSD_PROFILE,
}


@dataclass(frozen=True)
class YarnConfig:
    """Table 1 plus the per-task container sizes from §7.1."""

    dfs_replication: int = 3
    dfs_block_size: int = 134_217_728  # Table 1, bytes
    fairscheduler_preemption: bool = True
    preemption_timeout: float = 5.0    # seconds, Table 1
    map_task_vcores: int = 1
    map_task_memory: int = 2 * GB
    reduce_task_vcores: int = 1
    reduce_task_memory: int = 8 * GB
    heartbeat_interval: float = 1.0    # NM -> RM heartbeat (piggybacks broker)
    max_task_attempts: int = 4         # mapreduce.map/reduce.maxattempts

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "YarnConfig":
        return cls(**dict(data))


@dataclass(frozen=True)
class ClusterConfig:
    """The simulated testbed."""

    n_workers: int = 8
    cores_per_node: int = 12
    memory_per_node: int = 32 * GB
    alloc_memory_per_node: int = 24 * GB    # YARN-allocatable (192GB total, §7.1)
    storage: StorageProfile = HDD_PROFILE
    nic_bandwidth: float = 125.0 * MB       # Gigabit Ethernet
    io_chunk: int = 4 * MB                  # request granularity
    # Per-stream pipelining: HDFS clients keep several packets in flight
    # (readahead on reads, write-behind on writes).  This is what lets an
    # uncontrolled aggressive writer flood the storage on native Hadoop
    # ("TeraGen's I/Os are sent to storage as soon as they come", §7.2).
    read_window: int = 2
    write_window: int = 6
    yarn: YarnConfig = field(default_factory=YarnConfig)
    scale: float = 1.0                      # data-volume scale factor
    block_scale: float = 0.125              # block-size scale (keeps task waves sane)
    seed: int = 20160531

    def __post_init__(self):
        if self.n_workers <= 0 or self.cores_per_node <= 0:
            raise ValueError("cluster must have workers and cores")
        if not (0 < self.scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")
        if not (0 < self.block_scale <= 1.0):
            raise ValueError("block_scale must be in (0, 1]")
        if self.io_chunk <= 0:
            raise ValueError("io_chunk must be positive")

    @property
    def total_cores(self) -> int:
        return self.n_workers * self.cores_per_node

    @property
    def sim_block_size(self) -> int:
        """HDFS block size after scaling, never below one I/O chunk."""
        return max(self.io_chunk, int(self.yarn.dfs_block_size * self.block_scale))

    def scaled(self, nbytes: float) -> int:
        """Scale a paper-sized data volume down to simulation size."""
        return max(self.io_chunk, int(nbytes * self.scale))

    def with_storage(self, profile: StorageProfile) -> "ClusterConfig":
        return replace(self, storage=profile)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form: every field explicit, nested dataclasses
        expanded — so equal configurations always serialize identically
        (the scenario layer's content hash relies on this)."""
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in ("storage", "yarn")
        }
        out["storage"] = self.storage.to_dict()
        out["yarn"] = self.yarn.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterConfig":
        """Inverse of :meth:`to_dict`.  Omitted fields keep their
        defaults; ``storage`` also accepts a preset name (``"hdd"``)."""
        payload = dict(data)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown ClusterConfig fields: {sorted(unknown)}")
        if "storage" in payload:
            payload["storage"] = StorageProfile.from_dict(payload["storage"])
        if "yarn" in payload and not isinstance(payload["yarn"], YarnConfig):
            payload["yarn"] = YarnConfig.from_dict(payload["yarn"])
        return cls(**payload)


def default_cluster(
    scale: float = 1.0 / 64.0,
    storage: StorageProfile = HDD_PROFILE,
    seed: int = 20160531,
) -> ClusterConfig:
    """The paper's 8-worker testbed at simulation scale."""
    return ClusterConfig(storage=storage, scale=scale, seed=seed)
