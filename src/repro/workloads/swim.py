"""Facebook2009-like workload, in the style of SWIM (§7.3).

The paper samples 50 jobs from the Facebook 2009 production trace with
the SWIM generator, down-scaled to the testbed.  The trace itself is
not redistributable at this fidelity, so we synthesise a statistically
similar mix (the substitution is documented in DESIGN.md):

* heavy-tailed input sizes (most jobs are small, a few are large),
* input-to-shuffle ratios spanning 0.05–10³ and shuffle-to-output
  ratios spanning 2⁻⁵–10² (the ranges the paper quotes),
* Poisson arrivals.

What Fig. 9 measures — the runtime CDF and how contention shifts it —
depends on this job-size mix, not on the exact trace rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, GB, MB
from repro.mapreduce import JobSpec

__all__ = ["SwimJob", "facebook2009_trace"]


@dataclass(frozen=True)
class SwimJob:
    """One sampled job: a spec plus its arrival offset."""

    spec: JobSpec
    arrival: float
    input_bytes: int   # paper-scale bytes before cluster scaling


def facebook2009_trace(
    config: ClusterConfig,
    n_jobs: int = 50,
    mean_interarrival: float = 4.0,
    rng: np.random.Generator | None = None,
) -> list[SwimJob]:
    """Sample the synthetic Facebook2009 workload.

    ``mean_interarrival`` is in simulated seconds at cluster scale (the
    original trace spans hours; the paper down-scales to its testbed).
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    if rng is None:
        rng = np.random.default_rng(20090101)

    jobs: list[SwimJob] = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(mean_interarrival))
        # Heavy-tailed inputs: median ~2 GB, occasional tens of GB.
        input_paper = float(rng.lognormal(mean=np.log(2 * GB), sigma=1.3))
        input_paper = float(np.clip(input_paper, 64 * MB, 60 * GB))
        # Ratios from the paper's quoted ranges (log-uniform).
        in_to_shuffle = 10 ** rng.uniform(np.log10(0.05), np.log10(1e3))
        shuffle_to_out = 10 ** rng.uniform(np.log10(2.0**-5), np.log10(1e2))
        shuffle_paper = input_paper / in_to_shuffle
        # Bound shuffle so a freak sample cannot dwarf the whole trace.
        shuffle_paper = float(np.clip(shuffle_paper, 0, 4 * input_paper))
        output_paper = shuffle_paper / shuffle_to_out
        output_paper = float(np.clip(output_paper, 0, 2 * input_paper))

        scaled_in = config.scaled(input_paper)
        # Scale without the one-chunk floor: a shuffle smaller than one
        # I/O chunk means the job is effectively map-only (the trace has
        # plenty of those).
        scaled_shuffle = int(shuffle_paper * config.scale)
        if scaled_shuffle < config.io_chunk:
            scaled_shuffle = 0
        scaled_out = int(output_paper * config.scale)
        if scaled_out < config.io_chunk:
            scaled_out = 0
        has_reduce = scaled_shuffle > 0
        spec = JobSpec(
            name=f"fb{i:02d}",
            input_path=f"/in/fb{i:02d}",
            shuffle_bytes=scaled_shuffle if has_reduce else 0,
            output_bytes=scaled_out,
            n_reduces=max(1, min(8, scaled_shuffle // (64 * MB))) if has_reduce else 0,
            map_cpu_s_per_mb=float(rng.uniform(0.005, 0.08)),
            reduce_cpu_s_per_mb=float(rng.uniform(0.002, 0.03)),
            map_spill_factor=1.0,
            reduce_merge_factor=1.0,
        )
        jobs.append(SwimJob(spec=spec, arrival=t, input_bytes=int(input_paper)))
    return jobs
