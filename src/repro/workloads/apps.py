"""The four classic benchmark applications (§7.1).

CPU costs are calibrated so the *relative* I/O intensities match the
paper's Fig. 2 characterisation:

* **TeraGen** — pure HDFS writer, almost no compute: the aggressor.
* **TeraSort** — I/O-intensive everywhere: HDFS reads + heavy
  intermediate writes in the map phase, full-volume shuffle, and
  replicated HDFS writes in the reduce phase.
* **WordCount** — compute-heavy maps over a large input, sizeable
  intermediate traffic throughout, tiny output: the vulnerable,
  less-I/O-intensive workload the isolation experiments protect.
* **TeraValidate** — read-mostly scan of sorted output.
"""

from __future__ import annotations

from repro.config import ClusterConfig, GB, TB
from repro.mapreduce import JobSpec

__all__ = ["APP_BUILDERS", "build_app", "teragen", "terasort",
           "teravalidate", "wordcount"]


def _n_blocks(config: ClusterConfig, nbytes_paper: float) -> int:
    scaled = config.scaled(nbytes_paper)
    return max(1, scaled // config.sim_block_size)


def teragen(
    config: ClusterConfig,
    output_bytes: float = 1 * TB,
    name: str = "teragen",
) -> JobSpec:
    """Map-only HDFS writer (1 TB output in the paper)."""
    out = config.scaled(output_bytes)
    return JobSpec(
        name=name,
        n_maps=_n_blocks(config, output_bytes),
        output_bytes=out,
        n_reduces=0,
        map_cpu_s_per_mb=0.001,   # row generation is nearly free
    )


def terasort(
    config: ClusterConfig,
    input_path: str,
    input_bytes: float = 100 * GB,
    n_reduces: int = 12,
    name: str = "terasort",
) -> JobSpec:
    """Full sort: shuffle == output == input (50–400 GB in the paper)."""
    scaled = config.scaled(input_bytes)
    return JobSpec(
        name=name,
        input_path=input_path,
        shuffle_bytes=scaled,
        output_bytes=scaled,
        n_reduces=n_reduces,
        map_cpu_s_per_mb=0.004,
        reduce_cpu_s_per_mb=0.006,
        map_spill_factor=1.3,     # sort spills + multi-pass merge
        reduce_merge_factor=1.0,
    )


def wordcount(
    config: ClusterConfig,
    input_path: str,
    input_bytes: float = 50 * GB,
    n_reduces: int = 8,
    name: str = "wordcount",
) -> JobSpec:
    """Compute-heavy aggregation over 50 GB of Wikipedia text."""
    scaled = config.scaled(input_bytes)
    return JobSpec(
        name=name,
        input_path=input_path,
        shuffle_bytes=int(scaled * 0.10),   # combiner shrinks map output
        output_bytes=max(1, int(scaled * 0.05)),
        n_reduces=n_reduces,
        map_cpu_s_per_mb=0.22,    # tokenising dominates
        reduce_cpu_s_per_mb=0.06,
        map_spill_factor=1.5,     # "plenty of intermediate writes" (Fig. 2b)
        reduce_merge_factor=1.0,
    )


def teravalidate(
    config: ClusterConfig,
    input_path: str,
    name: str = "teravalidate",
) -> JobSpec:
    """Read-mostly scan checking sort order; negligible output."""
    return JobSpec(
        name=name,
        input_path=input_path,
        n_reduces=0,
        output_bytes=0,
        map_cpu_s_per_mb=0.002,
    )


#: Declarative name -> builder, the dispatch table behind
#: :class:`repro.scenario.JobEntry` (``"app": "terasort"`` in a scenario
#: JSON selects :func:`terasort`; ``params`` become builder kwargs).
APP_BUILDERS = {
    "teragen": teragen,
    "terasort": terasort,
    "teravalidate": teravalidate,
    "wordcount": wordcount,
}


def build_app(config: ClusterConfig, app: str, **params) -> JobSpec:
    """Build a benchmark :class:`JobSpec` by declarative name."""
    try:
        builder = APP_BUILDERS[app]
    except KeyError:
        raise ValueError(
            f"unknown application {app!r}; expected one of "
            f"{sorted(APP_BUILDERS)}"
        ) from None
    return builder(config, **params)
