"""Synthetic I/O workloads: the profiling ramp and simple stressors.

``io_ramp_job`` builds the "synthetic MapReduce workload with increasing
I/O concurrency" the paper uses to pick the SFQ(D2) reference latency
(§4) — in this reproduction the actual profiling is simulated directly
against the device model by :mod:`repro.core.profiling`; the job spec
here lets the same ramp be driven through the full MapReduce stack.
"""

from __future__ import annotations

from repro.config import ClusterConfig
from repro.mapreduce import JobSpec

__all__ = ["io_ramp_job"]


def io_ramp_job(
    config: ClusterConfig,
    input_path: str,
    n_maps: int,
    name: str = "io-ramp",
) -> JobSpec:
    """A map-only scan with ``n_maps`` concurrent streams and no compute:
    each wave raises the storage concurrency by one task per node."""
    if n_maps <= 0:
        raise ValueError("n_maps must be positive")
    return JobSpec(
        name=name,
        input_path=input_path,
        n_maps=n_maps,
        n_reduces=0,
        map_cpu_s_per_mb=0.0,
    )
