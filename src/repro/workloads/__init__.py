"""Workload builders: the benchmark applications of §7.

Every builder takes the cluster configuration and returns a
:class:`~repro.mapreduce.job.JobSpec` with paper-sized volumes scaled
down by ``config.scale``.
"""

from repro.workloads.apps import (
    APP_BUILDERS,
    build_app,
    teragen,
    terasort,
    teravalidate,
    wordcount,
)
from repro.workloads.swim import SwimJob, facebook2009_trace
from repro.workloads.synthetic import io_ramp_job

__all__ = [
    "APP_BUILDERS",
    "SwimJob",
    "build_app",
    "facebook2009_trace",
    "io_ramp_job",
    "teragen",
    "terasort",
    "teravalidate",
    "wordcount",
]
