"""Executes a :class:`~repro.faults.plan.FaultPlan` against a cluster.

The injector is armed once at cluster construction: it schedules one
engine callback per planned fault (plus one per recovery), all at times
fixed before the simulation starts — jitter is drawn up front from the
seeded ``"faults"`` RNG stream, so the same seed and plan always yield
the same injection schedule and therefore bit-identical runs.

What each fault does:

* **node_crash** — the node's two storage devices and both NIC
  directions :meth:`fail`, erroring every in-flight I/O with a
  :class:`~repro.faults.errors.FaultError`; running task processes on
  the node are interrupted; the NameNode and ResourceManager exclude
  the node.  A transient crash schedules the symmetric recovery.
* **slow_disk / link_degrade** — a rate factor is applied for the
  window, then restored.
* **broker_outage** — the Scheduling Broker rejects reports for the
  window; clients skip rounds and reconcile by epoch on recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.errors import DeviceFailure, LinkFailure, NodeFailure
from repro.faults.plan import (
    BROKER_OUTAGE,
    LINK_DEGRADE,
    NODE_CRASH,
    SLOW_DISK,
    FaultEvent,
    FaultPlan,
)
from repro.simcore import Process
from repro.telemetry import (
    FAULT_INJECTED,
    NODE_DOWN,
    NODE_UP,
    FaultInjected,
    NodeDown,
    NodeUp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import BigDataCluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and fires the faults of one plan on one cluster."""

    def __init__(self, cluster: "BigDataCluster", plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        self.telemetry = cluster.telemetry
        self._rng = cluster.rng.stream("faults")
        #: nodes currently crashed (read by the HDFS failover path)
        self.down_nodes: set[str] = set()
        #: live task processes per node, interrupted on a crash there
        self._watched: dict[str, list[Process]] = {}
        #: fault events fired so far
        self.injected = 0
        self._armed = False
        for ev in plan.events:
            if ev.kind != BROKER_OUTAGE and ev.target not in cluster.nodes:
                raise ValueError(
                    f"fault targets unknown node {ev.target!r}"
                )

    # ------------------------------------------------------------------ api
    def arm(self) -> None:
        """Schedule every planned fault (call once, before running)."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        for ev in self.plan.events:
            at = ev.at
            if ev.jitter > 0:
                at += float(self._rng.uniform(0.0, ev.jitter))
            self.sim.call_at(at, lambda e=ev: self._fire(e))

    def alive(self, node: str) -> bool:
        return node not in self.down_nodes

    def watch_task(self, node: str, proc: Process) -> None:
        """Track a task process so a crash of ``node`` interrupts it."""
        procs = self._watched.setdefault(node, [])
        procs.append(proc)
        proc.callbacks.append(lambda _ev: procs.remove(proc))

    # ------------------------------------------------------------- dispatch
    def _fire(self, ev: FaultEvent) -> None:
        self.injected += 1
        if self.telemetry.publishes(FAULT_INJECTED):
            self.telemetry.publish(FaultInjected(
                t=self.sim.now, source="faults", fault=ev.kind,
                target=ev.target, duration=ev.duration,
            ))
        if ev.kind == NODE_CRASH:
            self._node_crash(ev)
        elif ev.kind == SLOW_DISK:
            self._slow_disk(ev)
        elif ev.kind == LINK_DEGRADE:
            self._link_degrade(ev)
        else:
            self._broker_outage(ev)

    # --------------------------------------------------------------- faults
    def _node_devices(self, node: str):
        nodeio = self.cluster.nodes[node]
        return (nodeio.hdfs_device, nodeio.tmp_device)

    def _node_crash(self, ev: FaultEvent) -> None:
        node = ev.target
        if node in self.down_nodes:
            return  # crashing a crashed node is a no-op
        self.down_nodes.add(node)
        self.cluster.namenode.node_down(node)
        self.cluster.rm.node_down(node)
        exc = NodeFailure(f"node {node} crashed at t={self.sim.now:.3f}")
        for dev in self._node_devices(node):
            dev.fail(DeviceFailure(f"{dev.name} lost in crash of {node}"))
        self.cluster.net.egress[node].fail(
            LinkFailure(f"{node} egress lost in crash")
        )
        self.cluster.net.ingress[node].fail(
            LinkFailure(f"{node} ingress lost in crash")
        )
        # Interrupt over a copy: completion callbacks mutate the list.
        for proc in list(self._watched.get(node, ())):
            if proc.is_alive:
                proc.interrupt(exc)
        if self.telemetry.publishes(NODE_DOWN):
            self.telemetry.publish(NodeDown(
                t=self.sim.now, source=node, permanent=ev.duration <= 0,
            ))
        if ev.duration > 0:
            self.sim.call_in(ev.duration, lambda n=node: self._node_recover(n))

    def _node_recover(self, node: str) -> None:
        self.down_nodes.discard(node)
        self.cluster.namenode.node_up(node)
        self.cluster.rm.node_up(node)
        for dev in self._node_devices(node):
            dev.repair()
        self.cluster.net.egress[node].repair()
        self.cluster.net.ingress[node].repair()
        # The node's schedulers report again: bump their epoch so the
        # broker rebases instead of tripping the monotonicity check.
        for client in self.cluster.nodes[node].broker_clients:
            client.restart()
        if self.telemetry.publishes(NODE_UP):
            self.telemetry.publish(NodeUp(t=self.sim.now, source=node))

    def _slow_disk(self, ev: FaultEvent) -> None:
        nodeio = self.cluster.nodes[ev.target]
        dev = nodeio.hdfs_device if ev.device == "hdfs" else nodeio.tmp_device
        dev.set_rate_factor(ev.factor)
        self.sim.call_in(ev.duration, lambda d=dev: d.set_rate_factor(1.0))

    def _link_degrade(self, ev: FaultEvent) -> None:
        links = (
            self.cluster.net.egress[ev.target],
            self.cluster.net.ingress[ev.target],
        )
        for link in links:
            link.set_rate_factor(ev.factor)

        def restore() -> None:
            for link in links:
                link.set_rate_factor(1.0)

        self.sim.call_in(ev.duration, restore)

    def _broker_outage(self, ev: FaultEvent) -> None:
        broker = self.cluster.broker
        if broker is None:
            return  # uncoordinated policy: nothing to take down
        broker.set_down(True)
        self.sim.call_in(ev.duration, lambda: broker.set_down(False))
