"""Deterministic fault injection and the errors it raises.

Declare *what goes wrong and when* as a :class:`FaultPlan` (pure data,
JSON-round-trippable), hand it to
:class:`~repro.cluster.BigDataCluster` via the ``faults`` argument, and
the :class:`FaultInjector` executes it: datanode crashes (transient or
permanent), fail-slow disks, link degradation, and broker outage
windows.  Same seed + same plan ⇒ bit-identical runs; no plan ⇒ the
fault layer is never touched and runs are bit-identical to a build
without it.
"""

from repro.faults.errors import (
    BrokerUnavailable,
    DeviceFailure,
    FaultError,
    LinkFailure,
    NodeFailure,
    ReadTimeout,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BROKER_OUTAGE,
    FAULT_KINDS,
    LINK_DEGRADE,
    NODE_CRASH,
    SLOW_DISK,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "BROKER_OUTAGE",
    "FAULT_KINDS",
    "LINK_DEGRADE",
    "NODE_CRASH",
    "SLOW_DISK",
    "BrokerUnavailable",
    "DeviceFailure",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFailure",
    "NodeFailure",
    "ReadTimeout",
]
