"""Error types raised by injected faults.

All inherit :class:`~repro.simcore.FaultError`, which the failure
handlers key on: the HDFS client retries a read on the next replica
when a :class:`FaultError` surfaces, the AppMaster re-runs a task whose
process died of one, and the engine counts (rather than raises) fault
collateral in orphaned background processes.  Anything *not* derived
from ``FaultError`` keeps its existing meaning: an unhandled model bug
that must crash the run.
"""

from __future__ import annotations

from repro.simcore import FaultError

__all__ = [
    "BrokerUnavailable",
    "DeviceFailure",
    "FaultError",
    "LinkFailure",
    "NodeFailure",
    "ReadTimeout",
]


class DeviceFailure(FaultError):
    """A storage device went down; in-flight and new I/Os fail."""


class LinkFailure(FaultError):
    """A NIC direction went down; in-flight and new transfers fail."""


class NodeFailure(FaultError):
    """A whole datanode crashed (devices + links + running containers)."""


class BrokerUnavailable(FaultError):
    """The Scheduling Broker is inside an outage window; clients must
    skip the coordination round (the DSFQ delay is additive, so this is
    safe) and retry on their next tick."""


class ReadTimeout(FaultError):
    """A replica read attempt exceeded the fault plan's read timeout."""
