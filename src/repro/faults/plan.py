"""Declarative fault plans.

A :class:`FaultPlan` is an immutable, JSON-round-trippable description
of *what goes wrong and when* in a run: a tuple of scheduled
:class:`FaultEvent`\\ s plus the client-side failure-handling knobs
(read retry budget, backoff, timeout).  Like
:class:`~repro.core.registry.PolicySpec` it serialises to canonical
JSON (sorted keys, no whitespace) so two equal plans always produce the
same bytes, and a plan can be stored next to the experiment spec that
used it.

The plan is pure data — executing it is the
:class:`~repro.faults.injector.FaultInjector`'s job.  Everything here
is stdlib-only so plans can be built and validated without importing
the simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Sequence, Tuple

__all__ = [
    "BROKER_OUTAGE",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "LINK_DEGRADE",
    "NODE_CRASH",
    "SLOW_DISK",
]

#: A datanode crashes at ``at``: its devices and links fail, running
#: containers die, and the node is excluded from placement/allocation.
#: ``duration > 0`` means the node recovers after that long;
#: ``duration == 0`` means the crash is permanent.
NODE_CRASH = "node_crash"

#: One storage device on ``target`` runs at ``factor`` times its normal
#: rate for ``duration`` seconds (a fail-slow disk).  ``device``
#: selects which device ("hdfs" or "tmp").
SLOW_DISK = "slow_disk"

#: Both NIC directions of ``target`` run at ``factor`` times their
#: normal rate for ``duration`` seconds.
LINK_DEGRADE = "link_degrade"

#: The scheduling broker rejects all reports for ``duration`` seconds;
#: clients degrade to local-only SFQ(D2) and reconcile on recovery.
BROKER_OUTAGE = "broker_outage"

FAULT_KINDS = (NODE_CRASH, SLOW_DISK, LINK_DEGRADE, BROKER_OUTAGE)

_DEVICES = ("hdfs", "tmp")


def _canonical_dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is the nominal injection time; the injector may add a
    deterministic jitter drawn uniformly from ``[0, jitter]`` so plans
    can model imprecisely-timed failures without losing repeatability.
    """

    kind: str
    at: float
    target: str = ""
    duration: float = 0.0
    factor: float = 1.0
    device: str = "hdfs"
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.kind == BROKER_OUTAGE:
            if self.target:
                raise ValueError("broker_outage takes no target")
            if self.duration <= 0:
                raise ValueError("broker_outage needs duration > 0")
            return
        if not self.target:
            raise ValueError(f"{self.kind} needs a target node")
        if self.kind == NODE_CRASH:
            if self.duration < 0:
                raise ValueError("node_crash duration must be >= 0 (0 = permanent)")
            return
        # slow_disk / link_degrade
        if self.duration <= 0:
            raise ValueError(f"{self.kind} needs duration > 0")
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(
                f"{self.kind} factor must be in (0, 1], got {self.factor}"
            )
        if self.kind == SLOW_DISK and self.device not in _DEVICES:
            raise ValueError(
                f"slow_disk device must be one of {_DEVICES}, got {self.device!r}"
            )

    # -- convenience constructors ------------------------------------

    @classmethod
    def node_crash(
        cls, at: float, target: str, *, duration: float = 0.0, jitter: float = 0.0
    ) -> "FaultEvent":
        """Crash ``target`` at ``at``; ``duration == 0`` is permanent."""
        return cls(NODE_CRASH, at, target, duration=duration, jitter=jitter)

    @classmethod
    def slow_disk(
        cls,
        at: float,
        target: str,
        *,
        duration: float,
        factor: float,
        device: str = "hdfs",
        jitter: float = 0.0,
    ) -> "FaultEvent":
        """Degrade one device of ``target`` to ``factor`` of its rate."""
        return cls(
            SLOW_DISK,
            at,
            target,
            duration=duration,
            factor=factor,
            device=device,
            jitter=jitter,
        )

    @classmethod
    def link_degrade(
        cls,
        at: float,
        target: str,
        *,
        duration: float,
        factor: float,
        jitter: float = 0.0,
    ) -> "FaultEvent":
        """Degrade both NIC directions of ``target``."""
        return cls(
            LINK_DEGRADE, at, target, duration=duration, factor=factor, jitter=jitter
        )

    @classmethod
    def broker_outage(
        cls, at: float, *, duration: float, jitter: float = 0.0
    ) -> "FaultEvent":
        """Take the broker down for ``duration`` seconds."""
        return cls(BROKER_OUTAGE, at, duration=duration, jitter=jitter)

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultEvent":
        known = {f.name for f in fields(cls)}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown FaultEvent fields: {sorted(extra)}")
        return cls(**dict(d))


@dataclass(frozen=True)
class FaultPlan:
    """A full fault schedule plus failure-handling parameters.

    ``read_timeout == 0`` disables the per-attempt read timeout (a read
    then only fails over when the replica errors outright, e.g. on a
    crash).  ``read_backoff`` is the base of the exponential backoff
    between read attempts: attempt *k* (k >= 1 retries) waits
    ``read_backoff * 2**(k-1)`` seconds first.
    """

    events: Tuple[FaultEvent, ...] = ()
    read_backoff: float = 0.25
    read_timeout: float = 0.0
    max_read_attempts: int = 4

    def __post_init__(self) -> None:
        evs = tuple(self.events)
        for ev in evs:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"events must be FaultEvent, got {type(ev).__name__}")
        object.__setattr__(self, "events", evs)
        if self.read_backoff < 0:
            raise ValueError(f"read_backoff must be >= 0, got {self.read_backoff}")
        if self.read_timeout < 0:
            raise ValueError(f"read_timeout must be >= 0, got {self.read_timeout}")
        if self.max_read_attempts < 1:
            raise ValueError(
                f"max_read_attempts must be >= 1, got {self.max_read_attempts}"
            )

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [ev.to_dict() for ev in self.events],
            "read_backoff": self.read_backoff,
            "read_timeout": self.read_timeout,
            "max_read_attempts": self.max_read_attempts,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown FaultPlan fields: {sorted(extra)}")
        data = dict(d)
        raw = data.pop("events", ())
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise TypeError("events must be a sequence")
        events = tuple(
            ev if isinstance(ev, FaultEvent) else FaultEvent.from_dict(ev)
            for ev in raw
        )
        return cls(events=events, **data)

    def to_json(self) -> str:
        """Canonical JSON: equal plans always serialise identically."""
        return _canonical_dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
