"""SFQ(D2): dynamic-depth SFQ via an integral latency controller (§4).

The controller runs every ``period`` seconds and updates

    D(k+1) = D(k) + K · (Lref − L(k))                         (Eq. 1)

where ``L(k)`` is the average device latency of requests completed in
period ``k``.  When the storage is asymmetric (SSD), separate read and
write reference latencies are blended by the read/write mix observed in
the previous period (§4, last paragraph):

    Lref(k) = p_read · Lref_read + (1 − p_read) · Lref_write
    L(k)    = p_read · L_read(k) + (1 − p_read) · L_write(k)

``D`` is kept as a float internally (so small errors integrate) and
clamped to ``[d_min, d_max]``; the integral part is the admission depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.sfq import SFQDScheduler
from repro.simcore import Simulator, TimeSeries
from repro.storage import StorageDevice
from repro.telemetry import DEPTH_CHANGED, DepthChanged, TelemetryBus, TimeSeriesSink

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import PolicySpec

__all__ = ["DepthController", "SFQD2Scheduler"]


@dataclass(frozen=True)
class DepthController:
    """Parameters of the Eq. 1 feedback controller.

    ``gain`` is the integral gain K in depth-units per second of latency
    error.  The paper quotes K = 1e-6 with latency in its internal units;
    here latency is in seconds, so an equivalent gain is O(10–100).
    """

    ref_latency_read: float
    ref_latency_write: float
    gain: float = 60.0
    period: float = 1.0
    d_min: float = 1.0
    d_max: float = 12.0
    d_init: float = 8.0

    def __post_init__(self):
        if self.ref_latency_read <= 0 or self.ref_latency_write <= 0:
            raise ValueError("reference latencies must be positive")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if self.period <= 0:
            raise ValueError("control period must be positive")
        if not (1.0 <= self.d_min <= self.d_init <= self.d_max):
            raise ValueError(
                f"need 1 <= d_min <= d_init <= d_max, got "
                f"{self.d_min}/{self.d_init}/{self.d_max}"
            )

    @classmethod
    def symmetric(cls, ref_latency: float, **kwargs) -> "DepthController":
        """Controller for storage with symmetric read/write latency (HDD)."""
        return cls(
            ref_latency_read=ref_latency, ref_latency_write=ref_latency, **kwargs
        )

    def update(self, d: float, reads: list[float], writes: list[float]) -> float:
        """One Eq. 1 step given the period's completed-request latencies."""
        n = len(reads) + len(writes)
        if n == 0:
            return d  # idle period: hold D (no observation to act on)
        p_read = len(reads) / n
        l_read = sum(reads) / len(reads) if reads else 0.0
        l_write = sum(writes) / len(writes) if writes else 0.0
        l_k = p_read * l_read + (1.0 - p_read) * l_write
        l_ref = p_read * self.ref_latency_read + (1.0 - p_read) * self.ref_latency_write
        d = d + self.gain * (l_ref - l_k)
        return min(self.d_max, max(self.d_min, d))


class SFQD2Scheduler(SFQDScheduler):
    """SFQ with the depth adapted online by :class:`DepthController`.

    Every control period the scheduler publishes a ``depth_changed``
    telemetry event carrying the updated D and the period's observed
    average latency.  ``depth_series`` / ``latency_series`` — the two
    traces of Fig. 7 — are plain :class:`TimeSeriesSink` views of that
    event stream, so any other sink (a JSON trace, a live dashboard)
    sees exactly the same data.
    """

    algorithm = "sfq(d2)"
    aliases = ("sfqd2",)
    required_params = ("controller",)

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        controller: DepthController,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        super().__init__(sim, device, depth=int(controller.d_init), name=name,
                         telemetry=telemetry)
        self.controller = controller
        self._depth = float(controller.d_init)
        self._depth_sink = TimeSeriesSink(
            self.telemetry, DEPTH_CHANGED, source=self.name,
            value=lambda ev: ev.depth, name=f"{self.name}:depth",
        )
        self._latency_sink = TimeSeriesSink(
            self.telemetry, DEPTH_CHANGED, source=self.name,
            value=lambda ev: ev.latency, when=lambda ev: ev.samples > 0,
            name=f"{self.name}:latency",
        )
        self._tick_scheduled = False

    @classmethod
    def from_spec(cls, sim, device, spec: "PolicySpec", name: str = "",
                  telemetry: Optional[TelemetryBus] = None) -> "SFQD2Scheduler":
        assert spec.controller is not None  # guaranteed by spec validation
        return cls(sim, device, spec.controller, name=name, telemetry=telemetry)

    @property
    def depth_series(self) -> TimeSeries:
        """Per-period D (Fig. 7, top trace)."""
        return self._depth_sink.series

    @property
    def latency_series(self) -> TimeSeries:
        """Per-period observed average latency (Fig. 7, bottom trace)."""
        return self._latency_sink.series

    def _enqueue(self, req) -> None:
        super()._enqueue(req)
        self._ensure_tick()

    def _ensure_tick(self) -> None:
        """The control loop runs only while the scheduler has work, so an
        idle simulation can drain its event queue."""
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.call_in(self.controller.period, self._control_tick)

    def _control_tick(self) -> None:
        self._tick_scheduled = False
        reads, writes = self.stats.drain_window()
        old_depth = self.depth
        self._depth = self.controller.update(self._depth, reads, writes)
        n = len(reads) + len(writes)
        avg = (sum(reads) + sum(writes)) / n if n else 0.0
        self.telemetry.publish(DepthChanged(
            t=self.sim.now, source=self.name, depth=self._depth,
            latency=avg, samples=n,
        ))
        if self.depth > old_depth:
            self._try_dispatch()  # deeper window may admit queued requests
        if self.outstanding > 0 or self.queued > 0:
            self._ensure_tick()
