"""The pluggable I/O-policy registry.

Interposition's whole point (§3) is that *different* schedulers can sit
at each of a datanode's three I/O classes.  The registry is what makes
that pluggable: every :class:`~repro.core.base.IOScheduler` subclass
self-registers under its ``algorithm`` name (via ``__init_subclass__``)
together with declared *capabilities*:

* ``manages_classes`` — which I/O classes the scheduler can actually
  manage.  cgroups declares ``{INTERMEDIATE}`` only, faithfully to §6 —
  the restriction is a capability, not a special case in the wiring.
* ``supports_coordination`` — whether the scheduler implements the
  DSFQ ``add_start_delay`` interface the Scheduling Broker drives (§5).
* ``required_params`` — spec parameters construction needs (e.g. the
  SFQ(D2) controller).

:class:`~repro.core.policy.PolicySpec` validates against this registry,
and :class:`~repro.core.interposition.DataNodeIO` builds schedulers
through it — no ``if/elif`` chain anywhere.  Third-party schedulers
(from experiments, benchmarks or tests) register simply by subclassing
``IOScheduler`` with an ``algorithm`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.core.tags import IOClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import IOScheduler
    from repro.core.policy import PolicySpec
    from repro.simcore import Simulator
    from repro.storage import StorageDevice
    from repro.telemetry import TelemetryBus

__all__ = ["PolicyInfo", "PolicyRegistry", "REGISTRY", "get_policy",
           "policy_names", "register_scheduler"]


@dataclass(frozen=True)
class PolicyInfo:
    """One registered scheduler implementation and its capabilities."""

    name: str                          # canonical algorithm name
    scheduler: type
    aliases: tuple[str, ...]
    manages_classes: frozenset[IOClass]
    supports_coordination: bool
    required_params: tuple[str, ...]

    @classmethod
    def from_scheduler(cls, scheduler: type["IOScheduler"]) -> "PolicyInfo":
        return cls(
            name=scheduler.algorithm,
            scheduler=scheduler,
            aliases=tuple(scheduler.aliases),
            manages_classes=frozenset(scheduler.manages_classes),
            supports_coordination=bool(scheduler.supports_coordination),
            required_params=tuple(scheduler.required_params),
        )

    def manages(self, io_class: IOClass) -> bool:
        return io_class in self.manages_classes

    def build(
        self,
        sim: "Simulator",
        device: "StorageDevice",
        spec: "PolicySpec",
        name: str = "",
        telemetry: Optional["TelemetryBus"] = None,
    ) -> "IOScheduler":
        """Construct the scheduler for one interposition point."""
        return self.scheduler.from_spec(
            sim, device, spec, name=name, telemetry=telemetry
        )


class PolicyRegistry:
    """Name -> :class:`PolicyInfo`, with alias resolution."""

    def __init__(self) -> None:
        self._infos: dict[str, PolicyInfo] = {}
        self._resolve: dict[str, str] = {}   # name or alias -> canonical name

    def register(self, scheduler: type["IOScheduler"]) -> PolicyInfo:
        info = PolicyInfo.from_scheduler(scheduler)
        for key in (info.name, *info.aliases):
            owner = self._resolve.get(key)
            if owner is not None:
                existing = self._infos[owner].scheduler
                if existing.__qualname__ == scheduler.__qualname__:
                    continue  # module re-import of the same class
                raise ValueError(
                    f"policy name {key!r} already registered by "
                    f"{existing.__module__}.{existing.__qualname__}"
                )
        self._infos[info.name] = info
        for key in (info.name, *info.aliases):
            self._resolve[key] = info.name
        return info

    def get(self, kind: str) -> PolicyInfo:
        canonical = self._resolve.get(kind)
        if canonical is None:
            raise ValueError(
                f"unknown policy kind {kind!r}; one of {self.names()}"
            )
        return self._infos[canonical]

    def canonical(self, kind: str) -> str:
        return self.get(kind).name

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._infos))

    def __contains__(self, kind: str) -> bool:
        return kind in self._resolve

    def __iter__(self) -> Any:
        return iter(self._infos.values())


#: The process-wide registry all schedulers register into.
REGISTRY = PolicyRegistry()


def register_scheduler(scheduler: type["IOScheduler"]) -> PolicyInfo:
    """Register a scheduler class (called by ``IOScheduler.__init_subclass__``)."""
    return REGISTRY.register(scheduler)


def get_policy(kind: str) -> PolicyInfo:
    """Resolve a policy kind (or alias) to its registry entry."""
    return REGISTRY.get(kind)


def policy_names() -> tuple[str, ...]:
    """Canonical names of every registered policy."""
    return REGISTRY.names()
