"""Performance metrics used throughout the evaluation (§7).

* slowdown / relative performance w.r.t. standalone runtimes,
* proportional-sharing error against assigned weights,
* Jain's fairness index over weighted service,
* aggregate throughput across schedulers/devices.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "aggregate_service",
    "jain_fairness",
    "proportional_share_error",
    "relative_performance",
    "slowdown",
]


def slowdown(runtime: float, standalone: float) -> float:
    """Fractional slowdown w.r.t. the standalone runtime (0.5 == 50%)."""
    if standalone <= 0:
        raise ValueError("standalone runtime must be positive")
    if runtime <= 0:
        raise ValueError("runtime must be positive")
    return runtime / standalone - 1.0


def relative_performance(runtime: float, standalone: float) -> float:
    """Standalone-relative performance in (0, 1]: 1.0 == no interference.

    This is the y-axis of Fig. 10 (``standalone / contended`` runtime).
    """
    if standalone <= 0 or runtime <= 0:
        raise ValueError("runtimes must be positive")
    return min(1.0, standalone / runtime) if runtime >= standalone else 1.0


def proportional_share_error(
    service: Mapping[str, float], weights: Mapping[str, float]
) -> float:
    """How far the realised service split is from the weight split.

    Returns max over apps of ``|share_observed − share_assigned|``;
    0 means perfect proportional sharing.  Apps absent from ``service``
    count as zero service.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    total_weight = sum(weights.values())
    total_service = sum(service.get(app, 0.0) for app in weights)
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    if total_service <= 0:
        raise ValueError("no service recorded for any weighted app")
    worst = 0.0
    for app, w in weights.items():
        observed = service.get(app, 0.0) / total_service
        assigned = w / total_weight
        worst = max(worst, abs(observed - assigned))
    return worst


def jain_fairness(values: Sequence[float] | Iterable[float]) -> float:
    """Jain's index: 1.0 = perfectly equal, 1/n = maximally unfair."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("fairness of empty set")
    if (arr < 0).any():
        raise ValueError("fairness values must be non-negative")
    total = arr.sum()
    if total == 0:
        return 1.0  # nobody got anything: vacuously equal
    return float(total**2 / (arr.size * (arr**2).sum()))


def aggregate_service(stat_dicts: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum per-app service over many schedulers (the A_i of §5)."""
    out: dict[str, float] = {}
    for d in stat_dicts:
        for app, amount in d.items():
            out[app] = out.get(app, 0.0) + amount
    return out
