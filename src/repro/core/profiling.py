"""Offline reference-latency profiling (§4).

The SFQ(D2) controller needs a reference latency ``Lref``: the latency
observed *just before the storage starts to saturate*.  The paper
obtains it by profiling the storage once per setup with a synthetic
MapReduce workload of increasing I/O concurrency, measuring latency and
throughput at each level.  We reproduce that procedure against the
device model: a closed-loop workload at fixed concurrency ``n`` issues
chunk-sized requests back-to-back; we sweep ``n`` and pick the latency
at the lowest concurrency whose throughput reaches a saturation
fraction of the maximum.

For asymmetric storage (SSD), reads and writes are profiled separately,
giving the split references the controller blends at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterConfig, StorageProfile
from repro.core.sfqd2 import DepthController
from repro.simcore import Simulator
from repro.storage import StorageDevice

__all__ = ["ProfilePoint", "profile_device", "calibrate_controller"]


@dataclass(frozen=True)
class ProfilePoint:
    """Measured behaviour at one concurrency level."""

    concurrency: int
    latency: float      # mean request latency, seconds
    throughput: float   # bytes / second


def profile_device(
    storage: StorageProfile,
    op: str,
    chunk: int,
    max_concurrency: int = 16,
    duration: float = 20.0,
) -> list[ProfilePoint]:
    """Closed-loop latency/throughput sweep over concurrency levels."""
    if op not in ("read", "write"):
        raise ValueError(f"unknown op {op!r}")
    points = []
    for n in range(1, max_concurrency + 1):
        sim = Simulator()
        device = StorageDevice(sim, storage, name="probe")
        latencies: list[float] = []

        def worker():
            while sim.now < duration:
                done = yield device.submit(op, chunk)
                latencies.append(done.latency)

        for _ in range(n):
            sim.process(worker())
        sim.run(until=duration * 2)  # workers stop issuing at `duration`
        elapsed = min(sim.now, duration) or duration
        throughput = device.read_meter.total + device.write_meter.total
        points.append(
            ProfilePoint(
                concurrency=n,
                latency=sum(latencies) / len(latencies),
                throughput=throughput / elapsed,
            )
        )
    return points


def reference_latency(
    points: list[ProfilePoint], saturation_fraction: float = 0.9
) -> float:
    """Latency at the knee: the lowest concurrency whose throughput is
    within ``saturation_fraction`` of the sweep maximum."""
    if not points:
        raise ValueError("empty profile")
    if not (0 < saturation_fraction <= 1):
        raise ValueError("saturation_fraction must be in (0, 1]")
    peak = max(p.throughput for p in points)
    for p in points:
        if p.throughput >= saturation_fraction * peak:
            return p.latency
    return points[-1].latency  # pragma: no cover - unreachable by construction


def calibrate_controller(
    config: ClusterConfig,
    gain: float = 30.0,
    period: float = 1.0,
    d_max: float = 12.0,
    saturation_fraction: float = 0.9,
) -> DepthController:
    """The full §4 procedure: profile reads and writes, build a controller.

    Needs to be run once per storage setup (the result is deterministic
    for a given profile, so experiments may also cache it).
    """
    chunk = config.io_chunk
    read_points = profile_device(config.storage, "read", chunk)
    write_points = profile_device(config.storage, "write", chunk)
    return DepthController(
        ref_latency_read=reference_latency(read_points, saturation_fraction),
        ref_latency_write=reference_latency(write_points, saturation_fraction),
        gain=gain,
        period=period,
        d_max=d_max,
        d_init=min(8.0, d_max),
    )
