"""IBIS — the paper's contribution.

* :mod:`repro.core.tags` / :mod:`repro.core.request` — application-tagged
  I/O requests across the three interposed classes (§3).
* :mod:`repro.core.base` — scheduler interface, native FIFO passthrough.
* :mod:`repro.core.sfq` — SFQ and SFQ(D) proportional sharing (§4).
* :mod:`repro.core.sfqd2` — SFQ(D2): feedback-controlled dynamic depth (§4).
* :mod:`repro.core.profiling` — offline reference-latency profiling (§4).
* :mod:`repro.core.broker` — Scheduling Broker + DSFQ total-service
  coordination (§5).
* :mod:`repro.core.cgroups` — the cgroups blkio baseline that can only see
  intermediate I/Os (§6).
* :mod:`repro.core.registry` — the pluggable policy registry every
  scheduler subclass self-registers into, with declared capabilities.
* :mod:`repro.core.policy` — :class:`PolicySpec`/:class:`NodePolicy`:
  policy selection as validated, serializable data.
* :mod:`repro.core.interposition` — per-datanode interposition points
  wiring I/O classes to schedulers and devices (§3).
* :mod:`repro.core.metrics` — fairness/slowdown metrics used throughout §7.
"""

from repro.core.base import IOScheduler, NativeScheduler, SchedulerStats
from repro.core.broker import BrokerClient, SchedulingBroker
from repro.core.cgroups import CgroupsThrottleScheduler, CgroupsWeightScheduler
from repro.core.interposition import DataNodeIO
from repro.core.policy import (
    NodePolicy,
    PolicySpec,
    canonical_json,
    policy_from_dict,
)
from repro.core.registry import (
    REGISTRY,
    PolicyInfo,
    PolicyRegistry,
    get_policy,
    policy_names,
    register_scheduler,
)
from repro.core.request import IORequest
from repro.core.sfq import SFQDScheduler
from repro.core.sfqd2 import DepthController, SFQD2Scheduler
from repro.core.tags import IOClass, IOTag

__all__ = [
    "BrokerClient",
    "CgroupsThrottleScheduler",
    "CgroupsWeightScheduler",
    "DataNodeIO",
    "DepthController",
    "IOClass",
    "IORequest",
    "IOScheduler",
    "IOTag",
    "NativeScheduler",
    "NodePolicy",
    "PolicyInfo",
    "PolicyRegistry",
    "PolicySpec",
    "REGISTRY",
    "SchedulerStats",
    "SchedulingBroker",
    "SFQDScheduler",
    "SFQD2Scheduler",
    "canonical_json",
    "get_policy",
    "policy_from_dict",
    "policy_names",
    "register_scheduler",
]
