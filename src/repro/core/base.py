"""Scheduler interface, shared accounting, and the native passthrough.

Every interposed scheduling point — the Data Node's HDFS path, the local
intermediate-I/O path, and the Node Manager's shuffle servlet — hosts
one :class:`IOScheduler` instance in front of a :class:`StorageDevice`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

from repro.core.request import IORequest
from repro.simcore import Event, RateMeter, Simulator
from repro.storage import IOCompletion, StorageDevice

__all__ = ["IOScheduler", "NativeScheduler", "SchedulerStats"]


class SchedulerStats:
    """Per-scheduler accounting shared by all scheduler implementations."""

    def __init__(self, name: str):
        self.name = name
        # Bytes of I/O serviced per application (the a_ij of §5).
        self.service_by_app: dict[str, float] = defaultdict(float)
        # Completed-bytes meters per app, for throughput figures.
        self.meter_by_app: dict[str, RateMeter] = {}
        # Device latencies (dispatch -> completion) in the current control
        # window, split by op; consumed by the SFQ(D2) controller.
        self.window_read_latencies: list[float] = []
        self.window_write_latencies: list[float] = []
        self.total_requests = 0
        self.total_bytes = 0.0
        # Last-seen weight per app (requests carry the weight in their tag).
        self.weight_by_app: dict[str, float] = {}

    def note_completion(self, t: float, req: IORequest, done: IOCompletion) -> None:
        app = req.app_id
        self.service_by_app[app] += req.nbytes
        meter = self.meter_by_app.get(app)
        if meter is None:
            meter = self.meter_by_app[app] = RateMeter(f"{self.name}:{app}")
        meter.add(t, req.nbytes)
        if req.op == "read":
            self.window_read_latencies.append(done.latency)
        else:
            self.window_write_latencies.append(done.latency)
        self.total_requests += 1
        self.total_bytes += req.nbytes

    def drain_window(self) -> tuple[list[float], list[float]]:
        """Return and reset the (reads, writes) latency window."""
        reads, self.window_read_latencies = self.window_read_latencies, []
        writes, self.window_write_latencies = self.window_write_latencies, []
        return reads, writes


class IOScheduler:
    """Base class: submit tagged requests, dispatch them to the device.

    Subclasses override :meth:`_enqueue` (and whatever dispatch machinery
    they need) and call :meth:`_dispatch_to_device` to start servicing a
    request.  The base class handles completion accounting and exposes
    the per-app service counters the Scheduling Broker reads.
    """

    #: human-readable algorithm name, overridden by subclasses
    algorithm = "abstract"

    def __init__(self, sim: Simulator, device: StorageDevice, name: str = ""):
        self.sim = sim
        self.device = device
        self.name = name or f"{self.algorithm}@{device.name}"
        self.stats = SchedulerStats(self.name)
        self.outstanding = 0
        self._completion_hooks: list[Callable[[IORequest, IOCompletion], None]] = []
        self._submit_hooks: list[Callable[[IORequest], None]] = []

    # ------------------------------------------------------------------ api
    def submit(self, req: IORequest) -> Event:
        """Accept a tagged request; returns its completion event."""
        self.stats.weight_by_app[req.app_id] = req.weight
        self._enqueue(req)
        for hook in self._submit_hooks:
            hook(req)
        return req.completion

    def add_submit_hook(self, hook: Callable[[IORequest], None]) -> None:
        self._submit_hooks.append(hook)

    def add_completion_hook(
        self, hook: Callable[[IORequest, IOCompletion], None]
    ) -> None:
        self._completion_hooks.append(hook)

    @property
    def queued(self) -> int:
        """Requests accepted but not yet dispatched (0 for passthrough)."""
        return 0

    # ------------------------------------------------------- subclass hooks
    def _enqueue(self, req: IORequest) -> None:
        raise NotImplementedError

    def _on_complete(self, req: IORequest, done: IOCompletion) -> None:
        """Called after accounting; subclasses trigger further dispatch."""

    # ------------------------------------------------------------ plumbing
    def _dispatch_to_device(self, req: IORequest) -> None:
        req.dispatch_time = self.sim.now
        self.outstanding += 1
        dev_ev = self.device.submit(req.op, req.nbytes)
        dev_ev.callbacks.append(lambda ev, r=req: self._complete(r, ev.value))

    def _complete(self, req: IORequest, done: IOCompletion) -> None:
        self.outstanding -= 1
        self.stats.note_completion(self.sim.now, req, done)
        for hook in self._completion_hooks:
            hook(req, done)
        self._on_complete(req, done)
        req.completion.succeed(done)


class NativeScheduler(IOScheduler):
    """No I/O management: requests hit the device as soon as they arrive.

    This is the paper's "Native Hadoop" configuration — the device's
    work-conserving processor sharing is the only arbiter, so an
    aggressive application freely steals bandwidth (§2.3).
    """

    algorithm = "native"

    def _enqueue(self, req: IORequest) -> None:
        self._dispatch_to_device(req)
