"""Scheduler interface, shared accounting, and the native passthrough.

Every interposed scheduling point — the Data Node's HDFS path, the local
intermediate-I/O path, and the Node Manager's shuffle servlet — hosts
one :class:`IOScheduler` instance in front of a :class:`StorageDevice`.

Subclassing ``IOScheduler`` with an ``algorithm`` attribute registers
the implementation in the policy registry (:mod:`repro.core.registry`)
together with its declared capabilities, making it constructible
through :class:`~repro.core.policy.PolicySpec` without touching any
core code.  Every request's life cycle is published as structured
events on the scheduler's :class:`~repro.telemetry.TelemetryBus`;
:class:`SchedulerStats` is itself a bus sink.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.registry import register_scheduler
from repro.dataplane import IOClass, IORequest, LifecycleError, RequestState
from repro.simcore import Event, RateMeter, RequestCancelled, Simulator
from repro.storage import IOCompletion, StorageDevice
from repro.telemetry import (
    REQUEST_COMPLETED,
    REQUEST_DISPATCHED,
    REQUEST_SUBMITTED,
    SPAN,
    RequestCompleted,
    RequestDispatched,
    RequestSubmitted,
    Span,
    TelemetryBus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import PolicySpec

__all__ = ["IOScheduler", "NativeScheduler", "SchedulerStats"]


class SchedulerStats:
    """Per-scheduler accounting, fed by ``request_completed`` events.

    A telemetry sink scoped to one scheduler's events: the per-app
    service counters the Scheduling Broker reads (the ``a_ij`` of §5),
    per-app completed-bytes meters for throughput figures, and the
    latency window the SFQ(D2) controller drains.
    """

    def __init__(self, name: str, bus: Optional[TelemetryBus] = None):
        self.name = name
        # Bytes of I/O serviced per application (the a_ij of §5).
        self.service_by_app: dict[str, float] = defaultdict(float)
        # Completed-bytes meters per app, for throughput figures.
        self.meter_by_app: dict[str, RateMeter] = {}
        # Device latencies (dispatch -> completion) in the current control
        # window, split by op; consumed by the SFQ(D2) controller.
        self.window_read_latencies: list[float] = []
        self.window_write_latencies: list[float] = []
        self.total_requests = 0
        self.total_bytes = 0.0
        # Last-seen weight per app (requests carry the weight in their tag).
        self.weight_by_app: dict[str, float] = {}
        if bus is not None:
            bus.subscribe(REQUEST_COMPLETED, self._on_completed, source=name)

    def _on_completed(self, ev: RequestCompleted) -> None:
        app = ev.app_id
        self.service_by_app[app] += ev.nbytes
        self.weight_by_app[app] = ev.weight
        meter = self.meter_by_app.get(app)
        if meter is None:
            meter = self.meter_by_app[app] = RateMeter(f"{self.name}:{app}")
        meter.add(ev.t, ev.nbytes)
        if ev.op == "read":
            self.window_read_latencies.append(ev.latency)
        else:
            self.window_write_latencies.append(ev.latency)
        self.total_requests += 1
        self.total_bytes += ev.nbytes

    def drain_window(self) -> tuple[list[float], list[float]]:
        """Return and reset the (reads, writes) latency window."""
        reads, self.window_read_latencies = self.window_read_latencies, []
        writes, self.window_write_latencies = self.window_write_latencies, []
        return reads, writes


class IOScheduler:
    """Base class: submit tagged requests, dispatch them to the device.

    Subclasses override :meth:`_enqueue` (and whatever dispatch machinery
    they need) and call :meth:`_dispatch_to_device` to start servicing a
    request.  The base class publishes the request life-cycle events and
    exposes the per-app service counters the Scheduling Broker reads.

    Class attributes double as the registry capability declaration:

    * ``algorithm`` — canonical policy name (defining it in a subclass
      body registers the class; leave it inherited to stay unregistered);
    * ``aliases`` — alternative spec names resolving to this policy;
    * ``manages_classes`` — I/O classes the scheduler can manage; the
      interposition layer falls back to native for the rest;
    * ``supports_coordination`` — implements ``add_start_delay`` (§5);
    * ``required_params`` — :class:`PolicySpec` fields/params that must
      be present to construct this scheduler.
    """

    #: human-readable algorithm name, overridden by subclasses
    algorithm = "abstract"
    aliases: tuple[str, ...] = ()
    manages_classes: frozenset[IOClass] = frozenset(IOClass)
    supports_coordination: bool = False
    required_params: tuple[str, ...] = ()

    def __init_subclass__(cls, register: bool = True, **kwargs):
        super().__init_subclass__(**kwargs)
        if register and "algorithm" in cls.__dict__ and cls.algorithm:
            register_scheduler(cls)

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        self.sim = sim
        self.device = device
        self.name = name or f"{self.algorithm}@{device.name}"
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self.stats = SchedulerStats(self.name, bus=self.telemetry)
        self.outstanding = 0
        self._completion_hooks: list[Callable[[IORequest, IOCompletion], None]] = []
        self._submit_hooks: list[Callable[[IORequest], None]] = []

    # ------------------------------------------------------------- registry
    @classmethod
    def from_spec(
        cls,
        sim: Simulator,
        device: StorageDevice,
        spec: "PolicySpec",
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ) -> "IOScheduler":
        """Construct from a :class:`PolicySpec` (registry factory hook).

        The default forwards ``spec.params`` as keyword arguments, which
        is all a third-party scheduler needs; built-ins with dedicated
        spec fields (depth, controller, throttle rates) override this.
        """
        return cls(sim, device, name=name, telemetry=telemetry, **dict(spec.params))

    # ------------------------------------------------------------------ api
    def submit(self, req: IORequest) -> Event:
        """Accept a tagged request; returns its completion event.

        A request whose tag's cancel scope is already cancelled (its
        task died while the issuing stream was mid-flight) is refused
        here: failed with :class:`RequestCancelled` without touching
        the queue.  Otherwise the request is registered with the scope
        and enters the ``QUEUED`` lifecycle state.

        Submit hooks run *before* the request is enqueued: enqueueing
        may dispatch and even complete the request synchronously (the
        native passthrough does), and hooks must observe the submission
        first.
        """
        scope = req.tag.scope
        if scope is not None:
            if scope.cancelled:
                req.mark_cancelled(self.sim.now)
                self._publish_span(req, "cancelled")
                req.completion.fail(RequestCancelled(
                    f"{req.app_id} {req.op} refused at {self.name}: "
                    f"scope {scope.name or '?'} cancelled"
                ))
                return req.completion
            scope.register(req)
        for hook in self._submit_hooks:
            hook(req)
        telemetry = self.telemetry
        if telemetry.publishes(REQUEST_SUBMITTED):
            telemetry.publish(RequestSubmitted(
                t=self.sim.now, source=self.name, app_id=req.app_id,
                op=req.op, nbytes=req.nbytes, io_class=req.io_class.value,
                queued=self.queued,
            ))
        req.mark_queued(self.sim.now, self)
        self._enqueue(req)
        return req.completion

    def cancel(self, req: IORequest) -> None:
        """Withdraw a still-queued request (first-class cancellation).

        Removes it from the queue with the scheduler's accounting kept
        consistent (:meth:`_remove`), marks it ``CANCELLED``, and fails
        its completion with :class:`RequestCancelled`.  Only legal in
        the ``QUEUED`` state — a dispatched request is at the device
        and runs to completion.
        """
        if req.state is not RequestState.QUEUED:
            raise LifecycleError(
                f"cannot cancel {req!r}: not queued (state "
                f"{req.state.value})"
            )
        if req._sched is not self:
            raise LifecycleError(
                f"cannot cancel {req!r}: queued at "
                f"{getattr(req._sched, 'name', None)!r}, not {self.name!r}"
            )
        self._remove(req)
        req.mark_cancelled(self.sim.now)
        self._publish_span(req, "cancelled")
        req.completion.fail(RequestCancelled(
            f"{req.app_id} {req.op} cancelled while queued at {self.name}"
        ))

    def add_submit_hook(self, hook: Callable[[IORequest], None]) -> None:
        self._submit_hooks.append(hook)

    def add_completion_hook(
        self, hook: Callable[[IORequest, IOCompletion], None]
    ) -> None:
        self._completion_hooks.append(hook)

    @property
    def queued(self) -> int:
        """Requests accepted but not yet dispatched (0 for passthrough)."""
        return 0

    # ------------------------------------------------------- subclass hooks
    def _enqueue(self, req: IORequest) -> None:
        raise NotImplementedError

    def _remove(self, req: IORequest) -> None:
        """Withdraw a queued request from this scheduler's queue,
        keeping its accounting (tags, buckets) consistent.  Schedulers
        that can hold requests queued must override this; the native
        passthrough never queues, so cancellation never reaches it."""
        raise LifecycleError(
            f"{self.name} ({self.algorithm}) cannot remove queued requests"
        )

    def _on_complete(self, req: IORequest, done: IOCompletion) -> None:
        """Called after accounting; subclasses trigger further dispatch."""

    # ------------------------------------------------------------ plumbing
    def _publish_span(self, req: IORequest, state: str) -> None:
        telemetry = self.telemetry
        if telemetry.publishes(SPAN):
            telemetry.publish(Span(
                t=self.sim.now, source=self.name, app_id=req.app_id,
                op=req.op, nbytes=req.nbytes, io_class=req.io_class.value,
                state=state, queue_wait=req.queue_wait,
                service=req.service_time,
            ))

    def _dispatch_to_device(self, req: IORequest) -> None:
        now = self.sim.now
        req.mark_dispatched(now)
        self.outstanding += 1
        telemetry = self.telemetry
        if telemetry.publishes(REQUEST_DISPATCHED):
            telemetry.publish(RequestDispatched(
                t=now, source=self.name, app_id=req.app_id,
                op=req.op, nbytes=req.nbytes, io_class=req.io_class.value,
                wait=now - req.submit_time,
            ))
        dev_ev = self.device.submit(req.op, req.nbytes)
        dev_ev.callbacks.append(lambda ev, r=req: self._on_device_event(r, ev))

    def _on_device_event(self, req: IORequest, ev: Event) -> None:
        exc = ev.exception
        if exc is None:
            self._complete(req, ev.value)
        else:
            self._fail(req, exc)

    def _fail(self, req: IORequest, exc: BaseException) -> None:
        """A device I/O failed (injected fault): free the slot so the
        scheduler keeps dispatching, and pass the failure to the issuer."""
        self.outstanding -= 1
        req.mark_failed(self.sim.now)
        self._publish_span(req, "failed")
        # Subclasses' _on_complete hooks only pump their dispatch loops
        # and ignore the completion payload, so None is safe here.
        self._on_complete(req, None)
        req.completion.fail(exc)

    def _complete(self, req: IORequest, done: IOCompletion) -> None:
        self.outstanding -= 1
        req.mark_completed(self.sim.now)
        # Always published: this event *is* the accounting (SchedulerStats
        # subscribes scoped, so it runs before any wildcard sink).
        self.telemetry.publish(RequestCompleted(
            t=self.sim.now, source=self.name, app_id=req.app_id,
            op=req.op, nbytes=req.nbytes, io_class=req.io_class.value,
            latency=done.latency, weight=req.weight,
        ))
        self._publish_span(req, "completed")
        for hook in self._completion_hooks:
            hook(req, done)
        self._on_complete(req, done)
        req.completion.succeed(done)


class NativeScheduler(IOScheduler):
    """No I/O management: requests hit the device as soon as they arrive.

    This is the paper's "Native Hadoop" configuration — the device's
    work-conserving processor sharing is the only arbiter, so an
    aggressive application freely steals bandwidth (§2.3).
    """

    algorithm = "native"

    def _enqueue(self, req: IORequest) -> None:
        self._dispatch_to_device(req)
