"""Deprecated location — tags live in :mod:`repro.dataplane.tags`.

The dataplane refactor moved :class:`IOClass`/:class:`IOTag` down into
:mod:`repro.dataplane` (they are the first stop of the submission
path).  This module re-exports them so existing imports keep working.
"""

from repro.dataplane.tags import IOClass, IOTag

__all__ = ["IOClass", "IOTag"]
