"""Scheduling Broker and DSFQ total-service coordination (§5).

Every local scheduler periodically sends the broker its *local I/O
service distribution* — the cumulative bytes ``a_ij`` it has serviced
for each application ``i``.  The broker maintains the totals
``A_i = Σ_j a_ij`` and replies with them.  The local scheduler then
applies the DSFQ (Wang & Merchant, FAST'07) total-service rule: the
start tag of an application's next request is delayed by the amount of
service the application received *elsewhere* since the last update,
scaled by its weight.

The broker is centralized but lightweight: it only aggregates vectors,
and in the real prototype the exchange is piggybacked on the YARN
heartbeats.  We model the message sizes for the overhead study (§7.7).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Optional

from repro.simcore import Simulator
from repro.telemetry import (
    BROKER_OUTAGE,
    BROKER_SYNC,
    BrokerOutage,
    BrokerSync,
    TelemetryBus,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.sfq import SFQDScheduler

__all__ = ["BrokerClient", "SchedulingBroker"]

# Tag arithmetic is in MB of cost, matching repro.core.sfq._COST_UNIT.
from repro.core.sfq import _COST_UNIT

#: wire-size estimate per (app id, service amount) vector entry, bytes
_ENTRY_BYTES = 24


class SchedulingBroker:
    """Aggregates local service vectors into the global distribution.

    State: one number per (client, app) and a running total per app —
    bounded by (#schedulers × #apps), as the paper argues (§5).
    """

    def __init__(self, sim: Simulator, telemetry: Optional[TelemetryBus] = None):
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self._client_vectors: dict[str, dict[str, float]] = defaultdict(dict)
        # Totals are kept per scope: each I/O service type (persistent /
        # intermediate / network) is proportionally shared on its own —
        # IBIS provides "proportional sharing of all the important I/O
        # services offered by a datanode" (§4), so an application's heavy
        # use of one service must not tax its share of another.
        self._totals: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self.messages = 0
        self.message_bytes = 0
        #: outage flag: while True every report raises BrokerUnavailable
        self.down = False
        # Per-client report epoch: a client that lived through an outage
        # (or a node recovery) bumps its epoch, telling the broker its
        # cumulative vector restarted and must be rebased, not compared
        # against the pre-outage baseline (which would trip the
        # monotonicity check below).
        self._epochs: dict[str, int] = {}

    def set_down(self, down: bool) -> None:
        """Enter/leave an outage window (driven by the fault injector)."""
        if down == self.down:
            return
        self.down = down
        if self.telemetry.publishes(BROKER_OUTAGE):
            self.telemetry.publish(BrokerOutage(
                t=self.sim.now, source="broker", down=down,
            ))

    @property
    def totals(self) -> dict[str, float]:
        """Cluster-wide total service per app, summed over scopes."""
        out: dict[str, float] = defaultdict(float)
        for scoped in self._totals.values():
            for app, amount in scoped.items():
                out[app] += amount
        return dict(out)

    def report(
        self,
        client_id: str,
        service_vector: dict[str, float],
        scope: str = "",
        epoch: int = 0,
    ) -> dict[str, float]:
        """One coordination round-trip: absorb ``a_ij``, reply with ``A_i``
        (within ``scope``) for the applications this scheduler serves.

        A report with a higher ``epoch`` than the client's last *rebases*
        its baseline: the first post-restart vector contributes no totals
        delta (service lost in the gap is forfeited — safe, because the
        DSFQ delay is purely additive), and deltas resume from there.
        """
        if self.down:
            from repro.faults.errors import BrokerUnavailable

            raise BrokerUnavailable("scheduling broker is down")
        known = self._epochs.setdefault(client_id, epoch)
        if epoch < known:
            raise ValueError(
                f"stale epoch {epoch} from {client_id!r} (have {known})"
            )
        rebase = epoch > known
        if rebase:
            self._epochs[client_id] = epoch
        mine = self._client_vectors[client_id]
        totals = self._totals[scope]
        for app, cumulative in service_vector.items():
            if rebase:
                mine[app] = cumulative
                continue
            if cumulative < mine.get(app, 0.0):
                raise ValueError(
                    f"service report for {app!r} from {client_id!r} went backwards"
                )
            totals[app] += cumulative - mine.get(app, 0.0)
            mine[app] = cumulative
        self.messages += 1
        nbytes = 2 * _ENTRY_BYTES * max(1, len(service_vector))
        self.message_bytes += nbytes
        if self.telemetry.publishes(BROKER_SYNC):
            self.telemetry.publish(BrokerSync(
                t=self.sim.now, source=client_id, scope=scope,
                apps=len(service_vector), message_bytes=nbytes,
            ))
        return {app: totals[app] for app in service_vector}


class BrokerClient:
    """Periodic coordination loop attached to one local SFQ(D*) scheduler.

    Runs only while its scheduler has work (so simulations can drain),
    re-armed by a submit hook.  Each tick it reports the scheduler's
    cumulative per-app service and converts the growth of *other-node*
    service into DSFQ start-tag delays.
    """

    def __init__(
        self,
        sim: Simulator,
        broker: SchedulingBroker,
        scheduler: "SFQDScheduler",
        client_id: str,
        period: float = 1.0,
        scope: str = "",
    ):
        if period <= 0:
            raise ValueError("coordination period must be positive")
        self.sim = sim
        self.broker = broker
        self.scheduler = scheduler
        self.client_id = client_id
        self.period = period
        self.scope = scope
        self._last_other: dict[str, float] = {}
        self._tick_scheduled = False
        #: report epoch, bumped by :meth:`restart` after an outage/crash
        self.epoch = 0
        #: coordination rounds skipped because the broker was down
        self.rounds_skipped = 0
        scheduler.add_submit_hook(self._on_submit)

    def _on_submit(self, _req) -> None:
        self._ensure_tick()

    def _ensure_tick(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.call_in(self.period, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        # Exception-safe: a failed sync must not kill the coordination
        # loop — re-arm first, and treat a down broker as a skipped round
        # (the scheduler degrades to local-only SFQ(D2) until it's back).
        try:
            self.sync()
        except Exception as exc:
            from repro.faults.errors import BrokerUnavailable

            if not isinstance(exc, BrokerUnavailable):
                raise
            self.rounds_skipped += 1
        finally:
            if self.scheduler.outstanding > 0 or self.scheduler.queued > 0:
                self._ensure_tick()

    def restart(self) -> None:
        """Reconcile after this client's node recovered from a crash:
        bump the report epoch so the broker rebases instead of raising,
        and re-arm the coordination loop if there is work."""
        self.epoch += 1
        if self.scheduler.outstanding > 0 or self.scheduler.queued > 0:
            self._ensure_tick()

    def sync(self) -> None:
        """One explicit coordination exchange (also used by tests)."""
        stats = self.scheduler.stats
        vector = dict(stats.service_by_app)
        if not vector:
            return
        totals = self.broker.report(
            self.client_id, vector, scope=self.scope, epoch=self.epoch
        )
        for app, total in totals.items():
            other = total - vector.get(app, 0.0)
            grown = other - self._last_other.get(app, 0.0)
            self._last_other[app] = other
            if grown > 0.0:
                weight = stats.weight_by_app.get(app, 1.0)
                self.scheduler.add_start_delay(
                    app, (grown / _COST_UNIT) / weight
                )
