"""The cgroups blkio baseline (§6, §7.4).

YARN extended with cgroups can manage I/O in two modes:

* **weight** (``blkio.weight``) — CFQ-style proportional sharing of the
  local disk among container groups.  Modelled as weighted fair queuing
  with the device's natural concurrency (a fixed, generous depth): work
  conserving, shares by weight.
* **throttle** (``blkio.throttle.*_bps_device``) — an absolute
  bytes-per-second cap per group, *non*-work-conserving.

Crucially, in either mode cgroups sees **only the I/Os a container
issues directly to the local file system** — the intermediate
spill/merge traffic.  HDFS I/Os are serviced by the shared Data Node
daemon and shuffle reads by the shared Node Manager servlet, which run
outside any application container, so cgroups cannot differentiate
them.  Both schedulers therefore declare ``manages_classes =
{INTERMEDIATE}`` — the restriction is a registry capability, and the
interposition layer falls back to native for the other classes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.base import IOScheduler
from repro.core.request import IORequest
from repro.core.sfq import SFQDScheduler
from repro.core.tags import IOClass
from repro.simcore import Simulator
from repro.storage import IOCompletion, StorageDevice
from repro.telemetry import TelemetryBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import PolicySpec

__all__ = ["CgroupsThrottleScheduler", "CgroupsWeightScheduler"]


class CgroupsWeightScheduler(SFQDScheduler):
    """``blkio.weight`` proportional sharing.

    CFQ time-slices the disk between groups by weight but keeps the
    device's native queue depth; we model it as SFQ with a fixed,
    generous depth.  Weights are taken from the request tags (the
    experiment uses 100:1 in favour of TPC-H).
    """

    algorithm = "cgroups-weight"
    aliases = ()
    manages_classes = frozenset({IOClass.INTERMEDIATE})
    supports_coordination = False  # no DSFQ hooks in the kernel baseline

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        super().__init__(sim, device, depth=8, name=name, telemetry=telemetry)

    @classmethod
    def from_spec(cls, sim, device, spec: "PolicySpec", name: str = "",
                  telemetry: Optional[TelemetryBus] = None) -> "CgroupsWeightScheduler":
        return cls(sim, device, name=name, telemetry=telemetry)


class CgroupsThrottleScheduler(IOScheduler):
    """``blkio.throttle`` absolute rate caps.

    Applications listed in ``rates_bps`` are paced to their cap with a
    token-bucket; everything else passes straight through.  Throttling
    is non-work-conserving: spare bandwidth is *not* given to a capped
    application, which is why the paper finds it hurts the competing
    TeraSort by up to 16% (§7.4).
    """

    algorithm = "cgroups-throttle"
    manages_classes = frozenset({IOClass.INTERMEDIATE})
    required_params = ("throttle_rates",)

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        rates_bps: dict[str, float],
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        for app, rate in rates_bps.items():
            if rate <= 0:
                raise ValueError(f"throttle rate for {app!r} must be positive")
        super().__init__(sim, device, name, telemetry=telemetry)
        self.rates_bps = dict(rates_bps)
        self._queues: dict[str, deque[IORequest]] = {}
        # Time at which each capped app's bucket next allows a dispatch.
        self._next_allowed: dict[str, float] = {}
        self._release_scheduled: set[str] = set()

    @classmethod
    def from_spec(cls, sim, device, spec: "PolicySpec", name: str = "",
                  telemetry: Optional[TelemetryBus] = None) -> "CgroupsThrottleScheduler":
        return cls(sim, device, dict(spec.throttle_rates), name=name,
                   telemetry=telemetry)

    def rate_for(self, app_id: str) -> float | None:
        """Cap for an application: exact app-id match, or match on the
        job name (application ids are ``appNN-<jobname>``, minted at
        submission — experiments configure caps by job name)."""
        rate = self.rates_bps.get(app_id)
        if rate is not None:
            return rate
        _, _, job_name = app_id.partition("-")
        return self.rates_bps.get(job_name) if job_name else None

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _enqueue(self, req: IORequest) -> None:
        app = req.app_id
        if self.rate_for(app) is None:
            self._dispatch_to_device(req)
            return
        if app not in self._queues:
            self._queues[app] = deque()
            self._next_allowed[app] = 0.0
        self._queues[app].append(req)
        self._pump(app)

    def _remove(self, req: IORequest) -> None:
        # The token bucket is only charged at release, so withdrawing a
        # queued request needs no bucket rollback.
        queue = self._queues.get(req.app_id)
        if queue is None or req not in queue:
            raise ValueError(f"{req!r} is not queued at {self.name}")
        queue.remove(req)

    def _pump(self, app: str) -> None:
        if app in self._release_scheduled:
            return
        queue = self._queues[app]
        if not queue:
            return
        now = self.sim.now
        allowed = self._next_allowed[app]
        if allowed <= now:
            self._release(app)
        else:
            self._release_scheduled.add(app)
            self.sim.call_at(allowed, lambda: self._released(app))

    def _released(self, app: str) -> None:
        self._release_scheduled.discard(app)
        if self._queues[app]:
            self._release(app)

    def _release(self, app: str) -> None:
        req = self._queues[app].popleft()
        now = self.sim.now
        # Pay for this request's bytes: the next dispatch waits until the
        # bucket has re-accumulated them at the capped rate.
        self._next_allowed[app] = max(self._next_allowed[app], now) + (
            req.nbytes / self.rate_for(app)
        )
        self._dispatch_to_device(req)
        self._pump(app)

    def _on_complete(self, req: IORequest, done: IOCompletion) -> None:
        pass  # pacing, not completion, drives dispatch
