"""Non-work-conserving reservation scheduler (§9's extreme point).

The discussion section observes that IBIS can trade resource
utilization for isolation by choice of scheduler, and that "in the
extreme case, a non-work-conserving scheduler can provide strict
performance isolation but may severely underutilize the storage."
This module implements that extreme point so the trade-off can be
measured (see ``benchmarks/bench_ablation_reservation.py``).

Each application is reserved a fixed fraction of the device's nominal
bandwidth, enforced with a token bucket *even when the device is
otherwise idle*.  Unreserved applications share a configurable leftover
fraction through plain SFQ tags.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.base import IOScheduler
from repro.core.request import IORequest
from repro.simcore import Simulator
from repro.storage import IOCompletion, StorageDevice
from repro.telemetry import TelemetryBus

__all__ = ["ReservationScheduler"]


class ReservationScheduler(IOScheduler):
    """Strict bandwidth reservations per application.

    ``reservations`` maps app id (or job name, as in the cgroups
    throttle baseline) to a fraction of ``nominal_rate``; fractions must
    sum to at most 1.  Applications without a reservation share the
    ``leftover`` fraction (equal split, paced the same way).  Dispatch
    is depth-limited like SFQ(D) so latency stays bounded.
    """

    algorithm = "reservation"
    required_params = ("reservations", "nominal_rate")

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        reservations: dict[str, float],
        nominal_rate: float,
        depth: int = 4,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        if nominal_rate <= 0:
            raise ValueError("nominal_rate must be positive")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        total = 0.0
        for app, frac in reservations.items():
            if not (0.0 < frac <= 1.0):
                raise ValueError(f"reservation for {app!r} must be in (0, 1]")
            total += frac
        if total > 1.0 + 1e-9:
            raise ValueError(f"reservations sum to {total:.3f} > 1")
        super().__init__(sim, device, name, telemetry=telemetry)
        self.reservations = dict(reservations)
        self.nominal_rate = float(nominal_rate)
        self.leftover = max(0.0, 1.0 - total)
        self.depth = depth
        self._queues: dict[str, deque[IORequest]] = {}
        self._next_allowed: dict[str, float] = {}
        self._armed: set[str] = set()

    def rate_for(self, app_id: str) -> float:
        """The paced byte rate of an application's reservation."""
        frac = self.reservations.get(app_id)
        if frac is None:
            _, _, job_name = app_id.partition("-")
            frac = self.reservations.get(job_name)
        if frac is None:
            # Unreserved apps split the leftover equally (at least one
            # share so they are never fully starved of pacing budget).
            n_unreserved = max(
                1,
                len([a for a in self._queues
                     if self.reservations.get(a) is None]),
            )
            frac = self.leftover / n_unreserved if self.leftover > 0 else 0.01
        return frac * self.nominal_rate

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _enqueue(self, req: IORequest) -> None:
        app = req.app_id
        if app not in self._queues:
            self._queues[app] = deque()
            self._next_allowed[app] = 0.0
        self._queues[app].append(req)
        self._pump(app)

    def _remove(self, req: IORequest) -> None:
        # Token buckets are only charged at release: no rollback needed.
        queue = self._queues.get(req.app_id)
        if queue is None or req not in queue:
            raise ValueError(f"{req!r} is not queued at {self.name}")
        queue.remove(req)

    def _on_complete(self, req: IORequest, done: IOCompletion) -> None:
        # A freed depth slot may admit any app whose bucket allows it.
        for app in list(self._queues):
            self._pump(app)

    def _pump(self, app: str) -> None:
        if app in self._armed:
            return
        queue = self._queues.get(app)
        if not queue or self.outstanding >= self.depth:
            return
        now = self.sim.now
        allowed = self._next_allowed[app]
        if allowed <= now:
            self._release(app)
        else:
            self._armed.add(app)
            self.sim.call_at(allowed, lambda: self._disarm(app))

    def _disarm(self, app: str) -> None:
        self._armed.discard(app)
        self._pump(app)

    def _release(self, app: str) -> None:
        req = self._queues[app].popleft()
        now = self.sim.now
        self._next_allowed[app] = max(self._next_allowed[app], now) + (
            req.nbytes / self.rate_for(app)
        )
        self._dispatch_to_device(req)
        # another request of this app may already be admissible
        self._pump(app)
