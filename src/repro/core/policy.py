"""Policy selection as data: :class:`PolicySpec` and :class:`NodePolicy`.

A :class:`PolicySpec` names one registered scheduler implementation and
its parameters; it is validated against the policy registry
(:mod:`repro.core.registry`) at construction and serializes to/from a
canonical dict/JSON form — the same form experiment configs and cache
keys derive from.

A :class:`NodePolicy` maps each interposed I/O class (§3) to its own
spec, which is the point of interposition: *different* schedulers can
manage the persistent, intermediate and shuffle paths of one node.
``NodePolicy.uniform`` preserves the old one-policy-everywhere API, and
everything accepting a policy coerces a bare ``PolicySpec`` through it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.core import registry

# Importing the built-in scheduler modules registers them, so a
# PolicySpec can be validated wherever it is constructed.
import repro.core.base          # noqa: F401  (native)
import repro.core.sfq           # noqa: F401  (sfq(d))
import repro.core.sfqd2         # noqa: F401  (sfq(d2))
import repro.core.cgroups       # noqa: F401  (cgroups-weight/-throttle)
import repro.core.reservation   # noqa: F401  (reservation)
from repro.core.sfqd2 import DepthController
from repro.core.tags import IOClass

__all__ = ["NodePolicy", "PolicySpec", "canonical_json", "policy_from_dict"]


def canonical_json(payload: Any) -> str:
    """One canonical JSON text per logical value (sorted keys, no spaces).

    Experiment configs, trace metadata and the calibration-cache key all
    serialize through this, so equal configurations hash equally.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class PolicySpec:
    """Which I/O scheduler runs at an interposition point.

    ``kind`` may be a canonical algorithm name or a registered alias
    (``sfqd`` → ``sfq(d)``); it is normalized to the canonical name.
    ``coordinated`` enables the Scheduling Broker (§5); the registry
    rejects it for schedulers that do not declare coordination support.
    ``params`` carries extra keyword arguments for schedulers without
    dedicated fields (third-party registrations).
    """

    kind: str = "native"
    depth: int = 4                                 # SFQ(D)
    controller: Optional[DepthController] = None   # SFQ(D2)
    throttle_rates: dict[str, float] = field(default_factory=dict)
    coordinated: bool = False
    sync_period: float = 1.0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        info = registry.get_policy(self.kind)  # raises on unknown kinds
        object.__setattr__(self, "kind", info.name)
        if self.sync_period <= 0:
            raise ValueError("sync_period must be positive")
        for param in info.required_params:
            if param == "controller":
                if self.controller is None:
                    raise ValueError(f"{info.name} policy requires a DepthController")
            elif param == "throttle_rates":
                if not self.throttle_rates:
                    raise ValueError(f"{info.name} policy requires throttle_rates")
            elif param not in self.params:
                raise ValueError(
                    f"{info.name} policy requires parameter {param!r}"
                )
        if self.coordinated and not info.supports_coordination:
            raise ValueError(
                f"coordination is not supported by the {info.name!r} policy"
            )

    # ------------------------------------------------------------ registry
    @property
    def info(self) -> registry.PolicyInfo:
        """This spec's registry entry (capabilities, factory)."""
        return registry.get_policy(self.kind)

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form (JSON-ready; omits unset optionals)."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "depth": self.depth,
            "coordinated": self.coordinated,
            "sync_period": self.sync_period,
        }
        if self.controller is not None:
            out["controller"] = dataclasses.asdict(self.controller)
        if self.throttle_rates:
            out["throttle_rates"] = dict(self.throttle_rates)
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        payload = dict(data)
        controller = payload.pop("controller", None)
        if controller is not None and not isinstance(controller, DepthController):
            controller = DepthController(**controller)
        return cls(controller=controller, **payload)

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "PolicySpec":
        return cls.from_dict(json.loads(text))

    # Convenience constructors used throughout the experiments -------------
    @classmethod
    def native(cls) -> "PolicySpec":
        return cls(kind="native")

    @classmethod
    def sfqd(cls, depth: int, coordinated: bool = False) -> "PolicySpec":
        return cls(kind="sfqd", depth=depth, coordinated=coordinated)

    @classmethod
    def sfqd2(
        cls, controller: DepthController, coordinated: bool = False
    ) -> "PolicySpec":
        return cls(kind="sfqd2", controller=controller, coordinated=coordinated)

    @classmethod
    def cgroups_weight(cls) -> "PolicySpec":
        return cls(kind="cgroups-weight")

    @classmethod
    def cgroups_throttle(cls, rates_bps: dict[str, float]) -> "PolicySpec":
        return cls(kind="cgroups-throttle", throttle_rates=dict(rates_bps))


@dataclass(frozen=True)
class NodePolicy:
    """One :class:`PolicySpec` per interposed I/O class.

    The registry's capability model still applies per class: a spec
    whose scheduler does not manage a class falls back to native there
    (that is how cgroups ends up INTERMEDIATE-only, §6).
    """

    persistent: PolicySpec
    intermediate: PolicySpec
    network: PolicySpec

    @classmethod
    def uniform(cls, spec: PolicySpec) -> "NodePolicy":
        """The classic configuration: one policy at every point."""
        return cls(persistent=spec, intermediate=spec, network=spec)

    @classmethod
    def coerce(cls, policy: Union[PolicySpec, "NodePolicy"]) -> "NodePolicy":
        if isinstance(policy, cls):
            return policy
        if isinstance(policy, PolicySpec):
            return cls.uniform(policy)
        raise TypeError(
            f"expected PolicySpec or NodePolicy, got {type(policy).__name__}"
        )

    def spec_for(self, io_class: IOClass) -> PolicySpec:
        if io_class is IOClass.PERSISTENT:
            return self.persistent
        if io_class is IOClass.INTERMEDIATE:
            return self.intermediate
        return self.network

    def specs(self) -> dict[IOClass, PolicySpec]:
        return {c: self.spec_for(c) for c in IOClass}

    @property
    def coordinated(self) -> bool:
        """True if any class's policy asks for broker coordination."""
        return any(spec.coordinated for spec in self.specs().values())

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {c.value: self.spec_for(c).to_dict() for c in IOClass}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodePolicy":
        return cls(**{
            c.value: PolicySpec.from_dict(data[c.value]) for c in IOClass
        })

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "NodePolicy":
        return cls.from_dict(json.loads(text))


def policy_from_dict(data: Mapping[str, Any]) -> "PolicySpec | NodePolicy":
    """Parse a declarative policy: either one :class:`PolicySpec` dict
    (``{"kind": ...}``, applied uniformly by the consumer) or a per-class
    :class:`NodePolicy` dict keyed by the three I/O classes."""
    if "kind" in data:
        return PolicySpec.from_dict(data)
    class_keys = {c.value for c in IOClass}
    if set(data) == class_keys:
        return NodePolicy.from_dict(data)
    raise ValueError(
        f"policy dict must carry 'kind' (uniform PolicySpec) or exactly "
        f"the per-class keys {sorted(class_keys)}; got {sorted(data)}"
    )
