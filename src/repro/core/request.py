"""The unit of scheduling: a tagged I/O request."""

from __future__ import annotations

from typing import Optional

from repro.core.tags import IOClass, IOTag
from repro.simcore import Event, Simulator

__all__ = ["IORequest"]


class IORequest:
    """One tagged I/O, queued at an interposed scheduler.

    ``completion`` succeeds (with the device's ``IOCompletion``) once the
    device has serviced the request.  ``start_tag``/``finish_tag`` are
    filled in by SFQ-family schedulers.
    """

    __slots__ = (
        "tag",
        "op",
        "nbytes",
        "io_class",
        "submit_time",
        "dispatch_time",
        "completion",
        "start_tag",
        "finish_tag",
    )

    def __init__(
        self,
        sim: Simulator,
        tag: IOTag,
        op: str,
        nbytes: int,
        io_class: IOClass = IOClass.PERSISTENT,
    ):
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self.tag = tag
        self.op = op
        self.nbytes = int(nbytes)
        self.io_class = io_class
        self.submit_time: float = sim.now
        self.dispatch_time: Optional[float] = None
        self.completion: Event = Event(sim, name=f"ioreq:{tag.app_id}:{op}")
        self.start_tag: float = 0.0
        self.finish_tag: float = 0.0

    @property
    def app_id(self) -> str:
        return self.tag.app_id

    @property
    def weight(self) -> float:
        return self.tag.weight

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<IORequest {self.tag.app_id} {self.op} {self.nbytes}B "
            f"{self.io_class.value}>"
        )
