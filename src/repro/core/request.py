"""Deprecated location — requests live in :mod:`repro.dataplane.request`.

The dataplane refactor moved :class:`IORequest` (now carrying the full
lifecycle state machine) down into :mod:`repro.dataplane`.  This module
re-exports it so existing imports keep working.
"""

from repro.dataplane.request import IORequest

__all__ = ["IORequest"]
