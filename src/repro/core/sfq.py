"""SFQ and SFQ(D): start-time fair queuing with bounded dispatch depth (§4).

SFQ (Goyal et al.) assigns each request a *start tag*
``S = max(v, F_prev(flow) + delay)`` and a *finish tag*
``F = S + cost / weight``; the virtual time ``v`` advances to the start
tag of the most recently dispatched request; dispatch order is by
smallest start tag.  SFQ(D) (Jin et al., SIGMETRICS'04) lets up to ``D``
requests be outstanding at the storage concurrently.

The ``delay`` term is 0 for plain SFQ(D); the Scheduling Broker adds
DSFQ total-service delays through :meth:`add_start_delay` (§5).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.core.base import IOScheduler
from repro.core.request import IORequest
from repro.simcore import Simulator
from repro.storage import IOCompletion, StorageDevice
from repro.telemetry import TelemetryBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import PolicySpec

__all__ = ["SFQDScheduler"]

# Tag arithmetic uses MB so float precision is comfortable even for
# terabyte-scale experiments (tags stay < 1e9 for realistic weights).
_COST_UNIT = float(1 << 20)


class SFQDScheduler(IOScheduler):
    """Proportional-share scheduler with a static dispatch depth ``D``."""

    algorithm = "sfq(d)"
    aliases = ("sfqd",)
    supports_coordination = True

    def __init__(
        self,
        sim: Simulator,
        device: StorageDevice,
        depth: int = 4,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
    ):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        super().__init__(sim, device, name, telemetry=telemetry)
        self._depth = float(depth)
        self.virtual_time = 0.0
        self._finish_tags: dict[str, float] = {}
        self._pending_delay: dict[str, float] = {}
        self._queue: list[tuple[float, int, IORequest]] = []
        self._seq = 0

    @classmethod
    def from_spec(cls, sim, device, spec: "PolicySpec", name: str = "",
                  telemetry: Optional[TelemetryBus] = None) -> "SFQDScheduler":
        return cls(sim, device, depth=spec.depth, name=name, telemetry=telemetry)

    # ------------------------------------------------------------------ api
    @property
    def depth(self) -> int:
        """Current dispatch depth D (integral part used for admission)."""
        return max(1, int(self._depth))

    @property
    def queued(self) -> int:
        return len(self._queue)

    def add_start_delay(self, app_id: str, delay_cost: float) -> None:
        """DSFQ coordination (§5): delay the app's next request's start
        tag by ``delay_cost`` (already divided by the app's weight —
        i.e. in virtual-time units)."""
        if delay_cost < 0:
            raise ValueError("delay must be non-negative")
        self._pending_delay[app_id] = self._pending_delay.get(app_id, 0.0) + delay_cost

    # -------------------------------------------------------------- internals
    def _enqueue(self, req: IORequest) -> None:
        app = req.app_id
        delay = self._pending_delay.pop(app, 0.0)
        prev_finish = self._finish_tags.get(app, 0.0)
        start = max(self.virtual_time, prev_finish + delay)
        cost = (req.nbytes / _COST_UNIT) / req.weight
        finish = start + cost
        req.start_tag = start
        req.finish_tag = finish
        req.prev_finish = prev_finish  # for cancellation tag rollback
        self._finish_tags[app] = finish
        self._seq += 1
        heapq.heappush(self._queue, (start, self._seq, req))
        self._try_dispatch()

    def _remove(self, req: IORequest) -> None:
        """Withdraw a queued request (cancellation).

        The heap is rebuilt without the request — O(queue) on the rare
        cancel path, zero cost on the hot path.  The app's finish-tag
        chain is rolled back when the cancelled request is its tail, so
        an identical subsequent workload receives identical tags.
        Virtual time and ``outstanding`` are untouched: both advance
        only on dispatch, which never happened.  A DSFQ start delay
        consumed at enqueue is *not* restored — the broker re-derives
        delays from total service each sync period (§5).
        """
        n = len(self._queue)
        self._queue = [e for e in self._queue if e[2] is not req]
        if len(self._queue) == n:
            raise ValueError(f"{req!r} is not queued at {self.name}")
        heapq.heapify(self._queue)
        app = req.app_id
        if self._finish_tags.get(app) == req.finish_tag:
            self._finish_tags[app] = req.prev_finish

    def _try_dispatch(self) -> None:
        while self._queue and self.outstanding < self.depth:
            start, _seq, req = heapq.heappop(self._queue)
            self.virtual_time = max(self.virtual_time, start)
            self._dispatch_to_device(req)

    def _on_complete(self, req: IORequest, done: IOCompletion) -> None:
        self._try_dispatch()
