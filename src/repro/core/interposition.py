"""Per-datanode I/O interposition (§3).

Each worker node hosts two devices (§7.1: HDFS data and intermediate
data on separate disks) and three interposed scheduling points, one
:class:`~repro.dataplane.IOPath` per I/O class:

* ``PERSISTENT``  → scheduler in the Data Node, in front of the HDFS disk;
* ``INTERMEDIATE`` → scheduler in the local I/O path, in front of the
  temporary-data disk;
* ``NETWORK``     → scheduler in the Node Manager's shuffle servlet,
  also in front of the temporary-data disk (map outputs live there).

A :class:`~repro.core.policy.NodePolicy` selects which registered
scheduler implementation backs each point; a bare
:class:`~repro.core.policy.PolicySpec` is accepted as shorthand for the
uniform one-policy-everywhere configuration.  Construction goes through
:meth:`IOPath.build` and the policy registry
(:mod:`repro.core.registry`): a scheduler whose declared
``manages_classes`` does not cover a class falls back to native at that
point — which is exactly how cgroups ends up managing only the
INTERMEDIATE class (§6).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import ClusterConfig
from repro.core.base import IOScheduler
from repro.core.broker import BrokerClient, SchedulingBroker
from repro.core.policy import NodePolicy, PolicySpec
from repro.dataplane import IOClass, IOPath, IORequest
from repro.simcore import Event, Simulator
from repro.storage import StorageDevice
from repro.telemetry import TelemetryBus

__all__ = ["DataNodeIO", "NodePolicy", "PolicySpec"]


class DataNodeIO:
    """The storage stack of one worker node: three interposed I/O paths.

    All schedulers, both devices and any broker client publish onto one
    shared :class:`TelemetryBus` (``self.telemetry``) — pass the
    cluster's bus in to observe every node on a single stream.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: ClusterConfig,
        policy: Union[PolicySpec, NodePolicy],
        broker: Optional[SchedulingBroker] = None,
        telemetry: Optional[TelemetryBus] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.policy = NodePolicy.coerce(policy)
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()
        self.hdfs_device = StorageDevice(
            sim, config.storage, name=f"{node_id}:hdfs", telemetry=self.telemetry
        )
        self.tmp_device = StorageDevice(
            sim, config.storage, name=f"{node_id}:tmp", telemetry=self.telemetry
        )
        self.paths: dict[IOClass, IOPath] = {}
        for io_class, device in (
            (IOClass.PERSISTENT, self.hdfs_device),
            (IOClass.INTERMEDIATE, self.tmp_device),
            (IOClass.NETWORK, self.tmp_device),
        ):
            self.paths[io_class] = IOPath.build(
                sim,
                node_id,
                io_class,
                self.policy.spec_for(io_class),
                device,
                broker=broker,
                telemetry=self.telemetry,
            )
        self.schedulers: dict[IOClass, IOScheduler] = {
            io_class: path.scheduler for io_class, path in self.paths.items()
        }
        self.broker_clients: list[BrokerClient] = [
            path.broker_client
            for path in self.paths.values()
            if path.broker_client is not None
        ]

    # ------------------------------------------------------------------ api
    def submit(self, req: IORequest) -> Event:
        """Route a tagged request to the interposed path of its class."""
        return self.paths[req.io_class].submit(req)

    def path(self, io_class: IOClass) -> IOPath:
        return self.paths[io_class]

    def scheduler(self, io_class: IOClass) -> IOScheduler:
        return self.paths[io_class].scheduler
