"""Per-datanode I/O interposition (§3).

Each worker node hosts two devices (§7.1: HDFS data and intermediate
data on separate disks) and three interposed scheduling points:

* ``PERSISTENT``  → scheduler in the Data Node, in front of the HDFS disk;
* ``INTERMEDIATE`` → scheduler in the local I/O path, in front of the
  temporary-data disk;
* ``NETWORK``     → scheduler in the Node Manager's shuffle servlet,
  also in front of the temporary-data disk (map outputs live there).

:class:`PolicySpec` selects which scheduler implementation backs each
point — native FIFO, SFQ(D), SFQ(D2), or the cgroups baseline (which,
faithfully to §6, can only be attached to the INTERMEDIATE class; the
other two classes fall back to native).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import ClusterConfig
from repro.core.base import IOScheduler, NativeScheduler
from repro.core.broker import BrokerClient, SchedulingBroker
from repro.core.cgroups import CgroupsThrottleScheduler, CgroupsWeightScheduler
from repro.core.request import IORequest
from repro.core.sfq import SFQDScheduler
from repro.core.sfqd2 import DepthController, SFQD2Scheduler
from repro.core.tags import IOClass
from repro.simcore import Event, Simulator
from repro.storage import StorageDevice

__all__ = ["DataNodeIO", "PolicySpec"]

_KINDS = ("native", "sfqd", "sfqd2", "cgroups-weight", "cgroups-throttle")


@dataclass(frozen=True)
class PolicySpec:
    """Which I/O scheduler runs at every interposition point.

    ``coordinated`` enables the Scheduling Broker (§5); it only applies
    to the SFQ-family schedulers.
    """

    kind: str = "native"
    depth: int = 4                                 # SFQ(D)
    controller: Optional[DepthController] = None   # SFQ(D2)
    throttle_rates: dict[str, float] = field(default_factory=dict)
    coordinated: bool = False
    sync_period: float = 1.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown policy kind {self.kind!r}; one of {_KINDS}")
        if self.kind == "sfqd2" and self.controller is None:
            raise ValueError("sfqd2 policy requires a DepthController")
        if self.kind == "cgroups-throttle" and not self.throttle_rates:
            raise ValueError("cgroups-throttle policy requires throttle_rates")
        if self.coordinated and self.kind not in ("sfqd", "sfqd2"):
            raise ValueError("coordination applies only to SFQ-family policies")

    # Convenience constructors used throughout the experiments -------------
    @classmethod
    def native(cls) -> "PolicySpec":
        return cls(kind="native")

    @classmethod
    def sfqd(cls, depth: int, coordinated: bool = False) -> "PolicySpec":
        return cls(kind="sfqd", depth=depth, coordinated=coordinated)

    @classmethod
    def sfqd2(
        cls, controller: DepthController, coordinated: bool = False
    ) -> "PolicySpec":
        return cls(kind="sfqd2", controller=controller, coordinated=coordinated)

    @classmethod
    def cgroups_weight(cls) -> "PolicySpec":
        return cls(kind="cgroups-weight")

    @classmethod
    def cgroups_throttle(cls, rates_bps: dict[str, float]) -> "PolicySpec":
        return cls(kind="cgroups-throttle", throttle_rates=dict(rates_bps))


class DataNodeIO:
    """The storage stack of one worker node, with interposed schedulers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: ClusterConfig,
        policy: PolicySpec,
        broker: Optional[SchedulingBroker] = None,
        record_latency: bool = False,
    ):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.policy = policy
        self.hdfs_device = StorageDevice(
            sim, config.storage, name=f"{node_id}:hdfs", record_latency=record_latency
        )
        self.tmp_device = StorageDevice(
            sim, config.storage, name=f"{node_id}:tmp", record_latency=record_latency
        )
        self.schedulers: dict[IOClass, IOScheduler] = {}
        self.broker_clients: list[BrokerClient] = []
        for io_class, device in (
            (IOClass.PERSISTENT, self.hdfs_device),
            (IOClass.INTERMEDIATE, self.tmp_device),
            (IOClass.NETWORK, self.tmp_device),
        ):
            sched = self._build_scheduler(io_class, device)
            self.schedulers[io_class] = sched
            if (
                policy.coordinated
                and broker is not None
                and isinstance(sched, SFQDScheduler)
            ):
                self.broker_clients.append(
                    BrokerClient(
                        sim,
                        broker,
                        sched,
                        client_id=f"{node_id}:{io_class.value}",
                        period=policy.sync_period,
                        scope=io_class.value,
                    )
                )

    def _build_scheduler(self, io_class: IOClass, device: StorageDevice) -> IOScheduler:
        policy = self.policy
        name = f"{self.node_id}:{io_class.value}"
        # cgroups can only see container-issued local I/Os (§6): the other
        # classes run unmanaged exactly as on native YARN.
        if policy.kind.startswith("cgroups") and io_class is not IOClass.INTERMEDIATE:
            return NativeScheduler(self.sim, device, name=name)
        if policy.kind == "native":
            return NativeScheduler(self.sim, device, name=name)
        if policy.kind == "sfqd":
            return SFQDScheduler(self.sim, device, depth=policy.depth, name=name)
        if policy.kind == "sfqd2":
            assert policy.controller is not None
            return SFQD2Scheduler(self.sim, device, policy.controller, name=name)
        if policy.kind == "cgroups-weight":
            return CgroupsWeightScheduler(self.sim, device, name=name)
        if policy.kind == "cgroups-throttle":
            return CgroupsThrottleScheduler(
                self.sim, device, policy.throttle_rates, name=name
            )
        raise AssertionError(f"unhandled policy kind {policy.kind!r}")

    # ------------------------------------------------------------------ api
    def submit(self, req: IORequest) -> Event:
        """Route a tagged request to the interposed scheduler of its class."""
        return self.schedulers[req.io_class].submit(req)

    def scheduler(self, io_class: IOClass) -> IOScheduler:
        return self.schedulers[io_class]
