"""Grid sweeps over declarative scenarios.

A sweep is a dotted key path into the scenario's dict form plus a list
of values — ``cluster.seed=1,2,3`` or
``workload.jobs.0.io_weight=1,8,32``.  Several sweeps combine as a
cartesian grid; each grid point is a full :class:`Scenario` (re-parsed,
so every variant is validated and hashed independently) whose name is
suffixed with its coordinates.  The variants are independent runs, so
the experiment CLI fans them out over the PR-1 worker pool.
"""

from __future__ import annotations

import copy
import itertools
import json
from typing import Any, Mapping, Sequence

from repro.scenario.spec import Scenario

__all__ = ["apply_override", "expand_grid", "parse_sweep", "sweep_scenarios"]


def parse_sweep(text: str) -> tuple[str, list[Any]]:
    """Parse ``path=v1,v2,...``; values are JSON literals when they
    parse (numbers, booleans, null) and strings otherwise."""
    path, sep, raw = text.partition("=")
    if not sep or not path or not raw:
        raise ValueError(
            f"sweep must look like key.path=v1,v2,... — got {text!r}"
        )

    def parse_value(token: str) -> Any:
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            return token

    return path, [parse_value(tok) for tok in raw.split(",")]


def apply_override(data: Mapping[str, Any], path: str, value: Any) -> dict:
    """A deep copy of ``data`` with ``path`` (dots descend into dicts,
    integers index lists) replaced by ``value``."""
    out = copy.deepcopy(dict(data))
    keys = path.split(".")
    node: Any = out
    for i, key in enumerate(keys[:-1]):
        node = _descend(node, key, path)
        if not isinstance(node, (dict, list)):
            raise ValueError(
                f"sweep path {path!r}: {'.'.join(keys[: i + 1])!r} is a leaf"
            )
    leaf = keys[-1]
    if isinstance(node, list):
        node[_index(leaf, node, path)] = value
    else:
        if leaf not in node:
            # Same rule as descent: a typo'd leaf must not silently add
            # a field the spec parser would then reject (or ignore).
            raise KeyError(
                f"sweep path {path!r}: no key {leaf!r} (have {sorted(node)})"
            )
        node[leaf] = value
    return out


def _descend(node: Any, key: str, path: str) -> Any:
    if isinstance(node, list):
        return node[_index(key, node, path)]
    if isinstance(node, dict):
        if key not in node:
            # Creating intermediate dicts would silently typo-fork the
            # spec; unknown keys must name something already present.
            raise KeyError(
                f"sweep path {path!r}: no key {key!r} "
                f"(have {sorted(node)})"
            )
        return node[key]
    raise ValueError(f"sweep path {path!r}: cannot descend into {key!r}")


def _index(key: str, node: Sequence, path: str) -> int:
    try:
        idx = int(key)
    except ValueError:
        raise ValueError(
            f"sweep path {path!r}: list index expected, got {key!r}"
        ) from None
    if not (-len(node) <= idx < len(node)):
        raise IndexError(
            f"sweep path {path!r}: index {idx} out of range "
            f"(length {len(node)})"
        )
    return idx


def expand_grid(
    data: Mapping[str, Any], sweeps: Sequence[tuple[str, Sequence[Any]]]
) -> list[tuple[dict[str, Any], dict]]:
    """All grid points: (assignment, scenario dict) per combination, in
    row-major order of the given sweeps.  No sweeps: the base alone."""
    if not sweeps:
        return [({}, copy.deepcopy(dict(data)))]
    out = []
    axes = [[(path, v) for v in values] for path, values in sweeps]
    for combo in itertools.product(*axes):
        variant = dict(data)
        for path, value in combo:
            variant = apply_override(variant, path, value)
        out.append((dict(combo), variant))
    return out


def sweep_scenarios(
    data: Mapping[str, Any], sweeps: Sequence[tuple[str, Sequence[Any]]]
) -> list[Scenario]:
    """Expand a scenario dict into named, validated grid variants."""
    scenarios = []
    for assignment, variant in expand_grid(data, sweeps):
        scenario = Scenario.from_dict(variant)
        if assignment:
            suffix = ",".join(f"{k}={v}" for k, v in assignment.items())
            scenario = scenario.renamed(f"{scenario.name}[{suffix}]")
        scenarios.append(scenario)
    return scenarios
