"""Materialise and run a :class:`~repro.scenario.spec.Scenario`.

:class:`ScenarioRunner` turns the declarative spec into a live
:class:`~repro.cluster.BigDataCluster` — preloads, submissions, faults,
telemetry sinks — runs it to the spec's end condition, and emits a
:class:`RunManifest`: the scenario's content hash, the seed, elapsed
simulated/wall time, one metric row per job, and any requested
summaries and series.  Everything in the manifest except ``wall_time``
and ``trace_path`` is deterministic, captured by ``metrics_hash`` — the
same scenario (hence seed) always reproduces it bit for bit.

:func:`run_scenario` is the module-level, picklable entry point the
execution core (:mod:`repro.execution`) dispatches to worker
processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.cluster import BigDataCluster
from repro.config import MB
from repro.core import canonical_json
from repro.dataplane import SpanRecorder
from repro.hive import build_query, run_query
from repro.hive.engine import QueryRun
from repro.mapreduce import Job
from repro.scenario.spec import JobEntry, Scenario
from repro.telemetry import (
    DEPTH_CHANGED,
    REPLICA_FAILOVER,
    TASK_RETRY,
    CounterSink,
    JsonLinesTraceSink,
    TimeSeriesSink,
)
from repro.workloads import build_app, facebook2009_trace

__all__ = ["RunManifest", "ScenarioRunner", "run_scenario"]

#: A submitted entry's runtime handle: one job, a Hive query run, or
#: the expanded jobs of a trace replay.
Handle = Union[Job, QueryRun, list]


@dataclass
class RunManifest:
    """Everything needed to audit (and reproduce) one scenario run."""

    scenario: str
    scenario_hash: str
    seed: int
    scale: float
    storage: str
    sim_time: float
    wall_time: float
    rows: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    series: dict[str, tuple[list[float], list[float]]] = field(
        default_factory=dict
    )
    trace_path: Optional[str] = None

    # ------------------------------------------------------------- access
    def job_rows(self, entry: str) -> list[dict[str, Any]]:
        """All rows of one workload entry (trace entries have many)."""
        return [r for r in self.rows if r["entry"] == entry]

    def job_row(self, entry: str) -> dict[str, Any]:
        """The single row of one entry; raises if absent or ambiguous."""
        rows = self.job_rows(entry)
        if len(rows) != 1:
            raise KeyError(
                f"expected exactly one row for entry {entry!r}, got "
                f"{len(rows)}; entries: {sorted({r['entry'] for r in self.rows})}"
            )
        return rows[0]

    def runtime(self, entry: str) -> float:
        """One entry's runtime; raises if it did not finish."""
        rt = self.job_row(entry)["runtime"]
        if rt is None:
            raise RuntimeError(f"entry {entry!r} did not finish")
        return rt

    # ------------------------------------------------------ serialization
    def metrics_hash(self) -> str:
        """Digest of the deterministic payload (rows, summary, counters,
        series) — excludes wall time and trace paths by construction."""
        payload = canonical_json(
            {
                "rows": self.rows,
                "summary": self.summary,
                "counters": self.counters,
                "series": self.series,
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "scenario_hash": self.scenario_hash,
            "metrics_hash": self.metrics_hash(),
            "seed": self.seed,
            "scale": self.scale,
            "storage": self.storage,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "rows": self.rows,
            "summary": self.summary,
            "counters": self.counters,
            "series": self.series,
            "trace_path": self.trace_path,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict`: ``from_dict(to_dict(m))`` has the
        same ``metrics_hash`` as ``m`` (canonical JSON treats the tuples
        rebuilt here and the lists JSON produced identically).

        Unknown fields raise a :class:`ValueError` naming them and the
        fields this build knows — a manifest written by a newer schema
        fails loudly instead of with a bare ``TypeError``.
        """
        payload = dict(data)
        payload.pop("metrics_hash", None)  # derived, recomputed on demand
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise ValueError(
                f"unknown RunManifest fields {sorted(extra)}; this build "
                f"knows {sorted(known)}"
            )
        payload["series"] = {
            k: (list(t), list(v))
            for k, (t, v) in dict(payload.get("series", {})).items()
        }
        return cls(**payload)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))


class ScenarioRunner:
    """Runs scenarios; one instance may run many (it keeps no state
    between runs beyond the optional trace target).

    ``trace_path`` may also be an open text stream (the scenario
    service streams a run's telemetry through one); only real paths are
    recorded in the manifest.
    """

    def __init__(self, trace_path: "pathlib.Path | str | Any | None" = None):
        self.trace_path = trace_path

    # ----------------------------------------------------------- plumbing
    def materialise(self, scenario: Scenario) -> BigDataCluster:
        """Build the cluster alone (no preloads/submissions) — exposed
        for tests and tools that want the wired testbed."""
        return BigDataCluster(
            scenario.cluster, scenario.policy, faults=scenario.faults
        )

    def _submit(
        self, cluster: BigDataCluster, entry: JobEntry
    ) -> Handle:
        config = cluster.config
        if entry.app == "hive":
            params = dict(entry.params)
            query = build_query(config, **params)
            return run_query(
                cluster,
                query,
                io_weight=entry.io_weight,
                cpu_weight=entry.cpu_weight,
                max_cores=entry.max_cores,
                delay=entry.submit_at,
            )
        if entry.app == "swim":
            trace = facebook2009_trace(config, **entry.params)
            jobs = []
            for sj in trace:
                cluster.preload_input(sj.spec.input_path, sj.input_bytes)
                jobs.append(
                    cluster.submit(
                        sj.spec,
                        io_weight=entry.io_weight,
                        cpu_weight=entry.cpu_weight,
                        max_cores=entry.max_cores,
                        delay=entry.submit_at + sj.arrival,
                    )
                )
            return jobs
        params = dict(entry.params)
        if entry.name:
            params.setdefault("name", entry.name)
        spec = build_app(config, entry.app, **params)
        return cluster.submit(
            spec,
            io_weight=entry.io_weight,
            cpu_weight=entry.cpu_weight,
            max_cores=entry.max_cores,
            delay=entry.submit_at,
        )

    @staticmethod
    def _jobs_of(handle: Handle) -> list[Job]:
        if isinstance(handle, Job):
            return [handle]
        if isinstance(handle, QueryRun):
            return handle.stage_jobs
        return list(handle)

    @staticmethod
    def _done_events(handle: Handle):
        if isinstance(handle, (Job, QueryRun)):
            return [handle.done]
        return [j.done for j in handle]

    @staticmethod
    def _window_end(
        scenario: Scenario,
        cluster: BigDataCluster,
        handles: "dict[str, Handle]",
    ) -> float:
        measure = scenario.measure
        if measure.window == "run":
            return cluster.sim.now
        if measure.window == "until_finish":
            handle = handles[measure.until[0]]
            finishes = [
                h.finish_time
                for h in ([handle] if isinstance(handle, (Job, QueryRun))
                          else handle)
                if h.finish_time is not None
            ]
        else:  # min_finish
            finishes = [
                h.finish_time
                for handle in handles.values()
                for h in ([handle] if isinstance(handle, (Job, QueryRun))
                          else handle)
                if h.finish_time is not None
            ]
        if not finishes:
            raise RuntimeError(
                f"scenario {scenario.name!r}: window {measure.window!r} "
                f"needs at least one finished job"
            )
        return min(finishes)

    # ---------------------------------------------------------------- run
    def run(self, scenario: Scenario) -> RunManifest:
        t_wall = time.perf_counter()
        measure = scenario.measure
        cluster = self.materialise(scenario)

        # Sinks must subscribe before any simulated work happens.
        trace = None
        trace_is_path = isinstance(self.trace_path, (str, os.PathLike))
        if self.trace_path is not None:
            target = (pathlib.Path(self.trace_path) if trace_is_path
                      else self.trace_path)
            trace = JsonLinesTraceSink(cluster.telemetry, target)
        fault_sinks = None
        if "fault_counters" in measure.metrics:
            fault_sinks = (
                CounterSink(cluster.telemetry, REPLICA_FAILOVER),
                CounterSink(cluster.telemetry, TASK_RETRY),
            )
        span_recorder = None
        if "latency" in measure.metrics:
            # Subscribing is what switches span publication on: the
            # schedulers only build Span events once someone listens.
            span_recorder = SpanRecorder(cluster.telemetry)
        depth_sinks = None
        if "depth_trace" in measure.metrics:
            source = measure.options.get("depth_source", "dn00:persistent")
            depth_sinks = (
                TimeSeriesSink(
                    cluster.telemetry, DEPTH_CHANGED, source=source,
                    value=lambda ev: ev.depth, name="depth",
                ),
                TimeSeriesSink(
                    cluster.telemetry, DEPTH_CHANGED, source=source,
                    value=lambda ev: ev.latency,
                    when=lambda ev: ev.samples > 0, name="latency",
                ),
            )

        try:
            for preload in scenario.workload.preloads:
                cluster.preload_input(
                    preload.path,
                    preload.nbytes,
                    nodes=list(preload.nodes) or None,
                )
            handles: dict[str, Handle] = {}
            for entry in scenario.workload.jobs:
                handles[entry.key] = self._submit(cluster, entry)

            if measure.horizon > 0:
                cluster.run_for(measure.horizon)
            elif measure.until:
                events = [
                    ev
                    for key in measure.until
                    for ev in self._done_events(handles[key])
                ]
                cluster.run(*events)
            else:
                cluster.run()
        finally:
            if trace is not None:
                trace.close()

        manifest = RunManifest(
            scenario=scenario.name,
            scenario_hash=scenario.content_hash(),
            seed=scenario.cluster.seed,
            scale=scenario.cluster.scale,
            storage=scenario.cluster.storage.name,
            sim_time=cluster.sim.now,
            wall_time=time.perf_counter() - t_wall,
            trace_path=str(self.trace_path) if trace_is_path else None,
        )
        self._collect(scenario, cluster, handles, manifest,
                      fault_sinks=fault_sinks, depth_sinks=depth_sinks,
                      span_recorder=span_recorder)
        return manifest

    # ------------------------------------------------------------ metrics
    def _collect(
        self,
        scenario: Scenario,
        cluster: BigDataCluster,
        handles: "dict[str, Handle]",
        manifest: RunManifest,
        fault_sinks=None,
        depth_sinks=None,
        span_recorder=None,
    ) -> None:
        measure = scenario.measure
        metrics = measure.metrics
        windowed = {"throughput_mbs", "service", "device_series"}
        end = (
            self._window_end(scenario, cluster, handles)
            if windowed & set(metrics)
            else cluster.sim.now
        )

        for entry in scenario.workload.jobs:
            handle = handles[entry.key]
            if isinstance(handle, QueryRun):
                row = {
                    "entry": entry.key,
                    "job": handle.query.name,
                    "app_id": None,
                    "submit": handle.submit_time,
                    "finish": handle.finish_time,
                    "runtime": (
                        handle.runtime
                        if handle.finish_time is not None
                        else None
                    ),
                }
                if "service" in metrics:
                    row["service"] = sum(
                        self._service(cluster, job.app_id, end)
                        for job in handle.stage_jobs
                    )
                manifest.rows.append(row)
                continue
            for job in self._jobs_of(handle):
                row = {
                    "entry": entry.key,
                    "job": job.spec.name,
                    "app_id": job.app_id,
                    "submit": job.submit_time,
                    "finish": job.finish_time,
                    "runtime": (
                        job.finish_time - job.submit_time
                        if job.finish_time is not None
                        else None
                    ),
                }
                if "service" in metrics:
                    row["service"] = self._service(cluster, job.app_id, end)
                manifest.rows.append(row)

        if "throughput_mbs" in metrics:
            manifest.summary["window_end"] = end
            manifest.summary["throughput_mbs"] = (
                cluster.windowed_throughput(0.0, end) / MB if end > 0 else 0.0
            )
        if "total_service" in metrics:
            manifest.summary["total_service"] = cluster.total_service_by_app()
        if "fault_counters" in metrics:
            failovers, retries = fault_sinks
            manifest.counters["failovers"] = failovers.count
            manifest.counters["retries"] = retries.count
            manifest.counters["orphaned"] = cluster.sim.orphaned_faults
            manifest.counters["cancelled"] = cluster.sim.cancelled_collateral
        if "latency" in metrics:
            manifest.summary["latency"] = span_recorder.summary()
        if "scheduler_stats" in metrics:
            manifest.counters["requests"] = sum(
                s.stats.total_requests for s in cluster.schedulers()
            )
            manifest.counters["broker_messages"] = (
                cluster.broker.messages if cluster.broker else 0
            )
            manifest.counters["broker_message_bytes"] = (
                cluster.broker.message_bytes if cluster.broker else 0.0
            )
        if "device_series" in metrics:
            for op in ("read", "write"):
                agg = np.zeros(max(1, int(np.ceil(end)) + 1))
                times = np.arange(len(agg), dtype=float)
                for meter in cluster.device_meters(op):
                    ts = meter.rate_series(bucket=1.0, t_end=end + 1.0)
                    vals = np.asarray(ts.values)
                    agg[: len(vals)] += vals / MB
                manifest.series[op] = (times.tolist(), agg.tolist())
        if "depth_trace" in metrics:
            depth, latency = depth_sinks
            manifest.series["depth"] = (
                list(depth.series.times), list(depth.series.values)
            )
            manifest.series["latency"] = (
                list(latency.series.times), list(latency.series.values)
            )

    @staticmethod
    def _service(cluster: BigDataCluster, app_id: str, end: float) -> float:
        return sum(
            m.window_total(0.0, end)
            for m in cluster.app_throughput_meters(app_id)
        )


def run_scenario(
    scenario: Scenario, trace_path: "pathlib.Path | str | None" = None
) -> RunManifest:
    """Run one scenario — the picklable fan-out worker."""
    return ScenarioRunner(trace_path=trace_path).run(scenario)
