"""Declarative scenarios: one canonical spec for a whole run.

A :class:`Scenario` composes the repo's canonical-JSON pieces — a
:class:`~repro.config.ClusterConfig`, a
:class:`~repro.core.NodePolicy`, an optional
:class:`~repro.faults.FaultPlan` — with the two declarative specs this
module adds:

* :class:`WorkloadSpec` — what runs: input preloads plus an ordered
  list of :class:`JobEntry` submissions (benchmark apps, Hive queries,
  SWIM trace replays) with weights, cores and submit times;
* :class:`MeasurementSpec` — how the run ends (``until`` jobs or a
  fixed ``horizon``) and which metrics the runner collects.

Everything round-trips through canonical JSON (sorted keys, no
whitespace), so a scenario has a stable :meth:`~Scenario.content_hash`:
two specs that mean the same run hash identically regardless of key
order, and a run manifest can name exactly the spec that produced it.

The spec is pure data; materialising and running it is
:class:`~repro.scenario.runner.ScenarioRunner`'s job.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Optional

from repro.config import ClusterConfig
from repro.core import NodePolicy, PolicySpec, canonical_json, policy_from_dict
from repro.faults import FaultPlan
from repro.workloads import APP_BUILDERS

__all__ = [
    "ENTRY_APPS",
    "JobEntry",
    "METRICS",
    "MeasurementSpec",
    "PreloadSpec",
    "Scenario",
    "WorkloadSpec",
    "load_scenario",
]

#: Applications a :class:`JobEntry` may name: the registered benchmark
#: builders plus the two composite kinds the runner expands itself.
ENTRY_APPS = tuple(sorted(APP_BUILDERS)) + ("hive", "swim")

#: Metrics a :class:`MeasurementSpec` may request.
METRICS = (
    "runtime",           # per-job rows: submit/finish/runtime
    "throughput_mbs",    # aggregate storage MB/s over [0, window end)
    "service",           # per-job scheduled bytes over [0, window end)
    "total_service",     # per-app total service (coordination studies)
    "fault_counters",    # replica failovers / task retries / orphans
    "scheduler_stats",   # request counts + broker traffic (Tab. 2)
    "device_series",     # per-second read/write MB/s series (Fig. 2)
    "depth_trace",       # SFQ(D2) depth + latency trace (Fig. 7)
    "latency",           # per-(app, class) queue-wait/service percentiles
)

#: Where a windowed metric's observation window ends.
WINDOWS = ("run", "min_finish", "until_finish")


def _freeze_params(params: Mapping[str, Any]) -> dict[str, Any]:
    # Round-trip through canonical JSON so a params dict can only hold
    # JSON-able values (anything else would break the content hash).
    try:
        return json.loads(canonical_json(dict(params)))
    except TypeError as exc:
        raise ValueError(f"params must be JSON-serialisable: {exc}") from None


def _from_known_fields(cls, data: Mapping[str, Any]):
    known = {f.name for f in fields(cls)}
    extra = set(data) - known
    if extra:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(extra)}")
    return cls(**dict(data))


@dataclass(frozen=True)
class PreloadSpec:
    """One pre-materialised HDFS input file.

    ``nbytes`` is paper-scale (the cluster scales it down internally);
    ``nodes`` restricts placement to a subset of datanodes to induce
    skewed data distribution (Fig. 12), empty meaning all nodes.
    """

    path: str
    nbytes: float
    nodes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("preload needs a path")
        if self.nbytes <= 0:
            raise ValueError(f"preload {self.path!r} needs nbytes > 0")
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"path": self.path, "nbytes": self.nbytes}
        if self.nodes:
            out["nodes"] = list(self.nodes)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PreloadSpec":
        return _from_known_fields(cls, data)


@dataclass(frozen=True)
class JobEntry:
    """One submission: an application, its share, and when it arrives.

    ``app`` names a registered workload builder (``terasort``, ...), a
    Hive query chain (``hive``, with ``params["query"]``) or a SWIM
    trace replay (``swim``, expanded to its sampled jobs).  ``params``
    are extra builder keyword arguments (``input_path``,
    ``input_bytes``, ``output_bytes``, ``n_reduces``, ...).

    ``name`` is the entry's key within the scenario — referenced by
    ``MeasurementSpec.until`` and reported in manifest rows; it defaults
    to ``app`` and doubles as the job name for the benchmark builders.
    """

    app: str
    name: str = ""
    io_weight: float = 1.0
    cpu_weight: float = 1.0
    max_cores: Optional[int] = None
    submit_at: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.app not in ENTRY_APPS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {ENTRY_APPS}"
            )
        if self.io_weight <= 0 or self.cpu_weight <= 0:
            raise ValueError(f"entry {self.key!r}: weights must be positive")
        if self.max_cores is not None and self.max_cores <= 0:
            raise ValueError(f"entry {self.key!r}: max_cores must be positive")
        if self.submit_at < 0:
            raise ValueError(f"entry {self.key!r}: submit_at must be >= 0")
        if self.app == "hive" and "query" not in self.params:
            raise ValueError("hive entries need params['query']")
        object.__setattr__(self, "params", _freeze_params(self.params))

    @property
    def key(self) -> str:
        """The entry's name within the scenario (rows, ``until`` refs)."""
        return self.name or self.app

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"app": self.app}
        if self.name:
            out["name"] = self.name
        if self.io_weight != 1.0:
            out["io_weight"] = self.io_weight
        if self.cpu_weight != 1.0:
            out["cpu_weight"] = self.cpu_weight
        if self.max_cores is not None:
            out["max_cores"] = self.max_cores
        if self.submit_at:
            out["submit_at"] = self.submit_at
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobEntry":
        return _from_known_fields(cls, data)


@dataclass(frozen=True)
class WorkloadSpec:
    """The run's inputs and submissions, in execution order."""

    jobs: tuple[JobEntry, ...]
    preloads: tuple[PreloadSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(self, "preloads", tuple(self.preloads))
        if not self.jobs:
            raise ValueError("a workload needs at least one job entry")
        keys = [e.key for e in self.jobs]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise ValueError(
                f"job entry names must be unique; duplicated: {sorted(dupes)}"
            )

    def entry(self, key: str) -> JobEntry:
        for e in self.jobs:
            if e.key == key:
                return e
        raise KeyError(
            f"no job entry named {key!r}; have {[e.key for e in self.jobs]}"
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"jobs": [e.to_dict() for e in self.jobs]}
        if self.preloads:
            out["preloads"] = [p.to_dict() for p in self.preloads]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        payload = dict(data)
        jobs = tuple(
            e if isinstance(e, JobEntry) else JobEntry.from_dict(e)
            for e in payload.pop("jobs", ())
        )
        preloads = tuple(
            p if isinstance(p, PreloadSpec) else PreloadSpec.from_dict(p)
            for p in payload.pop("preloads", ())
        )
        if payload:
            raise ValueError(f"unknown WorkloadSpec fields: {sorted(payload)}")
        return cls(jobs=jobs, preloads=preloads)


@dataclass(frozen=True)
class MeasurementSpec:
    """How a run ends and what the manifest reports.

    * ``until`` — run until these entries finish (empty: until every
      submitted job finishes); ``horizon > 0`` instead runs for a fixed
      window of simulated seconds (Fig. 12's service-ratio probe).
    * ``metrics`` — which collectors the runner attaches (see
      :data:`METRICS`).
    * ``window`` — where windowed metrics (throughput, service) stop
      integrating: end of the run, the earliest job finish, or the
      first ``until`` entry's finish.
    * ``options`` — per-metric parameters (e.g. ``depth_source`` for
      the depth trace).
    """

    until: tuple[str, ...] = ()
    horizon: float = 0.0
    metrics: tuple[str, ...] = ("runtime",)
    window: str = "run"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "until", tuple(self.until))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        unknown = set(self.metrics) - set(METRICS)
        if unknown:
            raise ValueError(
                f"unknown metrics {sorted(unknown)}; expected among {METRICS}"
            )
        if self.window not in WINDOWS:
            raise ValueError(
                f"window must be one of {WINDOWS}, got {self.window!r}"
            )
        if self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.horizon > 0 and self.until:
            raise ValueError("horizon and until are mutually exclusive")
        if self.window == "until_finish" and not self.until:
            raise ValueError("window 'until_finish' needs until entries")
        object.__setattr__(self, "options", _freeze_params(self.options))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"metrics": list(self.metrics)}
        if self.until:
            out["until"] = list(self.until)
        if self.horizon:
            out["horizon"] = self.horizon
        if self.window != "run":
            out["window"] = self.window
        if self.options:
            out["options"] = dict(self.options)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeasurementSpec":
        return _from_known_fields(cls, data)


def _resolve_policy(
    data: "Mapping[str, Any] | PolicySpec | NodePolicy", config: ClusterConfig
) -> NodePolicy:
    """Parse a declarative policy into a concrete :class:`NodePolicy`.

    JSON sugar: a spec whose ``controller`` is the string ``"auto"``
    gets the §4-calibrated :class:`DepthController` for ``config``'s
    storage profile (via the shared calibration cache) — so scenario
    files need not embed calibration constants.  ``to_dict`` always
    emits the resolved controller, so hashes are calibration-explicit.
    """
    if isinstance(data, (PolicySpec, NodePolicy)):
        return NodePolicy.coerce(data)

    def resolve_auto(spec_dict: Mapping[str, Any]) -> dict[str, Any]:
        out = dict(spec_dict)
        if out.get("controller") == "auto":
            from repro.experiments.harness import controller_for

            out["controller"] = controller_for(config)
        return out

    payload = dict(data)
    if "kind" not in payload:
        payload = {k: resolve_auto(v) for k, v in payload.items()}
    else:
        payload = resolve_auto(payload)
    return NodePolicy.coerce(policy_from_dict(payload))


@dataclass(frozen=True)
class Scenario:
    """One runnable experiment, as data.

    ``policy`` accepts a bare :class:`PolicySpec` and stores it as the
    uniform :class:`NodePolicy`; ``faults`` is optional.  The canonical
    dict/JSON form is fully explicit (cluster defaults expanded,
    controllers resolved), so :meth:`content_hash` identifies the run
    semantics, not the authoring shorthand.
    """

    name: str
    cluster: ClusterConfig
    policy: NodePolicy
    workload: WorkloadSpec
    measure: MeasurementSpec = field(default_factory=MeasurementSpec)
    faults: Optional[FaultPlan] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        object.__setattr__(self, "policy", NodePolicy.coerce(self.policy))
        for key in self.measure.until:
            self.workload.entry(key)  # raises on dangling references

    # ------------------------------------------------------------ utility
    def renamed(self, name: str) -> "Scenario":
        """A copy under another name (sweep variants)."""
        return replace(self, name=name)

    def with_overrides(self, **cluster_fields: Any) -> "Scenario":
        """A copy with cluster fields replaced (CLI --scale etc.)."""
        data = self.cluster.to_dict()
        data.update(cluster_fields)
        return replace(self, cluster=ClusterConfig.from_dict(data))

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "cluster": self.cluster.to_dict(),
            "policy": self.policy.to_dict(),
            "workload": self.workload.to_dict(),
            "measure": self.measure.to_dict(),
        }
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        payload = dict(data)
        known = {f.name for f in fields(cls)}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown Scenario fields: {sorted(extra)}")
        cluster = payload.get("cluster", {})
        if not isinstance(cluster, ClusterConfig):
            cluster = ClusterConfig.from_dict(cluster)
        policy = _resolve_policy(payload.get("policy", {"kind": "native"}),
                                 cluster)
        workload = payload["workload"]
        if not isinstance(workload, WorkloadSpec):
            workload = WorkloadSpec.from_dict(workload)
        measure = payload.get("measure", MeasurementSpec())
        if not isinstance(measure, MeasurementSpec):
            measure = MeasurementSpec.from_dict(measure)
        faults = payload.get("faults")
        if faults is not None and not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_dict(faults)
        return cls(
            name=payload["name"],
            cluster=cluster,
            policy=policy,
            workload=workload,
            measure=measure,
            faults=faults,
            description=payload.get("description", ""),
        )

    def to_json(self) -> str:
        """Canonical JSON: equal scenarios serialise identically."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Stable 16-hex digest of the canonical form — the identity a
        :class:`~repro.scenario.runner.RunManifest` records."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:16]


def load_scenario(
    source: "str | pathlib.Path | Mapping[str, Any]",
) -> Scenario:
    """Load a scenario from a JSON file path, JSON text, or a dict.

    A string is treated as JSON when it starts with ``{`` and as a file
    path otherwise.
    """
    if isinstance(source, pathlib.Path):
        return Scenario.from_json(source.read_text())
    if isinstance(source, str):
        if source.lstrip().startswith("{"):
            return Scenario.from_json(source)
        return Scenario.from_json(pathlib.Path(source).read_text())
    return Scenario.from_dict(source)
