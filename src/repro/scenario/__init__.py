"""Declarative scenario layer: experiments as data.

A :class:`Scenario` bundles the five ingredients every experiment needs
— cluster, policy, workload, optional faults, measurement — into one
canonical-JSON value with a stable content hash;
:class:`ScenarioRunner` materialises and runs it, returning a
:class:`RunManifest` that makes any run reproducible from one file::

    from repro.scenario import Scenario, run_scenario

    scenario = Scenario.from_json(pathlib.Path("fig6.json").read_text())
    manifest = run_scenario(scenario)
    print(manifest.scenario_hash, manifest.runtime("wordcount"))

See DESIGN.md ("Scenario layer") for the spec schema and hash
semantics, and ``examples/scenarios/`` for ready-to-run files.
"""

from repro.scenario.library import (
    single_app,
    wc_alone,
    wc_teragen_isolation,
    weighted_scan_pair,
)
from repro.scenario.runner import RunManifest, ScenarioRunner, run_scenario
from repro.scenario.spec import (
    ENTRY_APPS,
    METRICS,
    JobEntry,
    MeasurementSpec,
    PreloadSpec,
    Scenario,
    WorkloadSpec,
    load_scenario,
)
from repro.scenario.sweep import (
    apply_override,
    expand_grid,
    parse_sweep,
    sweep_scenarios,
)

__all__ = [
    "ENTRY_APPS",
    "JobEntry",
    "METRICS",
    "MeasurementSpec",
    "PreloadSpec",
    "RunManifest",
    "Scenario",
    "ScenarioRunner",
    "WorkloadSpec",
    "apply_override",
    "expand_grid",
    "load_scenario",
    "parse_sweep",
    "run_scenario",
    "single_app",
    "sweep_scenarios",
    "wc_alone",
    "wc_teragen_isolation",
    "weighted_scan_pair",
]
