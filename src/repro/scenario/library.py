"""Reusable scenario builders for the recurring §7 workload shapes.

These return plain :class:`~repro.scenario.spec.Scenario` values — the
figure functions compose them with per-figure policies, the example
JSONs under ``examples/scenarios/`` are their serialised forms, and new
studies can start from them instead of hand-assembling a cluster.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from repro.config import GB, ClusterConfig
from repro.core import NodePolicy, PolicySpec
from repro.faults import FaultPlan
from repro.scenario.spec import (
    JobEntry,
    MeasurementSpec,
    PreloadSpec,
    Scenario,
    WorkloadSpec,
)

__all__ = [
    "single_app",
    "wc_alone",
    "wc_teragen_isolation",
    "weighted_scan_pair",
]

Policy = Union[PolicySpec, NodePolicy]


def _preloads(
    preloads: Iterable["PreloadSpec | tuple"],
) -> tuple[PreloadSpec, ...]:
    return tuple(
        p if isinstance(p, PreloadSpec) else PreloadSpec(*p) for p in preloads
    )


def single_app(
    config: ClusterConfig,
    policy: Policy,
    app: str,
    *,
    name: str,
    params: Optional[dict[str, Any]] = None,
    preloads: Iterable["PreloadSpec | tuple"] = (),
    io_weight: float = 1.0,
    max_cores: Optional[int] = None,
    metrics: Sequence[str] = ("runtime",),
    window: str = "run",
    faults: Optional[FaultPlan] = None,
) -> Scenario:
    """One application on an otherwise idle cluster (Figs. 2, 13)."""
    return Scenario(
        name=name,
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(
                JobEntry(app=app, io_weight=io_weight, max_cores=max_cores,
                         params=dict(params or {})),
            ),
            preloads=_preloads(preloads),
        ),
        measure=MeasurementSpec(metrics=tuple(metrics), window=window),
        faults=faults,
    )


def wc_alone(config: ClusterConfig, *, name: str) -> Scenario:
    """WordCount standalone at full weight, half the cluster's cores —
    the baseline every isolation slowdown is measured against."""
    return single_app(
        config,
        PolicySpec.native(),
        "wordcount",
        name=name,
        params={"input_path": "/in/wiki"},
        preloads=((("/in/wiki"), 50 * GB),),
        max_cores=48,
    )


def wc_teragen_isolation(
    config: ClusterConfig,
    policy: Policy,
    *,
    name: str,
    io_weight: float = 32.0,
    metrics: Sequence[str] = ("runtime", "throughput_mbs"),
    window: str = "until_finish",
    options: Optional[dict[str, Any]] = None,
) -> Scenario:
    """The paper's core isolation study: weighted WordCount sharing the
    cluster with the TeraGen aggressor (Figs. 6, 7, 8, mixed)."""
    return Scenario(
        name=name,
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(
                JobEntry(app="wordcount", io_weight=io_weight, max_cores=48,
                         params={"input_path": "/in/wiki"}),
                JobEntry(app="teragen", io_weight=1.0, max_cores=48),
            ),
            preloads=(PreloadSpec("/in/wiki", 50 * GB),),
        ),
        measure=MeasurementSpec(
            until=("wordcount",),
            metrics=tuple(metrics),
            window=window,
            options=dict(options or {}),
        ),
    )


def weighted_scan_pair(
    config: ClusterConfig,
    policy: Policy,
    *,
    name: str,
    scan_bytes: float,
    hi_weight: float = 32.0,
    lo_weight: float = 1.0,
    max_cores: int = 48,
    faults: Optional[FaultPlan] = None,
    metrics: Sequence[str] = ("runtime", "service", "fault_counters"),
) -> Scenario:
    """Two TeraValidate scans at ``hi_weight : lo_weight``, optionally
    under a fault schedule — the proportional-sharing probe."""
    return Scenario(
        name=name,
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(
                JobEntry(app="teravalidate", name="scan-hi",
                         io_weight=hi_weight, max_cores=max_cores,
                         params={"input_path": "/in/scan-hi"}),
                JobEntry(app="teravalidate", name="scan-lo",
                         io_weight=lo_weight, max_cores=max_cores,
                         params={"input_path": "/in/scan-lo"}),
            ),
            preloads=(
                PreloadSpec("/in/scan-hi", scan_bytes),
                PreloadSpec("/in/scan-lo", scan_bytes),
            ),
        ),
        measure=MeasurementSpec(metrics=tuple(metrics), window="min_finish"),
        faults=faults,
    )
