"""Thin synchronous client for the scenario service.

One connection, request/response::

    from repro.service import ServiceClient

    with ServiceClient("tcp://127.0.0.1:8642") as client:
        sub = client.submit("examples/scenarios/latency_breakdown.json")
        print(client.status(sub)["state"])
        manifest = client.result(sub)          # blocks until done
        print(manifest.metrics_hash())

``submit`` accepts a :class:`~repro.scenario.spec.Scenario`, a spec
dict, JSON text, or a path to a scenario file.  ``result`` returns the
reconstructed :class:`~repro.scenario.runner.RunManifest`; with
``stream=True`` at submit time, telemetry records arrive first and are
handed to ``on_event`` (they follow
:data:`repro.telemetry.trace.TRACE_SCHEMA`).
"""

from __future__ import annotations

import pathlib
import time
from typing import Any, Callable, Mapping, Optional, Union

from repro.scenario.runner import RunManifest
from repro.scenario.spec import Scenario, load_scenario
from repro.service.protocol import ServiceTimeout
from repro.service.transport import ClientChannel, connect

__all__ = ["ServiceBusy", "ServiceClient", "ServiceError", "ServiceTimeout"]


class ServiceError(RuntimeError):
    """The scheduler reported an error (bad request or failed run)."""


class ServiceBusy(ServiceError):
    """The scheduler's bounded submission queue is full.

    Raised by :meth:`ServiceClient.submit` once ``max_busy_wait`` is
    exhausted; carries the scheduler's ``busy`` reply as ``reply``
    (queue depth, bound, suggested retry delay).
    """

    def __init__(self, reply: dict):
        super().__init__(
            f"scheduler queue is full "
            f"({reply.get('queue_depth')}/{reply.get('max_queue')}); "
            f"retry after {reply.get('retry_after')}s"
        )
        self.reply = reply


def _as_scenario_dict(
    scenario: Union[Scenario, Mapping[str, Any], str, pathlib.Path],
) -> dict[str, Any]:
    if isinstance(scenario, Scenario):
        return scenario.to_dict()
    if isinstance(scenario, (str, pathlib.Path)):
        return load_scenario(scenario).to_dict()
    return dict(scenario)


class ServiceClient:
    """One synchronous channel to a running scheduler."""

    def __init__(self, address: str):
        self.address = address
        self._chan: ClientChannel = connect(address)

    # ------------------------------------------------------------ plumbing
    def _request(self, msg: dict, expect: "str | tuple[str, ...]",
                 on_event: Optional[Callable[[dict], None]] = None,
                 timeout: Optional[float] = None) -> dict:
        if isinstance(expect, str):
            expect = (expect,)
        self._chan.send(msg)
        while True:
            reply = self._chan.recv(timeout=timeout)
            op = reply.get("op")
            if op == "error":
                raise ServiceError(reply.get("error", "unknown error"))
            if op == "event":
                if on_event is not None:
                    on_event(reply["record"])
                continue
            if op in expect:
                return reply
            raise ServiceError(f"unexpected reply {op!r} (wanted {expect!r})")

    # ----------------------------------------------------------------- api
    def submit(
        self,
        scenario: Union[Scenario, Mapping[str, Any], str, pathlib.Path],
        stream: bool = False,
        max_busy_wait: Optional[float] = None,
    ) -> str:
        """Submit a scenario; returns its submission id.

        When the scheduler runs with a bounded queue it may answer
        ``busy`` instead of admitting the submission; the client then
        waits the suggested ``retry_after`` and re-offers — the tcp
        "delay" side of the back-pressure contract.  ``max_busy_wait``
        bounds the total time spent re-offering (``None`` = keep
        trying; ``0`` = raise :class:`ServiceBusy` on the first
        rejection).
        """
        msg = {"op": "submit", "scenario": _as_scenario_dict(scenario),
               "stream": bool(stream)}
        waited = 0.0
        while True:
            reply = self._request(msg, expect=("submitted", "busy"))
            if reply["op"] == "submitted":
                return reply["sub_id"]
            retry_after = float(reply.get("retry_after", 0.05))
            if max_busy_wait is not None and waited + retry_after > max_busy_wait:
                raise ServiceBusy(reply)
            time.sleep(retry_after)
            waited += retry_after

    def status(self, sub_id: str) -> dict[str, Any]:
        """Snapshot: state (queued/running/done/failed), cache flags."""
        return self._request({"op": "status", "sub_id": sub_id},
                             expect="status")

    def result(
        self,
        sub_id: str,
        on_event: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
    ) -> RunManifest:
        """Block until the submission finishes; returns its manifest.

        Raises :class:`ServiceError` if the run failed.  ``timeout``
        bounds each wait on the channel, not the whole run; an expiry
        raises :class:`~repro.service.protocol.ServiceTimeout` (and the
        channel should then be closed, not reused).
        """
        reply = self._request({"op": "result", "sub_id": sub_id},
                              expect="result", on_event=on_event,
                              timeout=timeout)
        if reply.get("state") == "failed":
            raise ServiceError(
                f"submission {sub_id} failed: {reply.get('error')}"
            )
        return RunManifest.from_dict(reply["manifest"])

    def run(
        self,
        scenario: Union[Scenario, Mapping[str, Any], str, pathlib.Path],
        stream: bool = False,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> RunManifest:
        """Submit and wait — the one-call round trip."""
        return self.result(self.submit(scenario, stream=stream),
                           on_event=on_event)

    def stats(self) -> dict[str, Any]:
        """The scheduler's counters (submissions, cache hits, batches)."""
        return self._request({"op": "stats"}, expect="stats")

    def close(self) -> None:
        self._chan.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
