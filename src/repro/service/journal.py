"""Durable submission journal: the scheduler's write-ahead log.

An append-only JSON-lines file (by default
``$REPRO_CACHE_DIR/service/journal.jsonl``) recording every
non-streamed submission the scheduler accepted for execution and each
lifecycle transition it went through::

    {"kind": "journal", "schema": 1}
    {"kind": "submit", "sub_id": "sub-000001", "name": ..., "client": ...,
     "content_hash": ..., "cluster": ..., "scenario": "<canonical json>"}
    {"kind": "start",  "sub_id": "sub-000001", "attempt": 1}
    {"kind": "done",   "sub_id": "sub-000001", "cached": false}
    {"kind": "failed", "sub_id": "sub-000001", "error": ..., "attempts": 3}

Every append is flushed and fsynced before the scheduler replies to the
client, so an acknowledged submission survives process SIGKILL *and*
power loss (the journal directory itself is fsynced when the file is
created or compacted — see :mod:`repro.execution.atomic`).

On :meth:`SchedulerService.start` the scheduler calls :meth:`replay`:
entries whose last transition is not terminal (``done``/``failed``) are
re-enqueued — their canonical scenario JSON rides in the ``submit``
record, so recovery needs nothing but the journal and re-runs produce
bit-identical manifests (results already in the
:class:`~repro.execution.store.ResultStore` are answered from it
instead).  A torn final line — the tail a crash mid-append leaves — is
tolerated and dropped; a torn line *followed by intact ones* means real
corruption and raises :class:`JournalError`, as does an unknown schema
version.

The live file is compacted (atomically rewritten with only the header
and any still-incomplete submissions) whenever every journaled
submission has reached a terminal state, so the log stays proportional
to in-flight work, not service lifetime.

Streamed submissions are *not* journaled: their event stream is a side
effect owed to a live connection that a restart cannot resume.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.execution.atomic import atomic_write_text, fsync_dir

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "JournalError",
    "SubmissionJournal",
]

#: Journal line-format version; bump when record shapes change.
JOURNAL_SCHEMA = 1

#: Transitions after which a submission needs no recovery.
_TERMINAL = frozenset({"done", "failed"})


class JournalError(RuntimeError):
    """The journal exists but cannot be trusted by this build."""


@dataclass
class JournalEntry:
    """One journaled submission's replayed state."""

    sub_id: str
    name: str
    content_hash: str
    cluster: str
    scenario_json: str
    client: str = "journal"
    attempts: int = 0
    state: str = "queued"
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def submit_record(self) -> dict[str, Any]:
        return {
            "kind": "submit",
            "sub_id": self.sub_id,
            "name": self.name,
            "client": self.client,
            "content_hash": self.content_hash,
            "cluster": self.cluster,
            "scenario": self.scenario_json,
        }


@dataclass
class JournalReplay:
    """What :meth:`SubmissionJournal.replay` found."""

    entries: list[JournalEntry] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def incomplete(self) -> list[JournalEntry]:
        return [e for e in self.entries if not e.terminal]


class SubmissionJournal:
    """Append-only JSON-lines WAL over one file.

    Not thread-safe by itself — the scheduler serialises all access on
    its event loop; ``replay`` may additionally be called before the
    loop exists (e.g. by offline tooling).
    """

    def __init__(self, path: "pathlib.Path | str"):
        self.path = pathlib.Path(path)
        self._fh = None
        #: sub_ids journaled but not yet terminal (drives compaction).
        self._live: dict[str, JournalEntry] = {}
        self.appended = 0
        self.compactions = 0

    @classmethod
    def default(cls) -> "SubmissionJournal":
        """The journal under the shared cache root
        (``$REPRO_CACHE_DIR/service/journal.jsonl``)."""
        from repro.experiments.harness import calibration_cache_dir

        return cls(calibration_cache_dir() / "service" / "journal.jsonl")

    # ------------------------------------------------------------- replay
    def replay(self) -> JournalReplay:
        """Read the journal back into per-submission states.

        Missing file ⇒ empty replay.  The final line may be torn (a
        crash mid-append); anything torn before that raises
        :class:`JournalError`, as does a wrong schema header.
        """
        out = JournalReplay()
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return out
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}")
        by_id: dict[str, JournalEntry] = {}
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict) or "kind" not in rec:
                    raise ValueError("not a journal record object")
            except ValueError as exc:
                if i == len(lines) - 1:
                    out.torn_tail = True  # crash mid-append: drop the tail
                    break
                raise JournalError(
                    f"journal {self.path} line {i + 1} is corrupt (and not "
                    f"the final line — this is not a torn append): {exc}"
                )
            self._apply(rec, by_id, i)
        out.entries = list(by_id.values())
        self._live = {e.sub_id: e for e in out.entries if not e.terminal}
        return out

    def _apply(self, rec: dict, by_id: dict[str, JournalEntry],
               lineno: int) -> None:
        kind = rec.get("kind")
        if kind == "journal":
            schema = rec.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise JournalError(
                    f"journal {self.path} has schema {schema!r} but this "
                    f"build reads schema {JOURNAL_SCHEMA}; move the file "
                    f"aside to start fresh"
                )
            return
        if kind == "submit":
            by_id[rec["sub_id"]] = JournalEntry(
                sub_id=rec["sub_id"],
                name=rec.get("name", ""),
                content_hash=rec["content_hash"],
                cluster=rec.get("cluster", ""),
                scenario_json=rec["scenario"],
                client=rec.get("client", "journal"),
            )
            return
        entry = by_id.get(rec.get("sub_id", ""))
        if entry is None:
            raise JournalError(
                f"journal {self.path} line {lineno + 1}: {kind!r} for "
                f"unknown submission {rec.get('sub_id')!r}"
            )
        if kind == "start":
            entry.attempts = int(rec.get("attempt", entry.attempts + 1))
            entry.state = "running"
        elif kind == "done":
            entry.state = "done"
        elif kind == "failed":
            entry.state = "failed"
            entry.error = rec.get("error")
        else:
            raise JournalError(
                f"journal {self.path} line {lineno + 1}: unknown record "
                f"kind {kind!r}"
            )

    # ------------------------------------------------------------- append
    def _open(self):
        if self._fh is None:
            fresh = not self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._write({"kind": "journal", "schema": JOURNAL_SCHEMA})
                fsync_dir(self.path.parent)
        return self._fh

    def _write(self, rec: dict[str, Any]) -> None:
        fh = self._open()
        fh.write(json.dumps(rec, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.appended += 1

    def record_submit(self, entry: JournalEntry) -> None:
        self._write(entry.submit_record())
        self._live[entry.sub_id] = entry

    def record_start(self, sub_id: str, attempt: int) -> None:
        self._write({"kind": "start", "sub_id": sub_id, "attempt": attempt})
        live = self._live.get(sub_id)
        if live is not None:
            live.attempts = attempt
            live.state = "running"

    def record_done(self, sub_id: str, cached: bool = False) -> None:
        self._write({"kind": "done", "sub_id": sub_id, "cached": cached})
        self._live.pop(sub_id, None)
        self._maybe_compact()

    def record_failed(self, sub_id: str, error: str, attempts: int) -> None:
        self._write({
            "kind": "failed", "sub_id": sub_id,
            "error": error, "attempts": attempts,
        })
        self._live.pop(sub_id, None)
        self._maybe_compact()

    # ---------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        if not self._live and self.path.exists():
            self.compact()

    def compact(self) -> None:
        """Atomically rewrite the journal to the header plus the still
        incomplete submissions (normally: just the header)."""
        lines = [json.dumps({"kind": "journal", "schema": JOURNAL_SCHEMA},
                            sort_keys=True)]
        for entry in self._live.values():
            lines.append(json.dumps(entry.submit_record(), sort_keys=True))
            if entry.attempts:
                lines.append(json.dumps(
                    {"kind": "start", "sub_id": entry.sub_id,
                     "attempt": entry.attempts},
                    sort_keys=True,
                ))
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self.compactions += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SubmissionJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
