"""Wire protocol of the scenario service.

Messages are JSON objects, one per line (newline-delimited), each with
an ``"op"`` field.  The same dict-shaped messages flow over every
transport — the in-process transport skips the encoding entirely and
passes the dicts through, which is why the codec lives here and not in
the channels.

Client → scheduler ops:

``submit``    ``{"op": "submit", "scenario": {...}, "stream": bool}``
``status``    ``{"op": "status", "sub_id": "..."}``
``result``    ``{"op": "result", "sub_id": "..."}``
``stats``     ``{"op": "stats"}``

Scheduler → client ops:

``submitted`` ``{"op": "submitted", "sub_id", "content_hash", "state"}``
``busy``      ``{"op": "busy", "queue_depth", "max_queue", "retry_after"}``
              (bounded admission: the submission queue is full; the
              client should re-submit after ``retry_after`` seconds —
              :meth:`~repro.service.client.ServiceClient.submit` does
              this automatically)
``status``    ``{"op": "status", "sub_id", "state", "cached",
              "attempts", ...}`` (a retried submission also carries
              ``retries``: the backoff schedule it sat out, and a
              quarantined one ``quarantined: true``)
``event``     ``{"op": "event", "sub_id", "record": {...}}`` (streamed
              before the result when the submission asked for events;
              records follow :data:`repro.telemetry.trace.TRACE_SCHEMA`)
``result``    ``{"op": "result", "sub_id", "state", "manifest": {...}}``
``stats``     ``{"op": "stats", ...counters...}``
``error``     ``{"op": "error", "error": "..."}``
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "STATES",
    "ServiceTimeout",
    "decode",
    "encode",
    "error_message",
]

#: Submission lifecycle, in order.
STATES = ("queued", "running", "done", "failed")


class ServiceTimeout(TimeoutError):
    """A client-side ``recv(timeout=...)`` expired with no reply.

    Raised identically by every transport (the tcp socket timeout and
    the inproc queue timeout both convert to this), so callers handle
    one exception, not one per transport.  The pending reply is
    abandoned — after a timeout the channel may be mid-message and
    should be closed rather than reused.
    """


def encode(msg: dict[str, Any]) -> bytes:
    """One message → one JSON line (the TCP framing)."""
    return (json.dumps(msg, sort_keys=True) + "\n").encode("utf-8")


def decode(line: "bytes | str") -> dict[str, Any]:
    """One JSON line → one message; rejects non-object payloads."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    msg = json.loads(line)
    if not isinstance(msg, dict) or "op" not in msg:
        raise ValueError(f"service message must be an object with an 'op', "
                         f"got {line.strip()!r}")
    return msg


def error_message(exc_or_text: "BaseException | str") -> dict[str, Any]:
    if isinstance(exc_or_text, BaseException):
        exc_or_text = f"{type(exc_or_text).__name__}: {exc_or_text}"
    return {"op": "error", "error": str(exc_or_text)}
