"""Pluggable transports: how clients reach the scheduler.

Two schemes ship (the comm layer is modelled on Dask's ``distributed``,
which the ROADMAP names as the reference shape):

* ``inproc://<name>`` — an in-process pipe pair: no sockets, no ports,
  fully deterministic — what the test suite and the CI smoke job use.
* ``tcp://<host>:<port>`` — JSON-lines over a TCP stream (port ``0``
  picks a free port; the listener reports the bound address).

The server side is async (:class:`ServerChannel`, driven by the
scheduler's event loop); the client side is deliberately synchronous
(:class:`ClientChannel`) so the thin client works from any script,
thread, or REPL without touching asyncio.

``register_transport`` lets third parties add schemes; :func:`listen`
and :func:`connect` dispatch on the address prefix.
"""

from __future__ import annotations

import asyncio
import queue
import socket
from typing import Any, Awaitable, Callable, Optional

from repro.service.protocol import ServiceTimeout, decode, encode

__all__ = [
    "ClientChannel",
    "Listener",
    "ServerChannel",
    "connect",
    "listen",
    "parse_address",
    "register_transport",
]

#: Per-connection server hook: runs until the client hangs up.
Handler = Callable[["ServerChannel"], Awaitable[None]]


def parse_address(address: str) -> tuple[str, str]:
    """``scheme://rest`` → ``(scheme, rest)``."""
    scheme, sep, rest = address.partition("://")
    if not sep or not scheme or not rest:
        raise ValueError(
            f"transport address must look like scheme://location "
            f"(tcp://host:port or inproc://name), got {address!r}"
        )
    return scheme, rest


# --------------------------------------------------------------- interfaces
class ServerChannel:
    """The scheduler's side of one client connection (async)."""

    async def recv(self) -> Optional[dict]:
        """Next message, or ``None`` once the client hung up."""
        raise NotImplementedError

    async def send(self, msg: dict) -> None:
        raise NotImplementedError


class Listener:
    """A live, bound endpoint accepting connections on the serving loop."""

    address: str

    async def close(self) -> None:
        raise NotImplementedError


class ClientChannel:
    """The client's side: blocking send/recv of dict messages.

    ``recv(timeout=...)`` raises
    :class:`~repro.service.protocol.ServiceTimeout` when no reply
    arrives in time — the same exception on every transport.
    """

    def send(self, msg: dict) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ClientChannel":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ------------------------------------------------------------------ inproc
#: name → live in-process listener (one scheduler per name).
_INPROC: dict[str, "_InProcListener"] = {}


class _InProcServerChannel(ServerChannel):
    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._to_server: asyncio.Queue = asyncio.Queue()
        self._to_client: "queue.Queue[dict]" = queue.Queue()

    async def recv(self) -> Optional[dict]:
        return await self._to_server.get()

    async def send(self, msg: dict) -> None:
        self._to_client.put(msg)


class _InProcClientChannel(ClientChannel):
    def __init__(self, server: _InProcServerChannel):
        self._server = server
        self._closed = False

    def send(self, msg: dict) -> None:
        if self._closed:
            raise ConnectionError("channel is closed")
        self._server._loop.call_soon_threadsafe(
            self._server._to_server.put_nowait, msg
        )

    def recv(self, timeout: Optional[float] = None) -> dict:
        try:
            return self._server._to_client.get(timeout=timeout)
        except queue.Empty:
            raise ServiceTimeout(
                f"no reply from the scheduler within {timeout:g}s "
                f"(inproc transport)"
            ) from None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server._loop.call_soon_threadsafe(
            self._server._to_server.put_nowait, None
        )


class _InProcListener(Listener):
    def __init__(self, name: str, handler: Handler,
                 loop: asyncio.AbstractEventLoop):
        self.name = name
        self.address = f"inproc://{name}"
        self.handler = handler
        self.loop = loop

    async def close(self) -> None:
        _INPROC.pop(self.name, None)


async def _listen_inproc(rest: str, handler: Handler) -> Listener:
    if rest in _INPROC:
        raise ValueError(f"inproc://{rest} is already listening")
    listener = _InProcListener(rest, handler, asyncio.get_running_loop())
    _INPROC[rest] = listener
    return listener


def _connect_inproc(rest: str) -> ClientChannel:
    listener = _INPROC.get(rest)
    if listener is None:
        raise ConnectionError(
            f"no scheduler is listening on inproc://{rest} "
            f"(live: {sorted(_INPROC) or 'none'})"
        )
    server = _InProcServerChannel(listener.loop)
    asyncio.run_coroutine_threadsafe(listener.handler(server), listener.loop)
    return _InProcClientChannel(server)


# --------------------------------------------------------------------- tcp
class _TcpServerChannel(ServerChannel):
    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    async def recv(self) -> Optional[dict]:
        line = await self._reader.readline()
        if not line:
            return None
        return decode(line)

    async def send(self, msg: dict) -> None:
        self._writer.write(encode(msg))
        await self._writer.drain()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _TcpListener(Listener):
    def __init__(self, server: asyncio.base_events.Server, address: str):
        self._server = server
        self.address = address

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


async def _listen_tcp(rest: str, handler: Handler) -> Listener:
    host, _, port = rest.rpartition(":")
    if not host or not port:
        raise ValueError(f"tcp address needs host:port, got tcp://{rest}")

    async def on_connect(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        chan = _TcpServerChannel(reader, writer)
        try:
            await handler(chan)
        finally:
            await chan.close()

    server = await asyncio.start_server(on_connect, host, int(port))
    bound = server.sockets[0].getsockname()
    return _TcpListener(server, f"tcp://{bound[0]}:{bound[1]}")


class _TcpClientChannel(ClientChannel):
    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._file = sock.makefile("rwb")

    def send(self, msg: dict) -> None:
        self._file.write(encode(msg))
        self._file.flush()

    def recv(self, timeout: Optional[float] = None) -> dict:
        self._sock.settimeout(timeout)
        try:
            line = self._file.readline()
        except (socket.timeout, TimeoutError):
            raise ServiceTimeout(
                f"no reply from the scheduler within {timeout:g}s "
                f"(tcp transport; the channel may be mid-message — "
                f"close it rather than reusing it)"
            ) from None
        if not line:
            raise ConnectionError("scheduler closed the connection")
        return decode(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def _connect_tcp(rest: str) -> ClientChannel:
    host, _, port = rest.rpartition(":")
    if not host or not port:
        raise ValueError(f"tcp address needs host:port, got tcp://{rest}")
    return _TcpClientChannel(socket.create_connection((host, int(port))))


# ---------------------------------------------------------------- registry
_TRANSPORTS: dict[str, tuple[Callable, Callable]] = {
    "inproc": (_listen_inproc, _connect_inproc),
    "tcp": (_listen_tcp, _connect_tcp),
}


def register_transport(scheme: str, listen_fn: Callable,
                       connect_fn: Callable) -> None:
    """Plug in a new scheme (``listen_fn`` is an async callable
    ``(rest, handler) -> Listener``; ``connect_fn`` is sync
    ``(rest) -> ClientChannel``)."""
    _TRANSPORTS[scheme] = (listen_fn, connect_fn)


async def listen(address: str, handler: Handler) -> Listener:
    """Bind ``address`` on the *running* event loop; ``handler`` runs
    once per client connection."""
    scheme, rest = parse_address(address)
    if scheme not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport scheme {scheme!r}; "
            f"registered: {sorted(_TRANSPORTS)}"
        )
    return await _TRANSPORTS[scheme][0](rest, handler)


def connect(address: str) -> ClientChannel:
    """Open a synchronous client channel to a listening scheduler."""
    scheme, rest = parse_address(address)
    if scheme not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport scheme {scheme!r}; "
            f"registered: {sorted(_TRANSPORTS)}"
        )
    return _TRANSPORTS[scheme][1](rest)
