"""The scenario service: a long-running scheduler over the execution core.

The one-shot CLI and the figures already route every run through
:mod:`repro.execution`; this package puts a server in front of the same
core — an async central scheduler
(:class:`~repro.service.scheduler.SchedulerService`) that accepts
scenario submissions over a pluggable transport
(:mod:`~repro.service.transport`: ``inproc://`` for deterministic
tests, ``tcp://`` for real clients), deduplicates them by content hash,
answers repeats from the persistent result store, batches
identical-cluster scenarios onto warm workers, and streams manifests —
plus, on request, the run's telemetry-bus events — back to the thin
:class:`~repro.service.client.ServiceClient`.

Start one from the CLI (``python -m repro.experiments.run serve``) or
in-process::

    from repro.execution import ResultStore
    from repro.service import SchedulerService, ServiceClient

    service = SchedulerService(store=ResultStore.default()).start("inproc://demo")
    with ServiceClient("inproc://demo") as client:
        manifest = client.run("examples/scenarios/latency_breakdown.json")
    service.stop()

See DESIGN.md ("Execution core & scenario service").
"""

from repro.service.client import (
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
)
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JournalEntry,
    JournalError,
    SubmissionJournal,
)
from repro.service.protocol import STATES, decode, encode
from repro.service.retry import RetryPolicy
from repro.service.scheduler import SchedulerService, SubmissionRecord
from repro.service.transport import (
    ClientChannel,
    Listener,
    ServerChannel,
    connect,
    listen,
    parse_address,
    register_transport,
)
from repro.service.worker import run_batch

__all__ = [
    "JOURNAL_SCHEMA",
    "STATES",
    "ClientChannel",
    "JournalEntry",
    "JournalError",
    "Listener",
    "RetryPolicy",
    "SchedulerService",
    "ServerChannel",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "SubmissionJournal",
    "SubmissionRecord",
    "connect",
    "decode",
    "encode",
    "listen",
    "parse_address",
    "register_transport",
    "run_batch",
]
