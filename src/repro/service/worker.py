"""What a warm worker executes: one batch of scenarios, serially.

The scheduler groups submissions by cluster key
(:func:`repro.execution.submission.cluster_key`) and ships each group
here as one task, so every scenario in the batch shares the worker's
§4 calibration (in-process cache first, disk cache second) — a batch
pays for at most one profiling pass, and pool processes stay warm
across batches.

Scenarios travel as canonical JSON (the same text their content hash
digests) and manifests travel back as dicts, so the task payload is
picklable and transport-agnostic.  A submission that asked for event
streaming runs with an in-memory JSON-lines trace sink; the parsed
records ride back with the manifest.
"""

from __future__ import annotations

import io
import json
from typing import Any, Sequence

from repro.scenario.runner import run_scenario
from repro.scenario.spec import Scenario

__all__ = ["run_batch"]


def run_batch(
    payloads: Sequence[tuple[str, bool]],
) -> list[dict[str, Any]]:
    """Run ``(scenario_json, collect_events)`` pairs on this worker.

    Returns one ``{"manifest", "events", "error"}`` dict per payload,
    in order.  A failing scenario reports its error instead of killing
    the rest of the batch.
    """
    out: list[dict[str, Any]] = []
    for text, collect_events in payloads:
        try:
            scenario = Scenario.from_json(text)
            if collect_events:
                buf = io.StringIO()
                manifest = run_scenario(scenario, trace_path=buf)
                events = [
                    json.loads(line)
                    for line in buf.getvalue().splitlines()
                    if line.strip()
                ]
            else:
                manifest = run_scenario(scenario)
                events = None
            out.append({
                "manifest": manifest.to_dict(),
                "events": events,
                "error": None,
            })
        except Exception as exc:  # per-submission containment
            out.append({
                "manifest": None,
                "events": None,
                "error": f"{type(exc).__name__}: {exc}",
            })
    return out
