"""Execution guards for the scheduler: bounded retries with backoff.

A scenario run can fail two ways, and the scheduler treats them
differently:

* **Scenario errors** — the run itself raised (bad workload, dies at
  simulation time).  The simulator is deterministic, so re-running
  reproduces the failure; these are terminal on the first attempt.
* **Infrastructure failures** — the worker crashed, the pool broke, or
  the batch exceeded its timeout.  These say nothing about the
  scenario, so the scheduler retries them under a :class:`RetryPolicy`:
  exponential backoff with deterministic jitter, then *quarantine*
  (terminal ``failed`` with the last error and the full backoff
  schedule in the submission's status) after ``max_attempts``.

Jitter is deterministic: it is drawn from a :class:`random.Random`
seeded from ``(seed, key, attempt)``, so the same submission retried
after the same failures backs off on the same schedule in every run —
tests and journal replays see identical timelines, while distinct
submissions still de-synchronise (the point of jitter).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a submission, and how long to wait.

    ``max_attempts`` counts executions, not retries: ``3`` means one
    initial attempt plus up to two retries before quarantine.
    ``timeout`` bounds one batch execution in seconds (``None`` — the
    default — never times out).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25
    timeout: "float | None" = None
    seed: int = 20160531

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, key: str) -> float:
        """Seconds to wait before retrying after failed ``attempt``
        (1-based) of the submission identified by ``key``.

        ``base_delay * backoff**(attempt-1)``, capped at ``max_delay``,
        scaled by a deterministic jitter factor in
        ``[1 - jitter, 1 + jitter)`` drawn from the seeded RNG.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.base_delay * self.backoff ** (attempt - 1),
                  self.max_delay)
        if self.jitter == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def schedule(self, key: str) -> list[float]:
        """The full backoff schedule for ``key``: the delay after each
        non-final attempt (what a quarantined submission waited)."""
        return [self.delay(a, key) for a in range(1, self.max_attempts)]
