"""The long-running scenario scheduler.

One asyncio event loop (running on its own thread once
:meth:`SchedulerService.start` returns) owns all submission state; all
transports feed it the dict messages of
:mod:`repro.service.protocol`.  A submission flows::

    submit → dedup (content hash) → result-store lookup → queue
          → batch (cluster key) → warm worker pool → store → client

* **Dedup** — a second live submission of the same scenario content
  hash attaches to the first's record instead of executing again.
* **Store** — with a :class:`~repro.execution.store.ResultStore`, a
  previously-run scenario is answered straight from disk, never queued.
* **Batching** — queued submissions drain in waves; each wave is
  grouped by :func:`~repro.execution.submission.cluster_key`, one
  group per pool task, so identical-cluster scenarios share a warm
  worker (and its calibration) while distinct groups run concurrently.
* **Streaming** — a submission with ``stream`` set runs with telemetry
  capture; its bus records are sent to the client (``event`` messages)
  before the manifest.  Streamed submissions always execute — the
  event stream is a side effect the store cannot replay.

``jobs <= 1`` runs batches on a single warm thread (deterministic, and
what the in-process tests use); ``jobs > 1`` uses a process pool.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.execution import ExecutionCore, ResultStore, cluster_key
from repro.scenario.runner import RunManifest
from repro.scenario.spec import Scenario
from repro.service.protocol import error_message
from repro.service.transport import Listener, ServerChannel, listen

__all__ = ["SchedulerService", "SubmissionRecord"]


@dataclass
class SubmissionRecord:
    """One unit of queued/running/finished work (aliases share it)."""

    sub_id: str
    scenario_name: str
    scenario_json: str
    content_hash: str
    cluster: str
    stream: bool
    state: str = "queued"
    cached: bool = False
    manifest: Optional[dict] = None
    events: Optional[list] = None
    error: Optional[str] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status(self, sub_id: str) -> dict[str, Any]:
        out = {
            "op": "status",
            "sub_id": sub_id,
            "scenario": self.scenario_name,
            "content_hash": self.content_hash,
            "state": self.state,
            "cached": self.cached,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class SchedulerService:
    """Accepts scenario submissions over a transport and executes them
    through the execution core's store + warm worker pool."""

    def __init__(
        self,
        core: Optional[ExecutionCore] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        batching: bool = True,
    ):
        if core is not None and store is not None:
            raise ValueError("pass either a core or a store, not both")
        self.core = core if core is not None else ExecutionCore(store=store)
        self.jobs = max(1, int(jobs))
        self.batching = batching
        self.address: Optional[str] = None

        self._records: dict[str, SubmissionRecord] = {}
        self._by_hash: dict[str, SubmissionRecord] = {}
        self._pending: list[SubmissionRecord] = []
        self._drain_task: Optional[asyncio.Task] = None
        self._next_id = 0
        self.stats: dict[str, int] = {
            "submitted": 0, "cache_hits": 0, "deduplicated": 0,
            "executed": 0, "failed": 0, "batches": 0,
        }

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listener: Optional[Listener] = None
        self._executor = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------ lifecycle
    def start(self, address: str) -> "SchedulerService":
        """Bind ``address`` and serve from a background event loop;
        returns once the listener is live (``self.address`` is then the
        bound address — useful with ``tcp://host:0``)."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._serve_thread, args=(address,),
            name="repro-scheduler", daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def join(self) -> None:
        """Block until the service stops (Ctrl-C in the CLI)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        """Stop serving: close the listener, drop the workers."""
        if self._loop is not None and self._stop_event is not None:
            loop, stop = self._loop, self._stop_event
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _serve_thread(self, address: str) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(address))
        finally:
            loop.close()
            self._loop = None

    async def _serve(self, address: str) -> None:
        self._stop_event = asyncio.Event()
        try:
            self._listener = await listen(address, self._handle_connection)
            self.address = self._listener.address
            if self.jobs > 1:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                # One warm thread: deterministic, monkeypatchable — the
                # in-process test/smoke configuration.
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-worker"
                )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await self._listener.close()
            self._executor.shutdown(wait=False, cancel_futures=True)
            # Wind down open connections and in-flight batch awaits so
            # the loop closes without destroying pending tasks.
            doomed = [t for t in asyncio.all_tasks()
                      if t is not asyncio.current_task()]
            for task in doomed:
                task.cancel()
            await asyncio.gather(*doomed, return_exceptions=True)

    # ------------------------------------------------------------- serving
    async def _handle_connection(self, chan: ServerChannel) -> None:
        while True:
            msg = await chan.recv()
            if msg is None:
                return
            try:
                op = msg.get("op")
                if op == "submit":
                    await self._op_submit(chan, msg)
                elif op == "status":
                    await chan.send(self._record_of(msg).status(msg["sub_id"]))
                elif op == "result":
                    await self._op_result(chan, msg)
                elif op == "stats":
                    await self._op_stats(chan)
                else:
                    await chan.send(error_message(f"unknown op {op!r}"))
            except Exception as exc:
                await chan.send(error_message(exc))

    def _record_of(self, msg: dict) -> SubmissionRecord:
        sub_id = msg.get("sub_id")
        record = self._records.get(sub_id)
        if record is None:
            raise KeyError(
                f"unknown submission {sub_id!r} "
                f"({len(self._records)} known)"
            )
        return record

    async def _op_submit(self, chan: ServerChannel, msg: dict) -> None:
        payload = msg.get("scenario")
        if not isinstance(payload, dict):
            raise ValueError("submit needs a scenario object")
        stream = bool(msg.get("stream", False))
        # Parsing validates — and may calibrate a first-seen storage
        # profile ("controller": "auto"), so keep it off the loop.
        loop = asyncio.get_running_loop()
        scenario: Scenario = await loop.run_in_executor(
            None, Scenario.from_dict, payload
        )
        content_hash = scenario.content_hash()
        self._next_id += 1
        sub_id = f"sub-{self._next_id:06d}"
        self.stats["submitted"] += 1

        record: Optional[SubmissionRecord] = None
        if not stream:
            # Live dedup: attach to an identical in-flight submission.
            prior = self._by_hash.get(content_hash)
            if prior is not None and prior.state != "failed":
                self.stats["deduplicated"] += 1
                self._records[sub_id] = prior
                await chan.send(self._submitted(sub_id, prior))
                return
            # Persistent store: answer an already-run scenario from disk.
            if self.core.store is not None:
                hit = await loop.run_in_executor(
                    None, self.core.store.get, content_hash
                )
                if hit is not None:
                    record = SubmissionRecord(
                        sub_id=sub_id, scenario_name=scenario.name,
                        scenario_json="", content_hash=content_hash,
                        cluster=cluster_key(scenario), stream=False,
                        state="done", cached=True, manifest=hit.to_dict(),
                    )
                    record.done.set()
                    self.stats["cache_hits"] += 1
                    self.core.cache_hits += 1

        if record is None:
            record = SubmissionRecord(
                sub_id=sub_id,
                scenario_name=scenario.name,
                scenario_json=scenario.to_json(),
                content_hash=content_hash,
                cluster=cluster_key(scenario),
                stream=stream,
            )
            self._pending.append(record)
            if self._drain_task is None or self._drain_task.done():
                self._drain_task = asyncio.create_task(self._drain())
        self._records[sub_id] = record
        if not stream:
            self._by_hash[content_hash] = record
        await chan.send(self._submitted(sub_id, record))

    @staticmethod
    def _submitted(sub_id: str, record: SubmissionRecord) -> dict:
        return {
            "op": "submitted",
            "sub_id": sub_id,
            "content_hash": record.content_hash,
            "state": record.state,
            "cached": record.cached,
        }

    async def _op_result(self, chan: ServerChannel, msg: dict) -> None:
        record = self._record_of(msg)
        sub_id = msg["sub_id"]
        await record.done.wait()
        if record.state == "failed":
            await chan.send({
                "op": "result", "sub_id": sub_id, "state": "failed",
                "error": record.error,
            })
            return
        if record.stream and record.events:
            for rec in record.events:
                await chan.send({
                    "op": "event", "sub_id": sub_id, "record": rec,
                })
        await chan.send({
            "op": "result", "sub_id": sub_id, "state": record.state,
            "cached": record.cached, "manifest": record.manifest,
        })

    async def _op_stats(self, chan: ServerChannel) -> None:
        store = self.core.store
        await chan.send({
            "op": "stats",
            **self.stats,
            "pending": len(self._pending),
            "running": sum(
                1 for r in {id(r): r for r in self._records.values()}.values()
                if r.state == "running"
            ),
            "jobs": self.jobs,
            "batching": self.batching,
            "address": self.address,
            "store": str(store.root) if store is not None else None,
            "store_hits": store.hits if store is not None else 0,
            "store_misses": store.misses if store is not None else 0,
        })

    # ----------------------------------------------------------- execution
    async def _drain(self) -> None:
        """Drain the queue in waves: group the current pending set by
        cluster key, run the groups concurrently on the pool, repeat.
        Submissions arriving mid-wave join the next wave — natural
        batching under load, no timers (deterministic in tests)."""
        while self._pending:
            wave, self._pending = self._pending, []
            if self.batching:
                groups: dict[str, list[SubmissionRecord]] = {}
                for record in wave:
                    groups.setdefault(record.cluster, []).append(record)
                batches = list(groups.values())
            else:
                batches = [[record] for record in wave]
            await asyncio.gather(
                *(self._run_batch(batch) for batch in batches)
            )

    async def _run_batch(self, records: list[SubmissionRecord]) -> None:
        from repro.service.worker import run_batch

        for record in records:
            record.state = "running"
        self.stats["batches"] += 1
        payloads = [(r.scenario_json, r.stream) for r in records]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, run_batch, payloads
            )
        except Exception as exc:  # pool died / shutdown race
            for record in records:
                record.state, record.error = "failed", str(exc)
                self.stats["failed"] += 1
                record.done.set()
            return
        for record, result in zip(records, results):
            if result["error"] is not None:
                record.state, record.error = "failed", result["error"]
                self.stats["failed"] += 1
            else:
                record.manifest = result["manifest"]
                record.events = result["events"]
                record.state = "done"
                self.stats["executed"] += 1
                self.core.executed += 1
                if self.core.store is not None and not record.stream:
                    self.core.store.put(
                        RunManifest.from_dict(record.manifest)
                    )
            record.done.set()
