"""The long-running scenario scheduler.

One asyncio event loop (running on its own thread once
:meth:`SchedulerService.start` returns) owns all submission state; all
transports feed it the dict messages of
:mod:`repro.service.protocol`.  A submission flows::

    submit → dedup (content hash) → result-store lookup → admission
          → journal → queue (start-tag fair order)
          → batch (cluster key) → warm worker pool → store → journal
          → client

* **Dedup** — a second live submission of the same scenario content
  hash attaches to the first's record instead of executing again.
* **Store** — with a :class:`~repro.execution.store.ResultStore`, a
  previously-run scenario is answered straight from disk, never queued.
* **Journal** — with a :class:`~repro.service.journal.SubmissionJournal`
  every accepted (non-streamed) submission is written to an fsynced
  write-ahead log before the client sees ``submitted``; on start the
  journal is replayed and incomplete submissions re-enqueued (store
  entries answer the already-finished ones), so a SIGKILLed scheduler
  loses nothing it acknowledged.
* **Admission & fairness** — with ``max_queue`` set, a submit that
  would push the queue past the bound gets a structured ``busy`` reply
  (the client re-offers after ``retry_after``).  Queued work drains in
  start-tag fair order — the paper's SFQ applied to the service's own
  front door: each connection is a flow with a virtual finish tag, so
  one chatty client cannot starve the others no matter how fast it
  submits.
* **Batching** — queued submissions drain in waves; each wave is
  grouped by :func:`~repro.execution.submission.cluster_key`, one
  group per pool task, so identical-cluster scenarios share a warm
  worker (and its calibration) while distinct groups run concurrently.
* **Guards** — a batch that dies for *infrastructure* reasons (worker
  crash, broken pool, timeout) is retried per submission under the
  :class:`~repro.service.retry.RetryPolicy`: exponential backoff with
  deterministic jitter, each retry isolated in its own batch so one
  poison submission cannot re-kill its siblings, quarantine (terminal
  ``failed`` with the backoff schedule in the status) after
  ``max_attempts``.  The supervisor replaces the crashed/wedged
  executor instead of wedging the wave.  Deterministic *scenario*
  errors fail on the first attempt — re-running a deterministic
  simulator reproduces the error.
* **Streaming** — a submission with ``stream`` set runs with telemetry
  capture; its bus records are sent to the client (``event`` messages)
  before the manifest.  Streamed submissions always execute — the
  event stream is a side effect the store cannot replay — and are not
  journaled: the stream is owed to a live connection a restart cannot
  resume.

``jobs <= 1`` runs batches on a single warm thread (deterministic, and
what the in-process tests use); ``jobs > 1`` uses a process pool.  A
timed-out thread worker is abandoned (its computation cannot be
killed); a timed-out process worker is terminated — use processes when
hard isolation matters.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.execution import ExecutionCore, ResultStore, cluster_key
from repro.scenario.runner import RunManifest
from repro.scenario.spec import Scenario
from repro.service.journal import JournalEntry, SubmissionJournal
from repro.service.protocol import error_message
from repro.service.retry import RetryPolicy
from repro.service.transport import Listener, ServerChannel, listen

__all__ = ["SchedulerService", "SubmissionRecord"]


@dataclass
class SubmissionRecord:
    """One unit of queued/running/finished work (aliases share it)."""

    sub_id: str
    scenario_name: str
    scenario_json: str
    content_hash: str
    cluster: str
    stream: bool
    client: str = "client-0"
    state: str = "queued"
    cached: bool = False
    manifest: Optional[dict] = None
    events: Optional[list] = None
    error: Optional[str] = None
    journaled: bool = False
    attempts: int = 0
    #: one ``{"attempt", "delay", "error", "at"}`` per retry waited out
    retries: list = field(default_factory=list)
    quarantined: bool = False
    #: fair-queuing start tag + FIFO tie-break
    start_tag: float = 0.0
    seq: int = 0
    #: a retried submission runs in its own batch (poison isolation)
    solo: bool = False
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def status(self, sub_id: str) -> dict[str, Any]:
        out = {
            "op": "status",
            "sub_id": sub_id,
            "scenario": self.scenario_name,
            "content_hash": self.content_hash,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
        }
        if self.retries:
            out["retries"] = list(self.retries)
        if self.quarantined:
            out["quarantined"] = True
        if self.error is not None:
            out["error"] = self.error
        return out


class SchedulerService:
    """Accepts scenario submissions over a transport and executes them
    through the execution core's store + warm worker pool."""

    def __init__(
        self,
        core: Optional[ExecutionCore] = None,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        batching: bool = True,
        journal: "SubmissionJournal | str | None" = None,
        retry: Optional[RetryPolicy] = None,
        max_queue: int = 0,
        store_max_bytes: int = 0,
        store_max_entries: int = 0,
        busy_retry_after: float = 0.05,
    ):
        if core is not None and store is not None:
            raise ValueError("pass either a core or a store, not both")
        self.core = core if core is not None else ExecutionCore(store=store)
        self.jobs = max(1, int(jobs))
        self.batching = batching
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_queue = max(0, int(max_queue))  # 0 = unbounded
        self.store_max_bytes = max(0, int(store_max_bytes))
        self.store_max_entries = max(0, int(store_max_entries))
        self.busy_retry_after = busy_retry_after
        if isinstance(journal, (str, bytes)) or hasattr(journal, "__fspath__"):
            journal = SubmissionJournal(journal)
        self.journal: Optional[SubmissionJournal] = journal
        self.address: Optional[str] = None

        self._records: dict[str, SubmissionRecord] = {}
        self._by_hash: dict[str, SubmissionRecord] = {}
        self._pending: list[SubmissionRecord] = []
        self._drain_task: Optional[asyncio.Task] = None
        self._next_id = 0
        self._next_seq = 0
        self._conn_count = 0
        #: SFQ front door: global virtual time + per-client finish tags.
        self._vtime = 0.0
        self._client_finish: dict[str, float] = {}
        self.stats: dict[str, int] = {
            "submitted": 0, "cache_hits": 0, "deduplicated": 0,
            "executed": 0, "failed": 0, "batches": 0,
            "recovered": 0, "retried": 0, "quarantined": 0,
            "rejected": 0, "workers_replaced": 0, "evicted": 0,
        }

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listener: Optional[Listener] = None
        self._executor = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------ lifecycle
    def start(self, address: str) -> "SchedulerService":
        """Bind ``address`` and serve from a background event loop;
        returns once the listener is live (``self.address`` is then the
        bound address — useful with ``tcp://host:0``) and any journal
        has been replayed."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self._serve_thread, args=(address,),
            name="repro-scheduler", daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def join(self) -> None:
        """Block until the service stops (Ctrl-C in the CLI)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        """Stop serving: close the listener, drop the workers.

        Queued and in-flight submissions are *not* waited for — with a
        journal they are recorded as incomplete and a fresh scheduler
        over the same journal finishes them.
        """
        if self._loop is not None and self._stop_event is not None:
            loop, stop = self._loop, self._stop_event
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _serve_thread(self, address: str) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(address))
        finally:
            loop.close()
            self._loop = None

    def _make_executor(self):
        if self.jobs > 1:
            return ProcessPoolExecutor(max_workers=self.jobs)
        # One warm thread: deterministic, monkeypatchable — the
        # in-process test/smoke configuration.
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-worker"
        )

    def _replace_executor(self) -> None:
        """The worker supervisor: swap a crashed/wedged pool for a
        fresh one so the wave keeps draining."""
        old, self._executor = self._executor, self._make_executor()
        self.stats["workers_replaced"] += 1
        if old is None:
            return
        if isinstance(old, ProcessPoolExecutor):
            # A wedged process ignores shutdown(); terminate it.
            for proc in list(getattr(old, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:
                    pass
        old.shutdown(wait=False, cancel_futures=True)

    async def _serve(self, address: str) -> None:
        self._stop_event = asyncio.Event()
        try:
            self._listener = await listen(address, self._handle_connection)
            self.address = self._listener.address
            self._executor = self._make_executor()
            if self.journal is not None:
                self._recover()
        except BaseException as exc:
            self._startup_error = exc
            if self._listener is not None:
                await self._listener.close()
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await self._listener.close()
            self._executor.shutdown(wait=False, cancel_futures=True)
            # Wind down open connections and in-flight batch awaits so
            # the loop closes without destroying pending tasks.
            doomed = [t for t in asyncio.all_tasks()
                      if t is not asyncio.current_task()]
            for task in doomed:
                task.cancel()
            await asyncio.gather(*doomed, return_exceptions=True)
            if self.journal is not None:
                self.journal.close()

    # ------------------------------------------------------------ recovery
    def _recover(self) -> None:
        """Replay the journal: re-enqueue incomplete submissions
        (store entries answer the already-finished ones), compact the
        terminal history away, resume the sub-id sequence."""
        replay = self.journal.replay()
        incomplete = replay.incomplete
        self.journal.compact()
        for entry in incomplete:
            record = SubmissionRecord(
                sub_id=entry.sub_id,
                scenario_name=entry.name,
                scenario_json=entry.scenario_json,
                content_hash=entry.content_hash,
                cluster=entry.cluster,
                stream=False,
                client=entry.client,
                journaled=True,
            )
            try:
                num = int(entry.sub_id.rsplit("-", 1)[-1])
            except ValueError:
                num = 0
            self._next_id = max(self._next_id, num)
            hit = None
            if self.core.store is not None:
                hit = self.core.store.get(entry.content_hash)
            if hit is not None:
                record.state, record.cached = "done", True
                record.manifest = hit.to_dict()
                record.done.set()
                self.stats["cache_hits"] += 1
                self.core.cache_hits += 1
                self.journal.record_done(entry.sub_id, cached=True)
            else:
                self._tag(record)
                self._pending.append(record)
            self._records[entry.sub_id] = record
            self._by_hash[entry.content_hash] = record
            self.stats["recovered"] += 1
        if self._pending:
            self._kick_drain()

    # ------------------------------------------------------------- serving
    async def _handle_connection(self, chan: ServerChannel) -> None:
        self._conn_count += 1
        client_tag = f"client-{self._conn_count}"
        while True:
            msg = await chan.recv()
            if msg is None:
                return
            try:
                op = msg.get("op")
                if op == "submit":
                    await self._op_submit(chan, msg, client_tag)
                elif op == "status":
                    await chan.send(self._record_of(msg).status(msg["sub_id"]))
                elif op == "result":
                    await self._op_result(chan, msg)
                elif op == "stats":
                    await self._op_stats(chan)
                else:
                    await chan.send(error_message(f"unknown op {op!r}"))
            except Exception as exc:
                await chan.send(error_message(exc))

    def _record_of(self, msg: dict) -> SubmissionRecord:
        sub_id = msg.get("sub_id")
        record = self._records.get(sub_id)
        if record is None:
            raise KeyError(
                f"unknown submission {sub_id!r} "
                f"({len(self._records)} known)"
            )
        return record

    def _tag(self, record: SubmissionRecord) -> None:
        """Assign the SFQ start tag: max(virtual time, the client's
        last finish tag); unit cost per submission."""
        start = max(self._vtime, self._client_finish.get(record.client, 0.0))
        self._client_finish[record.client] = start + 1.0
        record.start_tag = start
        self._next_seq += 1
        record.seq = self._next_seq

    async def _op_submit(self, chan: ServerChannel, msg: dict,
                         client_tag: str) -> None:
        payload = msg.get("scenario")
        if not isinstance(payload, dict):
            raise ValueError("submit needs a scenario object")
        stream = bool(msg.get("stream", False))
        # Parsing validates — and may calibrate a first-seen storage
        # profile ("controller": "auto"), so keep it off the loop.
        loop = asyncio.get_running_loop()
        scenario: Scenario = await loop.run_in_executor(
            None, Scenario.from_dict, payload
        )
        content_hash = scenario.content_hash()

        record: Optional[SubmissionRecord] = None
        if not stream:
            # Live dedup: attach to an identical in-flight submission.
            prior = self._by_hash.get(content_hash)
            if prior is not None and prior.state != "failed":
                self._next_id += 1
                sub_id = f"sub-{self._next_id:06d}"
                self.stats["submitted"] += 1
                self.stats["deduplicated"] += 1
                self._records[sub_id] = prior
                await chan.send(self._submitted(sub_id, prior))
                return
            # Persistent store: answer an already-run scenario from disk.
            if self.core.store is not None:
                hit = await loop.run_in_executor(
                    None, self.core.store.get, content_hash
                )
                if hit is not None:
                    self._next_id += 1
                    sub_id = f"sub-{self._next_id:06d}"
                    self.stats["submitted"] += 1
                    record = SubmissionRecord(
                        sub_id=sub_id, scenario_name=scenario.name,
                        scenario_json="", content_hash=content_hash,
                        cluster=cluster_key(scenario), stream=False,
                        client=client_tag,
                        state="done", cached=True, manifest=hit.to_dict(),
                    )
                    record.done.set()
                    self.stats["cache_hits"] += 1
                    self.core.cache_hits += 1
                    self._records[sub_id] = record
                    self._by_hash[content_hash] = record
                    await chan.send(self._submitted(sub_id, record))
                    return

        # Bounded admission: the submission would join the queue — if
        # the queue is full, push back instead of buffering unboundedly.
        if self.max_queue and len(self._pending) >= self.max_queue:
            self.stats["rejected"] += 1
            await chan.send({
                "op": "busy",
                "queue_depth": len(self._pending),
                "max_queue": self.max_queue,
                "retry_after": self.busy_retry_after,
            })
            return

        self._next_id += 1
        sub_id = f"sub-{self._next_id:06d}"
        self.stats["submitted"] += 1
        record = SubmissionRecord(
            sub_id=sub_id,
            scenario_name=scenario.name,
            scenario_json=scenario.to_json(),
            content_hash=content_hash,
            cluster=cluster_key(scenario),
            stream=stream,
            client=client_tag,
        )
        if self.journal is not None and not stream:
            # WAL: fsynced before the client sees "submitted", so an
            # acknowledged submission survives SIGKILL and power loss.
            self.journal.record_submit(JournalEntry(
                sub_id=sub_id, name=scenario.name,
                content_hash=content_hash, cluster=record.cluster,
                scenario_json=record.scenario_json, client=client_tag,
            ))
            record.journaled = True
        self._tag(record)
        self._pending.append(record)
        self._kick_drain()
        self._records[sub_id] = record
        if not stream:
            self._by_hash[content_hash] = record
        await chan.send(self._submitted(sub_id, record))

    @staticmethod
    def _submitted(sub_id: str, record: SubmissionRecord) -> dict:
        return {
            "op": "submitted",
            "sub_id": sub_id,
            "content_hash": record.content_hash,
            "state": record.state,
            "cached": record.cached,
        }

    async def _op_result(self, chan: ServerChannel, msg: dict) -> None:
        record = self._record_of(msg)
        sub_id = msg["sub_id"]
        await record.done.wait()
        if record.state == "failed":
            await chan.send({
                "op": "result", "sub_id": sub_id, "state": "failed",
                "error": record.error,
                "quarantined": record.quarantined,
            })
            return
        if record.stream and record.events:
            for rec in record.events:
                await chan.send({
                    "op": "event", "sub_id": sub_id, "record": rec,
                })
        await chan.send({
            "op": "result", "sub_id": sub_id, "state": record.state,
            "cached": record.cached, "manifest": record.manifest,
        })

    async def _op_stats(self, chan: ServerChannel) -> None:
        store = self.core.store
        await chan.send({
            "op": "stats",
            **self.stats,
            "pending": len(self._pending),
            "running": sum(
                1 for r in {id(r): r for r in self._records.values()}.values()
                if r.state == "running"
            ),
            "jobs": self.jobs,
            "batching": self.batching,
            "max_queue": self.max_queue,
            "address": self.address,
            "journal": (str(self.journal.path)
                        if self.journal is not None else None),
            "store": str(store.root) if store is not None else None,
            "store_hits": store.hits if store is not None else 0,
            "store_misses": store.misses if store is not None else 0,
            "store_corrupt": store.corrupt if store is not None else 0,
        })

    # ----------------------------------------------------------- execution
    def _kick_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        """Drain the queue in waves: order the current pending set by
        SFQ start tag (fair across clients), group it by cluster key,
        run the groups concurrently on the pool, repeat.  Submissions
        arriving mid-wave join the next wave — natural batching under
        load, no timers (deterministic in tests)."""
        while self._pending:
            wave, self._pending = self._pending, []
            wave.sort(key=lambda r: (r.start_tag, r.seq))
            self._vtime = max(self._vtime,
                              max(r.start_tag for r in wave))
            batches: list[list[SubmissionRecord]] = []
            groups: dict[str, list[SubmissionRecord]] = {}
            for record in wave:
                if record.solo or not self.batching:
                    batches.append([record])
                    continue
                group = groups.get(record.cluster)
                if group is None:
                    groups[record.cluster] = group = []
                    batches.append(group)
                group.append(record)
            await asyncio.gather(
                *(self._run_batch(batch) for batch in batches)
            )

    async def _run_batch(self, records: list[SubmissionRecord]) -> None:
        from repro.service.worker import run_batch

        for record in records:
            record.state = "running"
            record.attempts += 1
            if record.journaled:
                self.journal.record_start(record.sub_id, record.attempts)
        self.stats["batches"] += 1
        payloads = [(r.scenario_json, r.stream) for r in records]
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(self._executor, run_batch, payloads)
        try:
            if self.retry.timeout is not None:
                results = await asyncio.wait_for(fut, self.retry.timeout)
            else:
                results = await fut
        except asyncio.CancelledError:
            raise
        except asyncio.TimeoutError:
            # The worker is wedged: replace it, retry the submissions.
            self._replace_executor()
            self._retry_or_quarantine(
                records,
                f"TimeoutError: batch exceeded {self.retry.timeout:g}s",
            )
            return
        except Exception as exc:  # pool died / worker crashed
            self._replace_executor()
            self._retry_or_quarantine(records, f"{type(exc).__name__}: {exc}")
            return
        for record, result in zip(records, results):
            if result["error"] is not None:
                # Deterministic scenario error: retrying reproduces it.
                self._finish_failed(record, result["error"])
            else:
                record.manifest = result["manifest"]
                record.events = result["events"]
                record.state = "done"
                self.stats["executed"] += 1
                self.core.executed += 1
                if self.core.store is not None and not record.stream:
                    self.core.store.put(
                        RunManifest.from_dict(record.manifest)
                    )
                if record.journaled:
                    self.journal.record_done(record.sub_id)
                record.done.set()
        self._maybe_evict_store()

    # -------------------------------------------------- guards & budgeting
    def _retry_or_quarantine(self, records: list[SubmissionRecord],
                             error: str) -> None:
        """Infrastructure failure: back each submission off and requeue
        it solo, or quarantine it once its attempts are spent."""
        for record in records:
            if record.attempts >= self.retry.max_attempts:
                self._finish_failed(record, error, quarantined=True)
                continue
            delay = self.retry.delay(record.attempts, record.content_hash)
            record.retries.append({
                "attempt": record.attempts,
                "delay": delay,
                "error": error,
                "at": time.time(),
            })
            record.state = "queued"
            record.solo = True  # isolate: a poison sibling re-kills batches
            self.stats["retried"] += 1
            asyncio.ensure_future(self._requeue_after(record, delay))

    async def _requeue_after(self, record: SubmissionRecord,
                             delay: float) -> None:
        await asyncio.sleep(delay)
        self._tag(record)
        self._pending.append(record)
        self._kick_drain()

    def _finish_failed(self, record: SubmissionRecord, error: str,
                       quarantined: bool = False) -> None:
        record.state, record.error = "failed", error
        record.quarantined = quarantined
        self.stats["failed"] += 1
        if quarantined:
            self.stats["quarantined"] += 1
        if record.journaled:
            self.journal.record_failed(record.sub_id, error, record.attempts)
        record.done.set()

    def _maybe_evict_store(self) -> None:
        """Scheduler-triggered store budgeting: after a wave of fills,
        trim the store back under its byte/entry budget (LRU)."""
        store = self.core.store
        if store is None or not (self.store_max_bytes
                                 or self.store_max_entries):
            return
        report = store.evict(
            max_bytes=self.store_max_bytes or None,
            max_entries=self.store_max_entries or None,
        )
        self.stats["evicted"] += len(report.removed)
