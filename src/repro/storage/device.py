"""Storage device with FCFS or processor-sharing service.

Model
-----
With ``n`` requests in flight the device delivers an aggregate service
rate ``W(n) = peak_rate · n / (n + n_half)`` — throughput saturates with
concurrency (the elevator/NCQ effect).  A request of ``b`` bytes carries
``b · op_cost + request_overhead`` *work units*.  Two disciplines:

* ``fcfs`` (disks): requests are *serviced serially in arrival order*
  at the aggregate rate — one transfer at a time, with outstanding
  requests only improving head scheduling.  A request's latency is the
  queued work ahead of it, which is why admission order (exactly what
  SFQ(D) controls) dominates interference on disks, and why an
  uncontrolled flood devastates a latecomer on native Hadoop.
* ``ps`` (network pipes): ``n`` flows share ``W(n)`` equally.

Writes on flash (``write_cost > 1``) consume more service than reads —
the asymmetry behind the paper's SSD result.

Both disciplines run on one mechanism: a *virtual work time* ``V``.
Under PS, ``V`` advances at the per-request rate ``W(n)/n`` and request
targets are ``V_admit + work``; under FCFS, ``V`` advances at ``W(n)``
and targets are cumulative (``previous target + work``).  All updates
are O(log n).

Write-back storms
-----------------
Each time cumulative write bytes cross ``flush_threshold``, the device
rate is multiplied by ``flush_factor`` for ``flush_duration`` seconds —
the foreground page-cache flushes visible as latency spikes in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional

from repro.config import StorageProfile
from repro.simcore import Event, RateMeter, Simulator
from repro.simcore.engine import _TRIGGERED
from repro.telemetry import FLUSH_SPIKE, FlushSpike, TelemetryBus

__all__ = ["IOCompletion", "StorageDevice"]

_EPS = 1e-12


@dataclass(frozen=True)
class IOCompletion:
    """Returned as the value of a completed I/O's event."""

    op: str          # "read" | "write"
    nbytes: int
    latency: float   # seconds from submit to completion


class _Active:
    __slots__ = ("op", "nbytes", "submit_time", "event", "target_v")

    def __init__(self, op: str, nbytes: int, submit_time: float, event: Event):
        self.op = op
        self.nbytes = nbytes
        self.submit_time = submit_time
        self.event = event
        self.target_v = 0.0


class StorageDevice:
    """A single spindle/flash device with processor-sharing service."""

    def __init__(
        self,
        sim: Simulator,
        profile: StorageProfile,
        name: str = "disk",
        telemetry: Optional[TelemetryBus] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()

        self._v = 0.0                 # virtual work time (per-request progress)
        self._v_updated = sim.now     # wall time of last _v update
        self._heap: list[tuple[float, int, _Active]] = []
        self._seq = 0
        self._gen = 0                 # generation token for completion callbacks
        self._scheduled_target = 0.0  # heap-head V target of the live tick
        self._last_target = 0.0       # fcfs: cumulative work target tail
        self._fcfs = profile.discipline == "fcfs"

        # Hot-path caches: the precomputed per-profile rate tables (see
        # StorageProfile.__post_init__) and per-op work costs, bound once
        # so the dispatch loop does tuple indexing instead of attribute
        # chains and float arithmetic.  The LUTs encode rate_factor == 1.0;
        # fault-degraded devices take the original arithmetic path.
        self._rate_lut = profile.rate_lut
        self._progress_lut = profile.rate_lut if self._fcfs else profile.ps_rate_lut
        self._progress_storm_lut = (
            profile.storm_rate_lut if self._fcfs else profile.ps_storm_lut
        )
        self._lut_depth = profile.LUT_DEPTH
        self._op_cost = profile.op_cost
        self._request_overhead = profile.request_overhead
        self._flush_factor = profile.flush_factor

        self._storm_until = 0.0
        self._written_since_flush = 0.0

        # Fault-injection state: a rate multiplier (fail-slow disks) and
        # a failure marker.  Both stay at their identity values in every
        # healthy run, so the fault layer costs one float multiply.
        self._rate_factor = 1.0
        self._failed: Optional[BaseException] = None

        # Completion-tick dispatch: every submit/complete reschedules the
        # next tick.  The superseded tick is withdrawn from the event
        # queue (tombstoned) so it never dispatches; the tick that fires
        # returns its event object to a small pool in :meth:`_on_tick`,
        # so steady-state dispatch allocates at most one event per
        # reschedule.  I/O event names are precomputed.
        self._tick_pool: list[Event] = []
        self._live_tick: Optional[Event] = None
        self._withdraw_tick = sim._queue.withdraw  # bound, hot path
        self._io_name = {"read": f"io:{name}:read", "write": f"io:{name}:write"}

        # Instrumentation (per-request latencies travel as telemetry: the
        # interposed scheduler publishes them in ``request_completed``).
        self.read_meter = RateMeter(f"{name}:read")
        self.write_meter = RateMeter(f"{name}:write")
        self.completed_requests = 0

    # ------------------------------------------------------------------ api
    @property
    def in_flight(self) -> int:
        return len(self._heap)

    def submit(self, op: str, nbytes: int) -> Event:
        """Begin servicing an I/O immediately (no internal queue — admission
        control is the scheduler's job).  The returned event succeeds with an
        :class:`IOCompletion` when the device finishes the request."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if self._failed is not None:
            ev = Event(self.sim, name=self._io_name[op])
            ev.fail(self._failed)
            return ev
        self._advance()
        ev = Event(self.sim, name=self._io_name[op])
        entry = _Active(op, int(nbytes), self.sim.now, ev)
        work = nbytes * self._op_cost[op] + self._request_overhead
        if self._fcfs:
            # Serial service: this request completes after all work ahead.
            self._last_target = max(self._last_target, self._v) + work
            entry.target_v = self._last_target
        else:
            entry.target_v = self._v + work
        self._seq += 1
        heappush(self._heap, (entry.target_v, self._seq, entry))
        if op == "write":
            self._note_write(nbytes)
        self._reschedule()
        return ev

    def current_rate(self) -> float:
        """Aggregate service rate right now (work units / second)."""
        n = len(self._heap)
        if self._rate_factor == 1.0 and n <= self._lut_depth:
            # x * 1.0 is exact, so the LUT entries (which fold the
            # storm factor in the historical association) match the
            # arithmetic below bit for bit.
            if self.sim.now < self._storm_until:
                return self.profile.storm_rate_lut[n]
            return self._rate_lut[n]
        rate = self.profile.rate_at(n) * self._rate_factor
        if self.sim.now < self._storm_until:
            rate *= self.profile.flush_factor
        return rate

    @property
    def in_storm(self) -> bool:
        return self.sim.now < self._storm_until

    # -------------------------------------------------------------- faults
    @property
    def failed(self) -> bool:
        return self._failed is not None

    def set_rate_factor(self, factor: float) -> None:
        """Scale the device's service rate by ``factor`` (fail-slow disk).

        ``factor`` must stay positive — a dead device is :meth:`fail`,
        not factor 0 (V could never advance with work queued).
        """
        if factor <= 0:
            raise ValueError(f"rate factor must be > 0, got {factor}")
        if factor == self._rate_factor:
            return
        self._advance()
        self._rate_factor = factor
        self._reschedule()

    def fail(self, exc: BaseException) -> None:
        """Kill the device: every in-flight I/O fails with ``exc``, and
        every future :meth:`submit` returns an already-failed event until
        :meth:`repair` is called."""
        self._advance()
        self._failed = exc
        self._gen += 1          # cancel the live completion tick
        tick = self._live_tick
        if tick is not None and tick._state == _TRIGGERED:
            self.sim._withdraw(tick)
        self._live_tick = None
        dropped, self._heap = self._heap, []
        # FCFS tail restarts from the current progress point on repair.
        self._last_target = self._v
        for _tv, _seq, entry in dropped:
            entry.event.fail(exc)

    def repair(self) -> None:
        """Bring a failed device back (empty, at full rate)."""
        self._failed = None
        self._v_updated = self.sim.now

    # ----------------------------------------------------------- internals
    def _progress_rate(self) -> float:
        """Rate at which the virtual work time V advances."""
        n = len(self._heap)
        if n == 0:
            return 0.0
        if self._rate_factor == 1.0 and n <= self._lut_depth:
            if self.sim.now < self._storm_until:
                return self._progress_storm_lut[n]
            return self._progress_lut[n]
        rate = self.current_rate()
        return rate if self._fcfs else rate / n

    def _advance(self) -> None:
        """Bring the virtual work time up to ``sim.now``.

        The population ``n`` is constant between updates (it only changes
        inside submit/complete, which advance first), but the elapsed
        interval may span the end of a flush storm, so integrate piecewise.
        """
        now = self.sim.now
        t = self._v_updated
        if now > t:
            n = len(self._heap)
            if n > 0:
                if self._rate_factor == 1.0 and n <= self._lut_depth:
                    base = self._progress_lut[n]
                else:
                    base = self.profile.rate_at(n) * self._rate_factor
                    if not self._fcfs:
                        base /= n
                storm_end = self._storm_until
                if t < storm_end:
                    seg_end = min(now, storm_end)
                    self._v += (seg_end - t) * base * self._flush_factor
                    t = seg_end
                if now > t:
                    self._v += (now - t) * base
        self._v_updated = now

    def _reschedule(self) -> None:
        """(Re)schedule the next completion tick.

        The previously scheduled tick — if it has not fired yet — is
        withdrawn from the event queue (tombstoned in place), so
        superseded ticks never dispatch at all.  The tick that does fire
        returns its event object to a small pool in :meth:`_on_tick`.
        The generation token rides in the event's value slot as a second
        line of defense against a stale dispatch.
        """
        self._gen += 1
        old = self._live_tick
        if old is not None and old._state == _TRIGGERED:
            # Still queued and not fired: dead on arrival — tombstone it.
            self._withdraw_tick(old)
        self._live_tick = None
        heap = self._heap
        if not heap:
            return
        n = len(heap)
        if self._rate_factor == 1.0 and n <= self._lut_depth:
            if self.sim.now < self._storm_until:
                rate = self._progress_storm_lut[n]
            else:
                rate = self._progress_lut[n]
        else:
            rate = self._progress_rate()
        if rate <= 0:
            raise RuntimeError(f"device {self.name}: zero rate with work queued")
        target_v = heap[0][0]
        dt = (target_v - self._v) / rate
        if dt < 0.0:
            dt = 0.0
        self._scheduled_target = target_v
        pool = self._tick_pool
        if pool:
            ev = pool.pop()._retrigger(self._gen)
        else:
            ev = Event(self.sim, name="tick")
            ev._retrigger(self._gen)
        ev.callbacks.append(self._on_tick)
        self._live_tick = ev
        self.sim._push(dt, ev)

    def _on_tick(self, tick: Event) -> None:
        gen = tick._value
        if len(self._tick_pool) < 8:
            # _process() has already detached the callback list; the event
            # object is dead and safe to recycle.
            self._tick_pool.append(tick)
        if gen != self._gen:
            return  # superseded by a later state change
        self._advance()
        # The tick was scheduled to land exactly on the heap-head target;
        # snap V there so float rounding cannot strand the completion.
        if self._v < self._scheduled_target:
            self._v = self._scheduled_target
        now = self.sim.now
        heap = self._heap
        cutoff = self._v + _EPS
        n_done = 0
        while heap and heap[0][0] <= cutoff:
            _tv, _seq, entry = heappop(heap)
            latency = now - entry.submit_time
            done = IOCompletion(entry.op, entry.nbytes, latency)
            meter = self.read_meter if entry.op == "read" else self.write_meter
            meter.add(now, entry.nbytes)
            n_done += 1
            entry.event.succeed(done)
        self.completed_requests += n_done
        self._reschedule()

    def _note_write(self, nbytes: int) -> None:
        if self.profile.flush_threshold <= 0:
            return
        self._written_since_flush += nbytes
        if self._written_since_flush >= self.profile.flush_threshold:
            self._written_since_flush -= self.profile.flush_threshold
            self._start_storm()

    def _start_storm(self) -> None:
        now = self.sim.now
        was_in_storm = now < self._storm_until
        self._storm_until = max(self._storm_until, now) + self.profile.flush_duration
        if not was_in_storm:
            # Rate just dropped: virtual time must advance at the new rate.
            self._reschedule()
        end = self._storm_until
        if self.telemetry.publishes(FLUSH_SPIKE):
            self.telemetry.publish(FlushSpike(
                t=now, source=self.name, until=end,
                factor=self.profile.flush_factor,
            ))
        self.sim.call_at(end, self._on_storm_boundary)

    def _on_storm_boundary(self) -> None:
        # Rate may have just recovered; re-evaluate.
        self._advance()
        self._reschedule()
