"""Storage device with FCFS or processor-sharing service.

Model
-----
With ``n`` requests in flight the device delivers an aggregate service
rate ``W(n) = peak_rate · n / (n + n_half)`` — throughput saturates with
concurrency (the elevator/NCQ effect).  A request of ``b`` bytes carries
``b · op_cost + request_overhead`` *work units*.  Two disciplines:

* ``fcfs`` (disks): requests are *serviced serially in arrival order*
  at the aggregate rate — one transfer at a time, with outstanding
  requests only improving head scheduling.  A request's latency is the
  queued work ahead of it, which is why admission order (exactly what
  SFQ(D) controls) dominates interference on disks, and why an
  uncontrolled flood devastates a latecomer on native Hadoop.
* ``ps`` (network pipes): ``n`` flows share ``W(n)`` equally.

Writes on flash (``write_cost > 1``) consume more service than reads —
the asymmetry behind the paper's SSD result.

Both disciplines run on one mechanism: a *virtual work time* ``V``.
Under PS, ``V`` advances at the per-request rate ``W(n)/n`` and request
targets are ``V_admit + work``; under FCFS, ``V`` advances at ``W(n)``
and targets are cumulative (``previous target + work``).  All updates
are O(log n).

Write-back storms
-----------------
Each time cumulative write bytes cross ``flush_threshold``, the device
rate is multiplied by ``flush_factor`` for ``flush_duration`` seconds —
the foreground page-cache flushes visible as latency spikes in Fig. 7.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.config import StorageProfile
from repro.simcore import Event, RateMeter, Simulator
from repro.telemetry import FLUSH_SPIKE, FlushSpike, TelemetryBus

__all__ = ["IOCompletion", "StorageDevice"]

_EPS = 1e-12


@dataclass(frozen=True)
class IOCompletion:
    """Returned as the value of a completed I/O's event."""

    op: str          # "read" | "write"
    nbytes: int
    latency: float   # seconds from submit to completion


class _Active:
    __slots__ = ("op", "nbytes", "submit_time", "event", "target_v")

    def __init__(self, op: str, nbytes: int, submit_time: float, event: Event):
        self.op = op
        self.nbytes = nbytes
        self.submit_time = submit_time
        self.event = event
        self.target_v = 0.0


class StorageDevice:
    """A single spindle/flash device with processor-sharing service."""

    def __init__(
        self,
        sim: Simulator,
        profile: StorageProfile,
        name: str = "disk",
        telemetry: Optional[TelemetryBus] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.telemetry = telemetry if telemetry is not None else TelemetryBus()

        self._v = 0.0                 # virtual work time (per-request progress)
        self._v_updated = sim.now     # wall time of last _v update
        self._heap: list[tuple[float, int, _Active]] = []
        self._seq = 0
        self._gen = 0                 # generation token for completion callbacks
        self._scheduled_target = 0.0  # heap-head V target of the live tick
        self._last_target = 0.0       # fcfs: cumulative work target tail
        self._fcfs = profile.discipline == "fcfs"

        self._storm_until = 0.0
        self._written_since_flush = 0.0

        # Fault-injection state: a rate multiplier (fail-slow disks) and
        # a failure marker.  Both stay at their identity values in every
        # healthy run, so the fault layer costs one float multiply.
        self._rate_factor = 1.0
        self._failed: Optional[BaseException] = None

        # Completion-tick dispatch: every submit/complete reschedules the
        # next tick, so tick events are pooled and reused instead of
        # allocated per dispatch, and I/O event names are precomputed.
        self._tick_pool: list[Event] = []
        self._io_name = {"read": f"io:{name}:read", "write": f"io:{name}:write"}

        # Instrumentation (per-request latencies travel as telemetry: the
        # interposed scheduler publishes them in ``request_completed``).
        self.read_meter = RateMeter(f"{name}:read")
        self.write_meter = RateMeter(f"{name}:write")
        self.completed_requests = 0

    # ------------------------------------------------------------------ api
    @property
    def in_flight(self) -> int:
        return len(self._heap)

    def submit(self, op: str, nbytes: int) -> Event:
        """Begin servicing an I/O immediately (no internal queue — admission
        control is the scheduler's job).  The returned event succeeds with an
        :class:`IOCompletion` when the device finishes the request."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        if self._failed is not None:
            ev = Event(self.sim, name=self._io_name[op])
            ev.fail(self._failed)
            return ev
        self._advance()
        ev = Event(self.sim, name=self._io_name[op])
        entry = _Active(op, int(nbytes), self.sim.now, ev)
        cost = self.profile.read_cost if op == "read" else self.profile.write_cost
        work = nbytes * cost + self.profile.request_overhead
        if self._fcfs:
            # Serial service: this request completes after all work ahead.
            self._last_target = max(self._last_target, self._v) + work
            entry.target_v = self._last_target
        else:
            entry.target_v = self._v + work
        self._seq += 1
        heapq.heappush(self._heap, (entry.target_v, self._seq, entry))
        if op == "write":
            self._note_write(nbytes)
        self._reschedule()
        return ev

    def current_rate(self) -> float:
        """Aggregate service rate right now (work units / second)."""
        n = len(self._heap)
        rate = self.profile.rate_at(n) * self._rate_factor
        if self.sim.now < self._storm_until:
            rate *= self.profile.flush_factor
        return rate

    @property
    def in_storm(self) -> bool:
        return self.sim.now < self._storm_until

    # -------------------------------------------------------------- faults
    @property
    def failed(self) -> bool:
        return self._failed is not None

    def set_rate_factor(self, factor: float) -> None:
        """Scale the device's service rate by ``factor`` (fail-slow disk).

        ``factor`` must stay positive — a dead device is :meth:`fail`,
        not factor 0 (V could never advance with work queued).
        """
        if factor <= 0:
            raise ValueError(f"rate factor must be > 0, got {factor}")
        if factor == self._rate_factor:
            return
        self._advance()
        self._rate_factor = factor
        self._reschedule()

    def fail(self, exc: BaseException) -> None:
        """Kill the device: every in-flight I/O fails with ``exc``, and
        every future :meth:`submit` returns an already-failed event until
        :meth:`repair` is called."""
        self._advance()
        self._failed = exc
        self._gen += 1          # cancel the live completion tick
        dropped, self._heap = self._heap, []
        # FCFS tail restarts from the current progress point on repair.
        self._last_target = self._v
        for _tv, _seq, entry in dropped:
            entry.event.fail(exc)

    def repair(self) -> None:
        """Bring a failed device back (empty, at full rate)."""
        self._failed = None
        self._v_updated = self.sim.now

    # ----------------------------------------------------------- internals
    def _progress_rate(self) -> float:
        """Rate at which the virtual work time V advances."""
        n = len(self._heap)
        if n == 0:
            return 0.0
        rate = self.current_rate()
        return rate if self._fcfs else rate / n

    def _advance(self) -> None:
        """Bring the virtual work time up to ``sim.now``.

        The population ``n`` is constant between updates (it only changes
        inside submit/complete, which advance first), but the elapsed
        interval may span the end of a flush storm, so integrate piecewise.
        """
        now = self.sim.now
        t = self._v_updated
        if now > t:
            n = len(self._heap)
            if n > 0:
                base = self.profile.rate_at(n) * self._rate_factor
                if not self._fcfs:
                    base /= n
                storm_end = self._storm_until
                if t < storm_end:
                    seg_end = min(now, storm_end)
                    self._v += (seg_end - t) * base * self.profile.flush_factor
                    t = seg_end
                if now > t:
                    self._v += (now - t) * base
        self._v_updated = now

    def _reschedule(self) -> None:
        """(Re)schedule the next completion tick.

        Tick events come from a small pool: a superseded tick returns its
        event object in :meth:`_on_tick`, so steady-state dispatch does no
        event allocation at all (the generation token rides in the event's
        value slot).
        """
        self._gen += 1
        if not self._heap:
            return
        rate = self._progress_rate()
        if rate <= 0:
            raise RuntimeError(f"device {self.name}: zero rate with work queued")
        target_v = self._heap[0][0]
        dt = (target_v - self._v) / rate
        if dt < 0.0:
            dt = 0.0
        self._scheduled_target = target_v
        pool = self._tick_pool
        if pool:
            ev = pool.pop()._retrigger(self._gen)
        else:
            ev = Event(self.sim, name="tick")
            ev._retrigger(self._gen)
        ev.callbacks.append(self._on_tick)
        self.sim._push(dt, ev)

    def _on_tick(self, tick: Event) -> None:
        gen = tick._value
        if len(self._tick_pool) < 8:
            # _process() has already detached the callback list; the event
            # object is dead and safe to recycle.
            self._tick_pool.append(tick)
        if gen != self._gen:
            return  # superseded by a later state change
        self._advance()
        # The tick was scheduled to land exactly on the heap-head target;
        # snap V there so float rounding cannot strand the completion.
        self._v = max(self._v, self._scheduled_target)
        now = self.sim.now
        while self._heap and self._heap[0][0] <= self._v + _EPS:
            _tv, _seq, entry = heapq.heappop(self._heap)
            latency = now - entry.submit_time
            done = IOCompletion(entry.op, entry.nbytes, latency)
            meter = self.read_meter if entry.op == "read" else self.write_meter
            meter.add(now, entry.nbytes)
            self.completed_requests += 1
            entry.event.succeed(done)
        self._reschedule()

    def _note_write(self, nbytes: int) -> None:
        if self.profile.flush_threshold <= 0:
            return
        self._written_since_flush += nbytes
        if self._written_since_flush >= self.profile.flush_threshold:
            self._written_since_flush -= self.profile.flush_threshold
            self._start_storm()

    def _start_storm(self) -> None:
        now = self.sim.now
        was_in_storm = now < self._storm_until
        self._storm_until = max(self._storm_until, now) + self.profile.flush_duration
        if not was_in_storm:
            # Rate just dropped: virtual time must advance at the new rate.
            self._reschedule()
        end = self._storm_until
        if self.telemetry.publishes(FLUSH_SPIKE):
            self.telemetry.publish(FlushSpike(
                t=now, source=self.name, until=end,
                factor=self.profile.flush_factor,
            ))
        self.sim.call_at(end, self._on_storm_boundary)

    def _on_storm_boundary(self) -> None:
        # Rate may have just recovered; re-evaluate.
        self._advance()
        self._reschedule()
