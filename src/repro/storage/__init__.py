"""Storage substrate: processor-sharing device model with write-back storms.

The paper's schedulers sit on top of a real disk whose throughput rises
(and saturates) with I/O concurrency while per-request latency keeps
growing.  :class:`StorageDevice` reproduces exactly that behaviour, plus
flash read/write asymmetry and page-cache foreground-flush latency
spikes — the three storage phenomena the evaluation (§7.2, Fig. 7/8)
depends on.
"""

from repro.storage.device import IOCompletion, StorageDevice

__all__ = ["IOCompletion", "StorageDevice"]
