"""The Resource Manager: container allocation with fair sharing.

Application Masters request containers (vcores + memory + locality
preference); the RM grants them subject to per-node capacity and the
Fair Scheduler's entitlements.  Grants go to the most-starved eligible
application first (lowest used-cores/weight), which converges to the
weighted fair shares as containers churn — the practical effect of the
Fair Scheduler with preemption for the short tasks of this workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.simcore import Event, SimulationError, Simulator

__all__ = ["AppHandle", "ContainerGrant", "ResourceManager"]


@dataclass
class AppHandle:
    """RM-side state of a registered application."""

    app_id: str
    weight: float = 1.0
    max_cores: Optional[int] = None  # hard CPU cap (the paper pins these)
    cores_used: int = 0
    mem_used: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("app weight must be positive")
        if self.max_cores is not None and self.max_cores <= 0:
            raise ValueError("max_cores must be positive when set")


@dataclass(frozen=True)
class ContainerGrant:
    """The value delivered by a granted container request."""

    node_id: str
    vcores: int
    memory: int


@dataclass
class _Pending:
    app: AppHandle
    vcores: int
    memory: int
    preferred: tuple[str, ...]
    event: Event
    seq: int


class ResourceManager:
    def __init__(
        self,
        sim: Simulator,
        node_ids: Sequence[str],
        cores_per_node: int,
        memory_per_node: int,
    ):
        if not node_ids:
            raise ValueError("need at least one node")
        self.sim = sim
        self.node_ids = list(node_ids)
        self.cores_free = {n: int(cores_per_node) for n in node_ids}
        self.mem_free = {n: int(memory_per_node) for n in node_ids}
        self.cores_per_node = int(cores_per_node)
        self.memory_per_node = int(memory_per_node)
        self.apps: dict[str, AppHandle] = {}
        self._pending: list[_Pending] = []
        self._seq = 0
        self._dead: set[str] = set()  # crashed nodes, no new containers

    # ------------------------------------------------------------- liveness
    def node_down(self, node: str) -> None:
        """Stop granting containers on a crashed node.

        Capacity already granted there is reclaimed by the AppMaster
        releasing the dead containers (the normal release path)."""
        if node not in self.node_ids:
            raise ValueError(f"unknown node {node!r}")
        self._dead.add(node)

    def node_up(self, node: str) -> None:
        """A crashed node recovered; its capacity is grantable again."""
        self._dead.discard(node)
        self._allocate()

    def is_alive(self, node: str) -> bool:
        return node not in self._dead

    # ------------------------------------------------------------------ api
    def register_app(
        self, app_id: str, weight: float = 1.0, max_cores: Optional[int] = None
    ) -> AppHandle:
        if app_id in self.apps:
            raise ValueError(f"app {app_id!r} already registered")
        app = AppHandle(app_id, weight=weight, max_cores=max_cores)
        self.apps[app_id] = app
        return app

    def unregister_app(self, app_id: str) -> None:
        app = self.apps.pop(app_id, None)
        if app is not None and app.cores_used:
            raise SimulationError(
                f"app {app_id!r} unregistered with {app.cores_used} cores in use"
            )
        self._pending = [p for p in self._pending if p.app.app_id != app_id]
        self._allocate()

    def request_container(
        self,
        app_id: str,
        vcores: int,
        memory: int,
        preferred: Sequence[str] = (),
    ) -> Event:
        """Returns an event succeeding with a :class:`ContainerGrant`."""
        app = self.apps[app_id]
        if vcores <= 0 or vcores > self.cores_per_node:
            raise ValueError(f"vcores {vcores} outside (0, {self.cores_per_node}]")
        if memory <= 0 or memory > self.memory_per_node:
            raise ValueError("memory outside node capacity")
        ev = Event(self.sim, name=f"container:{app_id}")
        self._seq += 1
        self._pending.append(
            _Pending(app, vcores, memory, tuple(preferred), ev, self._seq)
        )
        self._allocate()
        return ev

    def release_container(self, app_id: str, grant: ContainerGrant) -> None:
        app = self.apps[app_id]
        app.cores_used -= grant.vcores
        app.mem_used -= grant.memory
        if app.cores_used < 0 or app.mem_used < 0:
            raise SimulationError(f"container over-release by {app_id!r}")
        self.cores_free[grant.node_id] += grant.vcores
        self.mem_free[grant.node_id] += grant.memory
        self._allocate()

    @property
    def total_cores_free(self) -> int:
        return sum(self.cores_free.values())

    # -------------------------------------------------------------- internals
    def _eligible(self, p: _Pending) -> bool:
        app = p.app
        if app.max_cores is not None and app.cores_used + p.vcores > app.max_cores:
            return False
        return True

    def _find_node(self, p: _Pending) -> Optional[str]:
        dead = self._dead
        for n in p.preferred:
            if n in dead:
                continue
            if self.cores_free.get(n, 0) >= p.vcores and self.mem_free.get(n, 0) >= p.memory:
                return n
        best, best_free = None, -1
        for n in self.node_ids:
            if n in dead:
                continue
            if self.cores_free[n] >= p.vcores and self.mem_free[n] >= p.memory:
                if self.cores_free[n] > best_free:
                    best, best_free = n, self.cores_free[n]
        return best

    def _allocate(self) -> None:
        """Grant as much as possible, most-starved application first."""
        while True:
            candidates = [p for p in self._pending if self._eligible(p)]
            if not candidates:
                return
            # Most-starved app first; FIFO within an app (by seq).
            candidates.sort(
                key=lambda p: (p.app.cores_used / p.app.weight, p.seq)
            )
            granted = False
            for p in candidates:
                node = self._find_node(p)
                if node is None:
                    continue
                self._pending.remove(p)
                self.cores_free[node] -= p.vcores
                self.mem_free[node] -= p.memory
                p.app.cores_used += p.vcores
                p.app.mem_used += p.memory
                p.event.succeed(ContainerGrant(node, p.vcores, p.memory))
                granted = True
                break
            if not granted:
                return
