"""YARN substrate: Resource Manager, Fair Scheduler, containers.

Models the pieces of YARN the paper's evaluation depends on: weighted
fair sharing of CPU slots (Hadoop Fair Scheduler, Table 1), container
vcores/memory accounting per node (§7.1's 1-core/2GB map and
1-core/8GB reduce containers), and locality-preferring placement.
"""

from repro.yarnsim.fairscheduler import fair_shares
from repro.yarnsim.resourcemanager import AppHandle, ContainerGrant, ResourceManager

__all__ = ["AppHandle", "ContainerGrant", "ResourceManager", "fair_shares"]
