"""Weighted fair-share computation (Hadoop Fair Scheduler semantics).

Given application weights, per-application caps and demands, compute
each application's core entitlement by weighted water-filling: capacity
is divided in proportion to weights, and capacity an application cannot
use (cap or demand below its proportional share) is redistributed among
the rest.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["fair_shares"]


def fair_shares(
    capacity: float,
    weights: Mapping[str, float],
    caps: Mapping[str, float] | None = None,
    demands: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """Weighted max-min fair allocation of ``capacity``.

    ``caps`` and ``demands`` both upper-bound an app's share; missing
    entries mean unbounded.  The returned shares sum to at most
    ``capacity`` (less only if total demand is below capacity).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    for app, w in weights.items():
        if w <= 0:
            raise ValueError(f"weight of {app!r} must be positive")
    caps = caps or {}
    demands = demands or {}

    def limit(app: str) -> float:
        lim = min(caps.get(app, float("inf")), demands.get(app, float("inf")))
        if lim < 0:
            raise ValueError(f"negative cap/demand for {app!r}")
        return lim

    shares = {app: 0.0 for app in weights}
    active = {app for app in weights if limit(app) > 0}
    remaining = float(capacity)
    # Water-fill: give every active app its weighted slice; freeze the
    # ones that hit their limit and redistribute until stable.
    while active and remaining > 1e-12:
        total_w = sum(weights[a] for a in active)
        saturated = set()
        for app in list(active):
            slice_ = remaining * weights[app] / total_w
            room = limit(app) - shares[app]
            if slice_ >= room - 1e-12:
                shares[app] += room
                saturated.add(app)
        if not saturated:
            for app in active:
                shares[app] += remaining * weights[app] / total_w
            break
        remaining = capacity - sum(shares.values())
        active -= saturated
    return shares
