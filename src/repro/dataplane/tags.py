"""I/O classes and application tags (§3).

Every I/O issued anywhere in the big-data stack is tagged with the
application it belongs to and the application's I/O service weight, so
the interposed schedulers can differentiate competing applications
without any application modification.

A tag may additionally carry a :class:`~repro.dataplane.scope.
CancelScope` (``scoped()``): requests submitted under a scoped tag are
tracked by that scope and withdrawn from the scheduler queues when the
issuing task dies.  The scope is transport metadata — it never affects
tag equality, hashing or the scheduling arithmetic.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.scope import CancelScope

__all__ = ["IOClass", "IOTag"]


class IOClass(enum.Enum):
    """The three kinds of I/O IBIS interposes on a datanode (§3)."""

    PERSISTENT = "persistent"      # HDFS reads (map input) / writes (reduce output)
    INTERMEDIATE = "intermediate"  # local-FS spill/merge of in-progress data
    NETWORK = "network"            # shuffle servlet reads serving reduce fetches


@dataclass(frozen=True)
class IOTag:
    """Application identity carried in the header of each data request.

    The job scheduler hands the application its id; all parallel tasks
    tag their I/Os with it (§3, last paragraph).  Only relative weights
    matter (§4).
    """

    app_id: str
    weight: float = 1.0
    scope: Optional["CancelScope"] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self):
        if not self.app_id:
            raise ValueError("app_id must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    def scoped(self, scope: "CancelScope") -> "IOTag":
        """The same tag bound to a cancellation scope."""
        return dataclasses.replace(self, scope=scope)
