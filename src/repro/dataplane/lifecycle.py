"""The request lifecycle state machine.

Every :class:`~repro.dataplane.request.IORequest` walks a fixed state
graph, stamping the simulation time of each transition::

    SUBMITTED ──> QUEUED ──> DISPATCHED ──> COMPLETED
        │            │            └───────> FAILED
        └────────────┴──────────────────────> CANCELLED

* ``SUBMITTED`` — the request object exists, tagged, not yet accepted
  by any scheduler.
* ``QUEUED`` — an interposed scheduler accepted it (tags assigned for
  SFQ-family schedulers).
* ``DISPATCHED`` — admitted to the storage device (one of the D
  outstanding slots).
* ``COMPLETED`` / ``FAILED`` — the device finished servicing it, or an
  injected fault killed the device I/O.
* ``CANCELLED`` — withdrawn before dispatch (its issuing task died, or
  its scope was already cancelled at submission).

Illegal transitions raise :class:`LifecycleError` — a dispatched
request can no longer be cancelled, a terminal request cannot move.
The per-transition timestamps are what the span accounting
(:mod:`repro.dataplane.spans`) decomposes into queue wait vs device
service.
"""

from __future__ import annotations

import enum

from repro.simcore import RequestCancelled, SimulationError

__all__ = ["LifecycleError", "RequestCancelled", "RequestState"]


class RequestState(enum.Enum):
    """Where a request currently is on the submission path."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    DISPATCHED = "dispatched"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self._terminal


_TERMINAL = frozenset(
    {RequestState.COMPLETED, RequestState.FAILED, RequestState.CANCELLED}
)

#: Allowed transitions: state -> states reachable from it.
TRANSITIONS: dict[RequestState, frozenset[RequestState]] = {
    RequestState.SUBMITTED: frozenset(
        {RequestState.QUEUED, RequestState.CANCELLED}
    ),
    RequestState.QUEUED: frozenset(
        {RequestState.DISPATCHED, RequestState.CANCELLED}
    ),
    RequestState.DISPATCHED: frozenset(
        {RequestState.COMPLETED, RequestState.FAILED}
    ),
    RequestState.COMPLETED: frozenset(),
    RequestState.FAILED: frozenset(),
    RequestState.CANCELLED: frozenset(),
}

# Denormalize the tables onto the members themselves: every request
# transition checks ``to in state.allowed`` (IORequest._advance), and
# at a million requests per run the extra dict hop is measurable.
for _state in RequestState:
    _state.allowed = TRANSITIONS[_state]
    _state._terminal = _state in _TERMINAL
del _state


class LifecycleError(SimulationError):
    """An illegal lifecycle transition (or cancellation misuse)."""
