"""Shared chunking/windowing primitives for every streaming entry point.

The DataXceiver of a real datanode streams a block as a pipeline of
packets: several chunks are in flight per stream (readahead for reads,
write-behind for writes).  HDFS block streams, local intermediate
spill/merge and the shuffle servlet all pipeline the same way — so the
primitive lives here, in the dataplane, and the per-protocol modules
(:mod:`repro.hdfs.datanode`, :mod:`repro.localfs.filesystem`) are thin
adapters over it.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.dataplane.request import IORequest
from repro.dataplane.tags import IOClass, IOTag
from repro.simcore import Event, Simulator

__all__ = ["iter_chunks", "request_stream", "windowed_stream"]


def iter_chunks(total: int, chunk: int) -> Iterator[int]:
    """Yield chunk sizes covering ``total`` bytes."""
    if total <= 0:
        raise ValueError("total must be positive")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    remaining = total
    while remaining > 0:
        size = min(chunk, remaining)
        yield size
        remaining -= size


def windowed_stream(
    sim: Simulator,
    chunk_events: Iterator[Callable[[], Event]],
    window: int,
):
    """Generator: drive chunk operations keeping up to ``window`` in flight.

    Each element of ``chunk_events`` is a thunk producing the event for
    one chunk (a device completion, or a sub-process for multi-leg
    chunks).  Completes when every chunk has completed.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    active: list[Event] = []
    for make in chunk_events:
        while len(active) >= window:
            yield sim.any_of(active)
            active = [e for e in active if not e.processed]
        active.append(make())
    if active:
        yield sim.all_of(active)


def request_stream(
    sim: Simulator,
    submit: Callable[[IORequest], Event],
    tag: IOTag,
    op: str,
    nbytes: int,
    io_class: IOClass,
    chunk: int,
    window: int,
):
    """Generator: stream ``nbytes`` as windowed single-leg requests.

    The common case — every chunk is one tagged request submitted at
    one interposition point (``submit`` is typically
    ``DataNodeIO.submit`` or ``IOPath.submit``).  Multi-leg streams
    (HDFS replication pipelines, remote reads) compose
    :func:`iter_chunks` + :func:`windowed_stream` directly.
    """

    def make(size: int) -> Callable[[], Event]:
        return lambda: submit(IORequest(sim, tag, op, size, io_class))

    thunks = (make(s) for s in iter_chunks(nbytes, chunk))
    yield from windowed_stream(sim, thunks, window)
    return nbytes
