"""The dataplane: one submission path for every I/O in the stack.

IBIS's contribution (§3) is a *single* interposition concept applied at
three I/O points.  This package owns that path end to end —

    tag → interposition point → scheduler queue → dispatch → device
        → completion

— so HDFS block streams, local intermediate I/O and the shuffle
servlet are thin adapters over one set of primitives:

* :mod:`~repro.dataplane.tags` — :class:`IOClass`/:class:`IOTag`, the
  application identity every request carries (§3).
* :mod:`~repro.dataplane.lifecycle` — the request state machine
  (``SUBMITTED → QUEUED → DISPATCHED → COMPLETED | FAILED |
  CANCELLED``) with a timestamp per transition.
* :mod:`~repro.dataplane.request` — :class:`IORequest`, the unit of
  scheduling, walked through the lifecycle by its scheduler.
* :mod:`~repro.dataplane.scope` — :class:`CancelScope`: first-class
  cancellation of a dead task's still-queued requests, with exact
  SFQ tag rollback.
* :mod:`~repro.dataplane.streams` — the shared chunking/windowing
  primitives every streaming entry point pipelines through.
* :mod:`~repro.dataplane.path` — :class:`IOPath`: one (node, class)
  interposition point composing scheduler + device + broker client.
* :mod:`~repro.dataplane.spans` — :class:`SpanRecorder`: queue-wait vs
  device-service percentiles from the lifecycle timestamps.

Layering: the dataplane sits *below* :mod:`repro.core` (schedulers
import requests and tags from here; ``IOPath.build`` resolves concrete
scheduler classes lazily through the registry).
"""

from repro.dataplane.lifecycle import (
    TRANSITIONS,
    LifecycleError,
    RequestCancelled,
    RequestState,
)
from repro.dataplane.scope import CancelScope
from repro.dataplane.tags import IOClass, IOTag
from repro.dataplane.request import IORequest
from repro.dataplane.streams import iter_chunks, request_stream, windowed_stream
from repro.dataplane.spans import SpanRecorder, percentile_summary
from repro.dataplane.path import IOPath

__all__ = [
    "CancelScope",
    "IOClass",
    "IOPath",
    "IORequest",
    "IOTag",
    "LifecycleError",
    "RequestCancelled",
    "RequestState",
    "SpanRecorder",
    "TRANSITIONS",
    "iter_chunks",
    "percentile_summary",
    "request_stream",
    "windowed_stream",
]
