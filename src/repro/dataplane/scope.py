"""Cancellation scopes: withdraw a dead task's queued I/O.

A :class:`CancelScope` groups the in-flight requests of one unit of
work (one task attempt).  Tasks tag their I/O with
``job.tag.scoped(scope)``; schedulers register every accepted request
with the scope and de-register it at any terminal state.  When the
task dies, ``scope.cancel()`` withdraws every request that is still
*queued* — dispatched requests are already at the device and run to
completion; their results are simply unobserved.

Cancellation walks the live set in **reverse submission order** so
SFQ finish-tag rollback unwinds each app's tag chain exactly (the last
request enqueued is the app's current ``F_prev``; removing it restores
the previous one, and so on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dataplane.lifecycle import RequestState

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataplane.request import IORequest

__all__ = ["CancelScope"]


class CancelScope:
    """Tracks the live requests of one task attempt for cancellation."""

    __slots__ = ("name", "cancelled", "cancelled_requests", "_live")

    def __init__(self, name: str = ""):
        self.name = name
        self.cancelled = False
        #: requests withdrawn from scheduler queues by :meth:`cancel`
        self.cancelled_requests = 0
        # Insertion-ordered live set (dict keyed by identity): O(1)
        # register/discard, deterministic iteration on cancel.
        self._live: dict["IORequest", None] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else f"{len(self._live)} live"
        return f"<CancelScope {self.name or '?'} {state}>"

    @property
    def live(self) -> int:
        """Requests currently registered (queued or dispatched)."""
        return len(self._live)

    def register(self, req: "IORequest") -> None:
        """Track a request accepted by a scheduler under this scope."""
        self._live[req] = None

    def _discard(self, req: "IORequest") -> None:
        """Stop tracking a request that reached a terminal state."""
        self._live.pop(req, None)

    def cancel(self) -> int:
        """Withdraw every still-queued request; returns how many.

        Idempotent.  After this, any *new* submission under a tag bound
        to this scope is refused at the interposition point (failed
        with :class:`~repro.simcore.RequestCancelled` before it touches
        a queue).
        """
        self.cancelled = True
        withdrawn = 0
        # Reverse submission order: exact SFQ finish-tag unwinding.
        for req in reversed(list(self._live)):
            if req.state is RequestState.QUEUED:
                req._sched.cancel(req)
                withdrawn += 1
        self.cancelled_requests += withdrawn
        return withdrawn
