"""Span accounting: queue-wait vs device-service decomposition.

A :class:`SpanRecorder` subscribes to the ``span`` telemetry kind —
which is also what *enables* span publication: schedulers only build
:class:`~repro.telemetry.Span` events when someone subscribed, so runs
without a recorder (or trace sink) pay nothing.  It aggregates one
sample list per (app, I/O class) and summarises them as
p50/p95/p99/mean — the per-request delay decomposition adaptive
policies act on (cf. BoPF's per-queue service accounting).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.telemetry import SPAN, Span, TelemetryBus

__all__ = ["SpanRecorder", "percentile_summary"]

#: The percentiles a summary reports, as (label, q) pairs.
PERCENTILES = (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))


def percentile_summary(samples: "list[float]") -> dict[str, float]:
    """count/mean/p50/p95/p99 of one sample list (all 0.0 if empty)."""
    if not samples:
        return {"count": 0, "mean": 0.0,
                **{label: 0.0 for label, _q in PERCENTILES}}
    arr = np.asarray(samples, dtype=float)
    out: dict[str, Any] = {
        "count": int(arr.size),
        "mean": float(arr.mean()),
    }
    for label, q in PERCENTILES:
        out[label] = float(np.percentile(arr, q))
    return out


class SpanRecorder:
    """Aggregates span events into per-(app, class) latency samples."""

    def __init__(self, bus: TelemetryBus, source: Optional[str] = None):
        #: (app_id, io_class) -> {"queue_wait": [...], "service": [...]}
        self.samples: dict[tuple[str, str], dict[str, list[float]]] = {}
        #: (app_id, io_class) -> terminal-state counts
        self.outcomes: dict[tuple[str, str], dict[str, int]] = {}
        self.records = 0
        bus.subscribe(SPAN, self._on_span, source=source)

    def _on_span(self, ev: Span) -> None:
        key = (ev.app_id, ev.io_class)
        outcomes = self.outcomes.setdefault(key, {})
        outcomes[ev.state] = outcomes.get(ev.state, 0) + 1
        self.records += 1
        if ev.state != "completed":
            return  # failed/cancelled spans count as outcomes only
        samples = self.samples.setdefault(
            key, {"queue_wait": [], "service": []}
        )
        samples["queue_wait"].append(ev.queue_wait)
        samples["service"].append(ev.service)

    def summary(self) -> dict[str, dict[str, dict[str, Any]]]:
        """``{app: {io_class: {queue_wait: {...}, service: {...},
        outcomes: {...}}}}`` with p50/p95/p99/mean per distribution
        (completed requests only; other terminal states appear in
        ``outcomes``).  JSON-ready and deterministic."""
        out: dict[str, dict[str, dict[str, Any]]] = {}
        for (app, io_class) in sorted(self.outcomes):
            samples = self.samples.get(
                (app, io_class), {"queue_wait": [], "service": []}
            )
            out.setdefault(app, {})[io_class] = {
                "queue_wait": percentile_summary(samples["queue_wait"]),
                "service": percentile_summary(samples["service"]),
                "outcomes": dict(sorted(
                    self.outcomes[(app, io_class)].items()
                )),
            }
        return out
