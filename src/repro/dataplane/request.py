"""The unit of scheduling: a tagged I/O request with a lifecycle.

An :class:`IORequest` is created ``SUBMITTED`` and walked through the
:mod:`~repro.dataplane.lifecycle` state machine by the scheduler it is
submitted to, stamping the simulation time of every transition.  The
timestamps are the raw material of span accounting: ``queue_wait`` is
admission→dispatch, ``service_time`` is dispatch→completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dataplane.lifecycle import LifecycleError, RequestState
from repro.dataplane.tags import IOClass, IOTag
from repro.simcore import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import IOScheduler

__all__ = ["IORequest"]


class IORequest:
    """One tagged I/O, queued at an interposed scheduler.

    ``completion`` succeeds (with the device's ``IOCompletion``) once
    the device has serviced the request, or fails — with the device
    fault, or with :class:`~repro.simcore.RequestCancelled` if the
    request was withdrawn before dispatch.  ``start_tag``/``finish_tag``
    are filled in by SFQ-family schedulers; ``prev_finish`` remembers
    the app's previous finish tag so cancellation can roll the tag
    chain back.
    """

    __slots__ = (
        "tag",
        "op",
        "nbytes",
        "io_class",
        "state",
        "completion",
        "start_tag",
        "finish_tag",
        "prev_finish",
        "t_submitted",
        "t_queued",
        "t_dispatched",
        "t_finished",
        "_sched",
    )

    def __init__(
        self,
        sim: Simulator,
        tag: IOTag,
        op: str,
        nbytes: int,
        io_class: IOClass = IOClass.PERSISTENT,
    ):
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        self.tag = tag
        self.op = op
        self.nbytes = int(nbytes)
        self.io_class = io_class
        self.state: RequestState = RequestState.SUBMITTED
        self.completion: Event = Event(sim, name=f"ioreq:{tag.app_id}:{op}")
        self.start_tag: float = 0.0
        self.finish_tag: float = 0.0
        self.prev_finish: float = 0.0
        self.t_submitted: float = sim.now
        self.t_queued: Optional[float] = None
        self.t_dispatched: Optional[float] = None
        self.t_finished: Optional[float] = None
        self._sched: Optional["IOScheduler"] = None

    # ------------------------------------------------------------- identity
    @property
    def app_id(self) -> str:
        return self.tag.app_id

    @property
    def weight(self) -> float:
        return self.tag.weight

    @property
    def submit_time(self) -> float:
        """Creation time (compat alias for ``t_submitted``)."""
        return self.t_submitted

    # ------------------------------------------------------------ lifecycle
    def _advance(self, to: RequestState, now: float) -> None:
        if to not in self.state.allowed:
            raise LifecycleError(
                f"illegal transition {self.state.value} -> {to.value} "
                f"for {self!r} at t={now:g}"
            )
        self.state = to

    def mark_queued(self, now: float, scheduler: "IOScheduler") -> None:
        """A scheduler accepted the request into its queue."""
        self._advance(RequestState.QUEUED, now)
        self.t_queued = now
        self._sched = scheduler

    def mark_dispatched(self, now: float) -> None:
        """The request was admitted to the storage device."""
        self._advance(RequestState.DISPATCHED, now)
        self.t_dispatched = now

    def mark_completed(self, now: float) -> None:
        self._advance(RequestState.COMPLETED, now)
        self._finish(now)

    def mark_failed(self, now: float) -> None:
        self._advance(RequestState.FAILED, now)
        self._finish(now)

    def mark_cancelled(self, now: float) -> None:
        self._advance(RequestState.CANCELLED, now)
        self._finish(now)

    def _finish(self, now: float) -> None:
        self.t_finished = now
        scope = self.tag.scope
        if scope is not None:
            scope._discard(self)

    # ---------------------------------------------------------------- spans
    @property
    def queue_wait(self) -> float:
        """Seconds spent queued: admission to dispatch (or to
        withdrawal, for cancelled requests).  0.0 before dispatch and
        for requests refused at submission."""
        if self.t_queued is None:
            return 0.0
        if self.t_dispatched is not None:
            return self.t_dispatched - self.t_queued
        if self.t_finished is not None:
            return self.t_finished - self.t_queued
        return 0.0

    @property
    def service_time(self) -> float:
        """Seconds of device service: dispatch to completion/failure.
        0.0 until the device finished with the request."""
        if self.t_dispatched is None or self.t_finished is None:
            return 0.0
        return self.t_finished - self.t_dispatched

    def timestamps(self) -> dict[str, float]:
        """The lifecycle transition times recorded so far."""
        out = {"submitted": self.t_submitted}
        for key, value in (
            ("queued", self.t_queued),
            ("dispatched", self.t_dispatched),
            (self.state.value if self.state.terminal else "", self.t_finished),
        ):
            if key and value is not None:
                out[key] = value
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<IORequest {self.tag.app_id} {self.op} {self.nbytes}B "
            f"{self.io_class.value} {self.state.value}>"
        )
