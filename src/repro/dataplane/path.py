"""One interposition point: scheduler + device (+ broker client).

A datanode hosts three :class:`IOPath` objects — one per
:class:`~repro.dataplane.tags.IOClass` (§3).  Each composes the pieces
the submission path crosses after the tag: the interposed scheduler,
the storage device it dispatches to, and (for coordinated policies)
the Scheduling Broker client that applies DSFQ delays to the
scheduler.  :class:`~repro.core.interposition.DataNodeIO` is three of
these; everything that used to live in its constructor — the
registry-driven build, the ``manages_classes`` native fallback, broker
wiring — is :meth:`IOPath.build`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dataplane.request import IORequest
from repro.dataplane.tags import IOClass
from repro.simcore import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import IOScheduler
    from repro.core.broker import BrokerClient, SchedulingBroker
    from repro.core.policy import PolicySpec
    from repro.storage import StorageDevice
    from repro.telemetry import TelemetryBus

__all__ = ["IOPath"]


class IOPath:
    """The full submission path of one (node, I/O class) pair."""

    __slots__ = (
        "sim",
        "node_id",
        "io_class",
        "scheduler",
        "device",
        "broker_client",
        "fallback",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        io_class: IOClass,
        scheduler: "IOScheduler",
        device: "StorageDevice",
        broker_client: Optional["BrokerClient"] = None,
        fallback: bool = False,
    ):
        self.sim = sim
        self.node_id = node_id
        self.io_class = io_class
        self.scheduler = scheduler
        self.device = device
        self.broker_client = broker_client
        #: True when the policy's scheduler cannot manage this class and
        #: the path runs the native passthrough instead (cgroups §6).
        self.fallback = fallback

    @property
    def name(self) -> str:
        return f"{self.node_id}:{self.io_class.value}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = " (native fallback)" if self.fallback else ""
        return f"<IOPath {self.name} via {self.scheduler.algorithm}{extra}>"

    # ------------------------------------------------------------------ api
    def submit(self, req: IORequest) -> Event:
        """Queue a tagged request of this path's class; returns its
        completion event."""
        if req.io_class is not self.io_class:
            raise ValueError(
                f"request of class {req.io_class.value} submitted to "
                f"{self.name}"
            )
        return self.scheduler.submit(req)

    # ---------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        sim: Simulator,
        node_id: str,
        io_class: IOClass,
        spec: "PolicySpec",
        device: "StorageDevice",
        broker: Optional["SchedulingBroker"] = None,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> "IOPath":
        """Construct the path a :class:`~repro.core.policy.PolicySpec`
        describes, through the policy registry.

        A scheduler whose declared ``manages_classes`` does not cover
        ``io_class`` falls back to native at this point — which is
        exactly how cgroups ends up managing only the INTERMEDIATE
        class (§6).  A broker client is attached when the spec is
        coordinated and the scheduler supports it.
        """
        # Imported here: the dataplane is a lower layer than repro.core
        # (core imports it), so scheduler construction resolves lazily.
        from repro.core.base import NativeScheduler
        from repro.core.broker import BrokerClient

        name = f"{node_id}:{io_class.value}"
        info = spec.info
        managed = info.manages(io_class)
        if managed:
            scheduler = info.build(sim, device, spec, name=name,
                                   telemetry=telemetry)
        else:
            # The scheduler cannot see this class's I/Os (cgroups only
            # sees container-issued local I/O, §6): run it unmanaged.
            scheduler = NativeScheduler(sim, device, name=name,
                                        telemetry=telemetry)
        broker_client = None
        if (
            spec.coordinated
            and broker is not None
            and info.supports_coordination
            and managed
        ):
            broker_client = BrokerClient(
                sim,
                broker,
                scheduler,
                client_id=name,
                period=spec.sync_period,
                scope=io_class.value,
            )
        return cls(sim, node_id, io_class, scheduler, device,
                   broker_client=broker_client, fallback=not managed)
