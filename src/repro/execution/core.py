"""The one execution core every run path routes through.

``ExecutionCore.run`` takes an ordered batch of submissions (bare
scenarios coerce) and returns their manifests **in submission order**:

1. cacheable submissions are looked up in the optional persistent
   :class:`~repro.execution.store.ResultStore` (and deduplicated within
   the batch — the same content hash executes at most once);
2. the misses fan out over the shared worker pool
   (:func:`~repro.execution.pool.run_specs`, activated by
   :func:`~repro.execution.pool.parallel_jobs`);
3. fresh manifests are persisted before the batch returns, so an
   interrupted sweep grid resumes with only its missing cells.

Figures, the ``run scenario`` CLI (``--jobs N`` and ``--sweep`` grids),
and the scenario service all call exactly this method; there is no
other dispatch path.  Without a store the core degrades to the plain
deterministic fan-out, byte-identical to running
:func:`~repro.scenario.runner.run_scenario` in a loop.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.execution.pool import RunSpec, run_specs
from repro.execution.store import ResultStore
from repro.execution.submission import Submission, as_submission
from repro.scenario.runner import RunManifest, run_scenario
from repro.scenario.spec import Scenario

__all__ = ["ExecutionCore", "execute_scenarios"]


class ExecutionCore:
    """Submission → (store | worker pool) → manifest, in order."""

    def __init__(self, store: Optional[ResultStore] = None):
        self.store = store
        #: batch-level counters (store-level hit/miss live on the store)
        self.cache_hits = 0
        self.executed = 0

    # ---------------------------------------------------------------- run
    def run(
        self, submissions: Sequence[Union[Submission, Scenario]]
    ) -> list[RunManifest]:
        """Run a batch; manifests come back in submission order.

        A submission whose ``trace_path`` is a live stream (not a path)
        is not picklable and therefore runs in-process even under an
        active pool — pass paths when fanning traced runs out.
        """
        subs = [as_submission(s) for s in submissions]
        manifests: list[Optional[RunManifest]] = [None] * len(subs)

        # Store lookups + within-batch dedup (only with a store: the
        # bare fan-out keeps strict one-run-per-submission semantics).
        pending: list[int] = []
        first_of: dict[str, int] = {}
        aliases: list[tuple[int, int]] = []
        for i, sub in enumerate(subs):
            if self.store is not None and sub.cacheable:
                key = sub.content_hash
                prior = first_of.get(key)
                if prior is not None:
                    aliases.append((i, prior))
                    self.cache_hits += 1
                    continue
                hit = self.store.get(key)
                if hit is not None:
                    manifests[i] = hit
                    self.cache_hits += 1
                    continue
                first_of[key] = i
            pending.append(i)

        specs = []
        for i in pending:
            sub = subs[i]
            kwargs = {}
            if sub.trace_path is not None:
                kwargs["trace_path"] = sub.trace_path
            specs.append(
                RunSpec.of(run_scenario, sub.scenario, label=sub.label,
                           **kwargs)
            )
        for i, manifest in zip(pending, run_specs(specs)):
            manifests[i] = manifest
            self.executed += 1
            if self.store is not None and subs[i].cacheable:
                self.store.put(manifest)
        for i, src in aliases:
            manifests[i] = manifests[src]
        return manifests  # type: ignore[return-value]

    def submit(self, submission: Union[Submission, Scenario]) -> RunManifest:
        """Run one submission (the service's per-message entry point)."""
        return self.run([submission])[0]


def execute_scenarios(
    scenarios: Sequence[Union[Submission, Scenario]],
    store: Optional[ResultStore] = None,
) -> list[RunManifest]:
    """One-shot convenience: a throwaway core over an optional store."""
    return ExecutionCore(store=store).run(scenarios)
