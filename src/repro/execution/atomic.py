"""Crash- and concurrency-safe JSON writes.

Both persistent caches in this repo — the calibration cache
(:mod:`repro.experiments.harness`) and the result store
(:mod:`repro.execution.store`) — are shared between concurrent worker
processes.  A reader must never observe a torn file, so every write
goes through :func:`atomic_write_json`: the payload is serialised into
a unique temp file in the destination directory and published with
``os.replace`` (atomic on POSIX within one filesystem).  Concurrent
writers race benignly — last rename wins, every observable state is a
complete document.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

__all__ = ["atomic_write_json"]


def atomic_write_json(path: "pathlib.Path | str", payload: Any) -> None:
    """Serialise ``payload`` to ``path`` atomically (temp file + rename).

    Creates parent directories as needed.  On any failure the temp file
    is removed, so a crashed writer leaves no debris a reader could
    mistake for an entry.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
