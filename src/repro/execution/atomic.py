"""Crash- and concurrency-safe JSON writes.

Both persistent caches in this repo — the calibration cache
(:mod:`repro.experiments.harness`) and the result store
(:mod:`repro.execution.store`) — are shared between concurrent worker
processes, and the scheduler's submission journal
(:mod:`repro.service.journal`) must survive power loss, not just
process death.  A reader must never observe a torn file, so every write
goes through the same path: the payload is serialised into a unique
temp file in the destination directory, fsynced, published with
``os.replace`` (atomic on POSIX within one filesystem), and then the
*containing directory* is fsynced so the rename itself is durable — an
entry that a reader has seen cannot vanish when the machine loses
power.  Concurrent writers race benignly — last rename wins, every
observable state is a complete document.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

__all__ = ["atomic_write_json", "atomic_write_text", "fsync_dir"]


def fsync_dir(dirpath: "pathlib.Path | str") -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: platforms/filesystems that cannot fsync a directory
    (or cannot open one read-only) are silently tolerated — the rename
    is still atomic, only its durability window widens.
    """
    try:
        fd = os.open(dirpath, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_publish(path: pathlib.Path, write) -> None:
    """Temp file in ``path.parent`` → ``write(fh)`` → fsync → rename →
    directory fsync.  On any failure the temp file is removed, so a
    crashed writer leaves no debris a reader could mistake for an
    entry."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            write(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: "pathlib.Path | str", payload: Any) -> None:
    """Serialise ``payload`` to ``path`` atomically and durably."""
    _atomic_publish(
        pathlib.Path(path),
        lambda fh: json.dump(payload, fh, indent=2, sort_keys=True),
    )


def atomic_write_text(path: "pathlib.Path | str", text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably (the journal
    compactor's rewrite path)."""
    _atomic_publish(pathlib.Path(path), lambda fh: fh.write(text))
