"""The shared worker-pool backend: parallel fan-out of independent runs.

Every paper artifact is a set of *independent* deterministic
simulations: each run builds its own :class:`~repro.simcore.Simulator`
from an explicit seed, so runs can execute in any process in any order
without changing their results.  This module is the one pool everything
routes through:

* **across experiments** — ``python -m repro.experiments.run all
  --jobs N`` submits whole figures to the pool;
* **within a figure / across a sweep grid** —
  :class:`~repro.execution.core.ExecutionCore` expresses each scenario
  submission as a picklable :class:`RunSpec` and executes batches with
  :func:`run_specs`;
* **under the scenario service** — the scheduler's warm workers are
  this pool's processes, reused across batches so per-profile
  calibration caches stay hot.

Determinism guarantee
---------------------
``run_specs`` merges results **by spec order**, never by completion
order, and workers share nothing with each other.  Parallel output is
therefore identical to serial output — byte for byte once formatted.

The pool is activated with the :func:`parallel_jobs` context manager;
outside it (or with ``jobs=1``) ``run_specs`` degrades to a plain
serial loop, so calling code never has to care which mode it is in.
Worker processes inherit an activated pool marker through ``fork`` but
never use it: :func:`run_specs` checks the owning PID, so nested
fan-out inside a worker silently runs serially instead of deadlocking.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence

__all__ = ["RunSpec", "execute", "run_specs", "parallel_jobs", "active_jobs",
           "default_jobs"]


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one independent simulation run.

    ``fn`` must be a module-level callable (pickled by reference);
    ``kwargs`` is stored as a sorted tuple of pairs so specs are
    hashable and their identity is order-insensitive.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: tuple = ()
    label: str = ""

    @classmethod
    def of(cls, fn: Callable[..., Any], *args: Any, label: str = "",
           **kwargs: Any) -> "RunSpec":
        return cls(fn=fn, args=tuple(args),
                   kwargs=tuple(sorted(kwargs.items())),
                   label=label or getattr(fn, "__name__", "run"))


def execute(spec: RunSpec) -> Any:
    """Run one spec (this is what worker processes execute)."""
    return spec.fn(*spec.args, **dict(spec.kwargs))


# The shared pool: one executor per top-level `parallel_jobs` block,
# tagged with the PID that created it so forked workers ignore it.
_pool: Optional[ProcessPoolExecutor] = None
_pool_pid: Optional[int] = None
_jobs: int = 1


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: every core the OS gives us."""
    return os.cpu_count() or 1


def active_jobs() -> int:
    """Worker count of the live pool (1 = serial)."""
    return _jobs if _pool is not None and _pool_pid == os.getpid() else 1


@contextmanager
def parallel_jobs(jobs: int) -> Iterator[None]:
    """Activate a shared worker pool for :func:`run_specs` in this block.

    ``jobs <= 1`` is a no-op; nesting inside an active pool keeps the
    outer pool (the inner block simply reuses it).
    """
    global _pool, _pool_pid, _jobs
    jobs = int(jobs)
    if jobs <= 1 or active_jobs() > 1:
        yield
        return
    pool = ProcessPoolExecutor(max_workers=jobs)
    _pool, _pool_pid, _jobs = pool, os.getpid(), jobs
    try:
        yield
    finally:
        _pool, _pool_pid, _jobs = None, None, 1
        pool.shutdown()


def run_specs(specs: Sequence[RunSpec]) -> list[Any]:
    """Execute specs — in parallel when a pool is active — and return
    their results **in spec order** (the determinism guarantee)."""
    specs = list(specs)
    pool = _pool if _pool is not None and _pool_pid == os.getpid() else None
    if pool is None or len(specs) < 2:
        return [execute(s) for s in specs]
    return list(pool.map(execute, specs))
