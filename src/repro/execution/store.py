"""Persistent, content-hash-keyed store of run manifests.

One entry per scenario :meth:`~repro.scenario.spec.Scenario.content_hash`,
written once under ``$REPRO_CACHE_DIR`` (the same root the calibration
cache resolves — see
:func:`~repro.experiments.harness.calibration_cache_dir`).  Because a
scenario's manifest is deterministic (``metrics_hash`` covers every
deterministic field), a stored entry *is* the run: repeated submissions
are cache hits, and an interrupted ``--sweep`` grid resumes by
re-running only the cells with no entry.

Entries carry a schema version.  Bump :data:`RESULT_SCHEMA` whenever a
modelling change alters what a content hash produces — old entries then
fail loudly (:class:`ResultStoreError`) instead of serving stale
results.  Writes are atomic and durable
(:func:`~repro.execution.atomic.atomic_write_json`), so concurrent
workers never tear an entry and a published entry survives power loss.

The store does not grow forever: :meth:`ResultStore.evict` trims it to
a byte and/or entry budget, LRU by mtime — a hit touches the entry's
mtime, so recently *read* results survive eviction, not just recently
written ones.  ``python -m repro.experiments.run store gc`` drives it
from the shell and the scheduler triggers it on a size threshold
(``serve --store-max-bytes``).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.execution.atomic import atomic_write_json
from repro.scenario.runner import RunManifest

__all__ = [
    "RESULT_SCHEMA",
    "EvictionReport",
    "ResultStore",
    "ResultStoreError",
]

#: Entry format version.  Bump on modelling changes that alter the
#: manifest a given scenario content hash produces.
RESULT_SCHEMA = 1


class ResultStoreError(RuntimeError):
    """A store entry exists but cannot be used by this build."""


@dataclass
class EvictionReport:
    """What one :meth:`ResultStore.evict` pass did (or would do)."""

    removed: list[str] = field(default_factory=list)
    freed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0
    dry_run: bool = False


class ResultStore:
    """Filesystem-backed manifest store, one JSON entry per content hash.

    ``get``/``put`` are the whole interface the execution core needs;
    ``hits``/``misses``/``corrupt`` count this process's lookups (the
    service's ``stats`` op reports them — ``corrupt`` counts misses
    caused by an unreadable or non-JSON entry, which would otherwise be
    silent re-executions).
    """

    def __init__(self, root: "pathlib.Path | str"):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evicted = 0

    @classmethod
    def default(cls) -> "ResultStore":
        """The store under the shared cache root (``$REPRO_CACHE_DIR``,
        ``$IBIS_CACHE_DIR``, or ``~/.cache/ibis-repro``)."""
        from repro.experiments.harness import calibration_cache_dir

        return cls(calibration_cache_dir() / "results")

    # ------------------------------------------------------------- layout
    def path_for(self, content_hash: str) -> pathlib.Path:
        return self.root / f"run-{content_hash}.json"

    def keys(self) -> Iterator[str]:
        """Content hashes with a stored entry."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("run-*.json")):
            yield path.stem[len("run-"):]

    def __contains__(self, content_hash: str) -> bool:
        return self.path_for(content_hash).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------- access
    def get(self, content_hash: str) -> Optional[RunManifest]:
        """The stored manifest, or ``None`` on a miss.

        A corrupt entry (unreadable, not JSON) counts as a miss — the
        run re-executes and overwrites it — but increments ``corrupt``
        so operators can see it happening.  An entry with an *unknown
        schema version* raises :class:`ResultStoreError` instead: the
        data is intact but this build must not interpret it.
        """
        path = self.path_for(content_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            self.corrupt += 1
            return None
        try:
            data = json.loads(text)
        except ValueError:
            self.misses += 1
            self.corrupt += 1
            return None
        if not isinstance(data, dict) or data.get("schema") != RESULT_SCHEMA:
            schema = data.get("schema") if isinstance(data, dict) else None
            keys = sorted(data) if isinstance(data, dict) else []
            raise ResultStoreError(
                f"result-store entry {path} has schema version {schema!r} "
                f"but this build reads version {RESULT_SCHEMA}; entry keys: "
                f"{keys or '(not an object)'} — delete the entry (or the "
                f"store directory {self.root}) to re-run the scenario"
            )
        try:
            manifest = RunManifest.from_dict(data["manifest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultStoreError(
                f"result-store entry {path} (schema {RESULT_SCHEMA}) does "
                f"not parse as a RunManifest: {exc}"
            ) from exc
        self.hits += 1
        try:
            os.utime(path)  # LRU: a read keeps the entry warm
        except OSError:
            pass
        return manifest

    def put(self, manifest: RunManifest) -> pathlib.Path:
        """Persist a manifest under its scenario's content hash."""
        path = self.path_for(manifest.scenario_hash)
        atomic_write_json(
            path, {"schema": RESULT_SCHEMA, "manifest": manifest.to_dict()}
        )
        return path

    def discard(self, content_hash: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            os.unlink(self.path_for(content_hash))
            return True
        except OSError:
            return False

    # ----------------------------------------------------------- budgeting
    def entries(self) -> list[tuple[str, float, int]]:
        """``(content_hash, mtime, size_bytes)`` per entry, oldest
        first — the eviction order."""
        out = []
        if not self.root.is_dir():
            return out
        for path in self.root.glob("run-*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted/replaced under us
            out.append((path.stem[len("run-"):], stat.st_mtime, stat.st_size))
        out.sort(key=lambda e: (e[1], e[0]))
        return out

    def size_bytes(self) -> int:
        """Total bytes of stored entries."""
        return sum(size for _, _, size in self.entries())

    def evict(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        dry_run: bool = False,
    ) -> EvictionReport:
        """Trim the store to the given budget(s), least-recently-used
        (by mtime; reads refresh it) first.

        Returns an :class:`EvictionReport`; with ``dry_run`` nothing is
        deleted, the report says what would be.  With no budget given
        this is a no-op report.
        """
        entries = self.entries()
        keep_bytes = sum(size for _, _, size in entries)
        keep_count = len(entries)
        report = EvictionReport(dry_run=dry_run)
        for content_hash, _mtime, size in entries:
            over_bytes = max_bytes is not None and keep_bytes > max_bytes
            over_count = max_entries is not None and keep_count > max_entries
            if not (over_bytes or over_count):
                break
            if not dry_run:
                if not self.discard(content_hash):
                    continue  # raced with another evictor
                self.evicted += 1
            report.removed.append(content_hash)
            report.freed_bytes += size
            keep_bytes -= size
            keep_count -= 1
        report.kept_entries = keep_count
        report.kept_bytes = keep_bytes
        return report
