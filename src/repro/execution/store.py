"""Persistent, content-hash-keyed store of run manifests.

One entry per scenario :meth:`~repro.scenario.spec.Scenario.content_hash`,
written once under ``$REPRO_CACHE_DIR`` (the same root the calibration
cache resolves — see
:func:`~repro.experiments.harness.calibration_cache_dir`).  Because a
scenario's manifest is deterministic (``metrics_hash`` covers every
deterministic field), a stored entry *is* the run: repeated submissions
are cache hits, and an interrupted ``--sweep`` grid resumes by
re-running only the cells with no entry.

Entries carry a schema version.  Bump :data:`RESULT_SCHEMA` whenever a
modelling change alters what a content hash produces — old entries then
fail loudly (:class:`ResultStoreError`) instead of serving stale
results.  Writes are atomic (:func:`~repro.execution.atomic.atomic_write_json`),
so concurrent workers never tear an entry.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator, Optional

from repro.execution.atomic import atomic_write_json
from repro.scenario.runner import RunManifest

__all__ = ["RESULT_SCHEMA", "ResultStore", "ResultStoreError"]

#: Entry format version.  Bump on modelling changes that alter the
#: manifest a given scenario content hash produces.
RESULT_SCHEMA = 1


class ResultStoreError(RuntimeError):
    """A store entry exists but cannot be used by this build."""


class ResultStore:
    """Filesystem-backed manifest store, one JSON entry per content hash.

    ``get``/``put`` are the whole interface the execution core needs;
    ``hits``/``misses`` count this process's lookups (the service's
    ``stats`` op reports them).
    """

    def __init__(self, root: "pathlib.Path | str"):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def default(cls) -> "ResultStore":
        """The store under the shared cache root (``$REPRO_CACHE_DIR``,
        ``$IBIS_CACHE_DIR``, or ``~/.cache/ibis-repro``)."""
        from repro.experiments.harness import calibration_cache_dir

        return cls(calibration_cache_dir() / "results")

    # ------------------------------------------------------------- layout
    def path_for(self, content_hash: str) -> pathlib.Path:
        return self.root / f"run-{content_hash}.json"

    def keys(self) -> Iterator[str]:
        """Content hashes with a stored entry."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("run-*.json")):
            yield path.stem[len("run-"):]

    def __contains__(self, content_hash: str) -> bool:
        return self.path_for(content_hash).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------- access
    def get(self, content_hash: str) -> Optional[RunManifest]:
        """The stored manifest, or ``None`` on a miss.

        A corrupt entry (unreadable, not JSON) counts as a miss — the
        run re-executes and overwrites it.  An entry with an *unknown
        schema version* raises :class:`ResultStoreError` instead: the
        data is intact but this build must not interpret it.
        """
        path = self.path_for(content_hash)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(data, dict) or data.get("schema") != RESULT_SCHEMA:
            schema = data.get("schema") if isinstance(data, dict) else None
            keys = sorted(data) if isinstance(data, dict) else []
            raise ResultStoreError(
                f"result-store entry {path} has schema version {schema!r} "
                f"but this build reads version {RESULT_SCHEMA}; entry keys: "
                f"{keys or '(not an object)'} — delete the entry (or the "
                f"store directory {self.root}) to re-run the scenario"
            )
        try:
            manifest = RunManifest.from_dict(data["manifest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultStoreError(
                f"result-store entry {path} (schema {RESULT_SCHEMA}) does "
                f"not parse as a RunManifest: {exc}"
            ) from exc
        self.hits += 1
        return manifest

    def put(self, manifest: RunManifest) -> pathlib.Path:
        """Persist a manifest under its scenario's content hash."""
        path = self.path_for(manifest.scenario_hash)
        atomic_write_json(
            path, {"schema": RESULT_SCHEMA, "manifest": manifest.to_dict()}
        )
        return path

    def discard(self, content_hash: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            os.unlink(self.path_for(content_hash))
            return True
        except OSError:
            return False
