"""The unit of work the execution core accepts.

A :class:`Submission` pairs a declarative
:class:`~repro.scenario.spec.Scenario` with its run options.  The
scenario's :meth:`~repro.scenario.spec.Scenario.content_hash` is the
submission's identity: two submissions of semantically equal scenarios
are the *same work*, which is what makes the persistent
:class:`~repro.execution.store.ResultStore` and the service's
deduplication sound.

A submission is only *cacheable* when running it is a pure function of
the scenario — requesting a trace is a side effect (the trace file /
stream is part of the contract), so traced submissions always execute.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Union

from repro.core import canonical_json
from repro.scenario.spec import Scenario

__all__ = ["Submission", "as_submission", "cluster_key"]


@dataclass(frozen=True)
class Submission:
    """One scenario plus how to run it.

    ``trace_path`` may be a filesystem path or an open text stream (see
    :class:`~repro.telemetry.trace.JsonLinesTraceSink`); either makes
    the submission uncacheable.  ``use_store`` opts a single submission
    out of the result store without disabling the store globally.
    """

    scenario: Scenario
    trace_path: Any = None
    use_store: bool = True

    @property
    def content_hash(self) -> str:
        """The scenario's identity — the result store key."""
        return self.scenario.content_hash()

    @property
    def cacheable(self) -> bool:
        return self.use_store and self.trace_path is None

    @property
    def label(self) -> str:
        return self.scenario.name


def as_submission(item: Union[Submission, Scenario]) -> Submission:
    """Coerce a bare scenario into a default submission."""
    if isinstance(item, Submission):
        return item
    if isinstance(item, Scenario):
        return Submission(scenario=item)
    raise TypeError(
        f"expected Scenario or Submission, got {type(item).__name__}"
    )


def cluster_key(scenario: Scenario) -> str:
    """Digest of the scenario's cluster config alone.

    Scenarios sharing a cluster key share storage profiles and hence
    §4 calibrations, so the service batches them onto the same warm
    worker — the batch pays for at most one profiling pass.
    """
    payload = canonical_json(scenario.cluster.to_dict())
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
