"""The execution core: one submission → execute → result pipeline.

Everything that runs a scenario — the figure functions, the
``run scenario`` CLI (serial, ``--jobs N``, ``--sweep`` grids), and the
long-running scenario service (:mod:`repro.service`) — routes through
:class:`ExecutionCore`:

* :class:`~repro.execution.submission.Submission` — a scenario plus run
  options, identified by the scenario's ``content_hash``;
* :class:`~repro.execution.store.ResultStore` — persistent manifests
  keyed by content hash under ``$REPRO_CACHE_DIR``; repeated
  submissions are cache hits and interrupted sweeps resume;
* :mod:`~repro.execution.pool` — the shared process-pool backend with
  the by-spec-order determinism guarantee.

See DESIGN.md ("Execution core & scenario service").
"""

from repro.execution.atomic import (
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)
from repro.execution.core import ExecutionCore, execute_scenarios
from repro.execution.pool import (
    RunSpec,
    active_jobs,
    default_jobs,
    execute,
    parallel_jobs,
    run_specs,
)
from repro.execution.store import (
    RESULT_SCHEMA,
    EvictionReport,
    ResultStore,
    ResultStoreError,
)
from repro.execution.submission import Submission, as_submission, cluster_key

__all__ = [
    "RESULT_SCHEMA",
    "EvictionReport",
    "ExecutionCore",
    "ResultStore",
    "ResultStoreError",
    "RunSpec",
    "Submission",
    "active_jobs",
    "as_submission",
    "atomic_write_json",
    "atomic_write_text",
    "cluster_key",
    "default_jobs",
    "execute",
    "execute_scenarios",
    "fsync_dir",
    "parallel_jobs",
    "run_specs",
]
