"""Pluggable telemetry sinks.

Each sink subscribes itself to a :class:`~repro.telemetry.bus.
TelemetryBus` at construction and accumulates a particular view of the
event stream.  They are the building blocks the figures and the
schedulers' own accounting are assembled from — nothing reads another
component's internals any more, it reads (or attaches) a sink.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simcore.instrument import RateMeter, TimeSeries
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import REQUEST_COMPLETED

__all__ = [
    "AppRateMeterSink",
    "CounterSink",
    "LatencyWindowSink",
    "TimeSeriesSink",
]


class TimeSeriesSink:
    """Record ``(t, value(event))`` into a :class:`TimeSeries`.

    ``value`` extracts the plotted number from each event; ``when``
    optionally filters events (e.g. keep only periods with samples).
    """

    def __init__(
        self,
        bus: TelemetryBus,
        kind: str,
        value: Callable[[Any], float],
        source: Optional[str] = None,
        when: Optional[Callable[[Any], bool]] = None,
        name: str = "",
    ):
        self.series = TimeSeries(name or f"{kind}:{source or '*'}")
        self._value = value
        self._when = when
        bus.subscribe(kind, self._on_event, source=source)

    def _on_event(self, ev: Any) -> None:
        if self._when is None or self._when(ev):
            self.series.record(ev.t, self._value(ev))

    def __len__(self) -> int:
        return len(self.series)


class CounterSink:
    """Count events of one kind and sum an optional numeric field."""

    def __init__(
        self,
        bus: TelemetryBus,
        kind: str,
        source: Optional[str] = None,
        amount: Optional[Callable[[Any], float]] = None,
        name: str = "",
    ):
        self.name = name or kind
        self.count = 0
        self.total = 0.0
        self._amount = amount
        bus.subscribe(kind, self._on_event, source=source)

    def _on_event(self, ev: Any) -> None:
        self.count += 1
        if self._amount is not None:
            self.total += self._amount(ev)


class AppRateMeterSink:
    """Per-application completed-bytes meters (throughput figures).

    Subscribes to ``request_completed`` — scoped to one scheduler, or
    wildcard for a cluster-wide per-app view.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        source: Optional[str] = None,
        name: str = "",
    ):
        self.name = name or (source or "cluster")
        self.meter_by_app: dict[str, RateMeter] = {}
        bus.subscribe(REQUEST_COMPLETED, self._on_completed, source=source)

    def _on_completed(self, ev: Any) -> None:
        meter = self.meter_by_app.get(ev.app_id)
        if meter is None:
            meter = self.meter_by_app[ev.app_id] = RateMeter(
                f"{self.name}:{ev.app_id}"
            )
        meter.add(ev.t, ev.nbytes)

    def meter(self, app_id: str) -> Optional[RateMeter]:
        return self.meter_by_app.get(app_id)


class LatencyWindowSink:
    """Device latencies since the last drain, split by op.

    This is the observation window of the SFQ(D2) controller (§4): each
    control period it drains the completions observed since its last
    tick.
    """

    def __init__(self, bus: TelemetryBus, source: Optional[str] = None):
        self.window_read_latencies: list[float] = []
        self.window_write_latencies: list[float] = []
        bus.subscribe(REQUEST_COMPLETED, self._on_completed, source=source)

    def _on_completed(self, ev: Any) -> None:
        if ev.op == "read":
            self.window_read_latencies.append(ev.latency)
        else:
            self.window_write_latencies.append(ev.latency)

    def drain(self) -> tuple[list[float], list[float]]:
        """Return and reset the (reads, writes) latency window."""
        reads, self.window_read_latencies = self.window_read_latencies, []
        writes, self.window_write_latencies = self.window_write_latencies, []
        return reads, writes
