"""Structured telemetry event types.

Every observable moment of the scheduling plane is one of these frozen,
slotted records: the three phases of a request's life at an interposed
scheduler, the SFQ(D2) controller's depth decisions, the Scheduling
Broker's coordination exchanges, and the storage device's write-back
flush storms.  Producers publish them on a :class:`~repro.telemetry.bus.
TelemetryBus`; sinks (rate meters, latency windows, JSON traces,
counters) consume them without reaching into producer internals.

``source`` is the publishing component's name (e.g. ``dn00:persistent``
for a scheduler, ``dn00:hdfs`` for a device) — scoped subscriptions key
on it.  Times are simulation seconds; ``io_class`` and ``op`` are the
string values so events serialize directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "BROKER_SYNC",
    "DEPTH_CHANGED",
    "EVENT_KINDS",
    "FLUSH_SPIKE",
    "REQUEST_COMPLETED",
    "REQUEST_DISPATCHED",
    "REQUEST_SUBMITTED",
    "BrokerSync",
    "DepthChanged",
    "FlushSpike",
    "RequestCompleted",
    "RequestDispatched",
    "RequestSubmitted",
    "event_record",
]

REQUEST_SUBMITTED = "request_submitted"
REQUEST_DISPATCHED = "request_dispatched"
REQUEST_COMPLETED = "request_completed"
DEPTH_CHANGED = "depth_changed"
BROKER_SYNC = "broker_sync"
FLUSH_SPIKE = "flush_spike"


@dataclass(frozen=True, slots=True)
class RequestSubmitted:
    """A tagged request was accepted by an interposed scheduler."""

    kind: ClassVar[str] = REQUEST_SUBMITTED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    queued: int          # scheduler queue length just before this request


@dataclass(frozen=True, slots=True)
class RequestDispatched:
    """A queued request was admitted to the storage device."""

    kind: ClassVar[str] = REQUEST_DISPATCHED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    wait: float          # seconds spent queued at the scheduler


@dataclass(frozen=True, slots=True)
class RequestCompleted:
    """The device finished servicing a request."""

    kind: ClassVar[str] = REQUEST_COMPLETED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    latency: float       # dispatch -> completion, seconds
    weight: float        # the app's I/O share weight on this request


@dataclass(frozen=True, slots=True)
class DepthChanged:
    """One SFQ(D2) control period elapsed (Eq. 1 step)."""

    kind: ClassVar[str] = DEPTH_CHANGED
    t: float
    source: str
    depth: float         # the (float) depth after the update
    latency: float       # mean observed latency this period (0.0 if idle)
    samples: int         # completions observed this period


@dataclass(frozen=True, slots=True)
class BrokerSync:
    """One coordination round-trip between a local scheduler and the broker."""

    kind: ClassVar[str] = BROKER_SYNC
    t: float
    source: str          # the reporting client's id
    scope: str           # I/O service type the exchange covers
    apps: int            # entries in the reported service vector
    message_bytes: int   # modelled wire size of the exchange


@dataclass(frozen=True, slots=True)
class FlushSpike:
    """A storage device entered a write-back flush storm (Fig. 7 spikes)."""

    kind: ClassVar[str] = FLUSH_SPIKE
    t: float
    source: str          # device name
    until: float         # storm end time
    factor: float        # rate multiplier during the storm

    @property
    def duration(self) -> float:
        return self.until - self.t


EVENT_KINDS: tuple[str, ...] = (
    REQUEST_SUBMITTED,
    REQUEST_DISPATCHED,
    REQUEST_COMPLETED,
    DEPTH_CHANGED,
    BROKER_SYNC,
    FLUSH_SPIKE,
)


def event_record(ev: Any) -> dict[str, Any]:
    """Flatten an event into a JSON-ready dict (``kind`` + its fields)."""
    rec: dict[str, Any] = {"kind": ev.kind}
    for f in dataclasses.fields(ev):
        rec[f.name] = getattr(ev, f.name)
    return rec
