"""Structured telemetry event types.

Every observable moment of the scheduling plane is one of these frozen,
slotted records: the three phases of a request's life at an interposed
scheduler, the SFQ(D2) controller's depth decisions, the Scheduling
Broker's coordination exchanges, and the storage device's write-back
flush storms.  Producers publish them on a :class:`~repro.telemetry.bus.
TelemetryBus`; sinks (rate meters, latency windows, JSON traces,
counters) consume them without reaching into producer internals.

``source`` is the publishing component's name (e.g. ``dn00:persistent``
for a scheduler, ``dn00:hdfs`` for a device) — scoped subscriptions key
on it.  Times are simulation seconds; ``io_class`` and ``op`` are the
string values so events serialize directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "BROKER_OUTAGE",
    "BROKER_SYNC",
    "DEPTH_CHANGED",
    "EVENT_KINDS",
    "FAULT_INJECTED",
    "FLUSH_SPIKE",
    "NODE_DOWN",
    "NODE_UP",
    "REPLICA_FAILOVER",
    "REQUEST_COMPLETED",
    "REQUEST_DISPATCHED",
    "REQUEST_SUBMITTED",
    "SPAN",
    "TASK_RETRY",
    "BrokerOutage",
    "BrokerSync",
    "DepthChanged",
    "FaultInjected",
    "FlushSpike",
    "NodeDown",
    "NodeUp",
    "ReplicaFailover",
    "RequestCompleted",
    "RequestDispatched",
    "RequestSubmitted",
    "Span",
    "TaskRetry",
    "event_record",
]

REQUEST_SUBMITTED = "request_submitted"
REQUEST_DISPATCHED = "request_dispatched"
REQUEST_COMPLETED = "request_completed"
DEPTH_CHANGED = "depth_changed"
BROKER_SYNC = "broker_sync"
FLUSH_SPIKE = "flush_spike"
FAULT_INJECTED = "fault_injected"
NODE_DOWN = "node_down"
NODE_UP = "node_up"
REPLICA_FAILOVER = "replica_failover"
TASK_RETRY = "task_retry"
BROKER_OUTAGE = "broker_outage"
SPAN = "span"


@dataclass(frozen=True, slots=True)
class RequestSubmitted:
    """A tagged request was accepted by an interposed scheduler."""

    kind: ClassVar[str] = REQUEST_SUBMITTED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    queued: int          # scheduler queue length just before this request


@dataclass(frozen=True, slots=True)
class RequestDispatched:
    """A queued request was admitted to the storage device."""

    kind: ClassVar[str] = REQUEST_DISPATCHED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    wait: float          # seconds spent queued at the scheduler


@dataclass(frozen=True, slots=True)
class RequestCompleted:
    """The device finished servicing a request."""

    kind: ClassVar[str] = REQUEST_COMPLETED
    t: float
    source: str
    app_id: str
    op: str
    nbytes: int
    io_class: str
    latency: float       # dispatch -> completion, seconds
    weight: float        # the app's I/O share weight on this request


@dataclass(frozen=True, slots=True)
class DepthChanged:
    """One SFQ(D2) control period elapsed (Eq. 1 step)."""

    kind: ClassVar[str] = DEPTH_CHANGED
    t: float
    source: str
    depth: float         # the (float) depth after the update
    latency: float       # mean observed latency this period (0.0 if idle)
    samples: int         # completions observed this period


@dataclass(frozen=True, slots=True)
class BrokerSync:
    """One coordination round-trip between a local scheduler and the broker."""

    kind: ClassVar[str] = BROKER_SYNC
    t: float
    source: str          # the reporting client's id
    scope: str           # I/O service type the exchange covers
    apps: int            # entries in the reported service vector
    message_bytes: int   # modelled wire size of the exchange


@dataclass(frozen=True, slots=True)
class FlushSpike:
    """A storage device entered a write-back flush storm (Fig. 7 spikes)."""

    kind: ClassVar[str] = FLUSH_SPIKE
    t: float
    source: str          # device name
    until: float         # storm end time
    factor: float        # rate multiplier during the storm

    @property
    def duration(self) -> float:
        return self.until - self.t


@dataclass(frozen=True, slots=True)
class FaultInjected:
    """The fault injector fired one planned fault event."""

    kind: ClassVar[str] = FAULT_INJECTED
    t: float
    source: str          # always "faults" (the injector)
    fault: str           # FaultEvent.kind, e.g. "node_crash"
    target: str          # node id, or "" for cluster-wide faults
    duration: float      # planned fault window, 0.0 = permanent


@dataclass(frozen=True, slots=True)
class NodeDown:
    """A datanode crashed and left placement/allocation pools."""

    kind: ClassVar[str] = NODE_DOWN
    t: float
    source: str          # the node id
    permanent: bool      # False when a recovery is scheduled


@dataclass(frozen=True, slots=True)
class NodeUp:
    """A crashed datanode recovered and rejoined the cluster."""

    kind: ClassVar[str] = NODE_UP
    t: float
    source: str          # the node id


@dataclass(frozen=True, slots=True)
class ReplicaFailover:
    """An HDFS read attempt failed and the client moved to another replica."""

    kind: ClassVar[str] = REPLICA_FAILOVER
    t: float
    source: str          # the reading node's id
    app_id: str
    block_id: int
    failed: str          # the replica node the attempt died on
    attempt: int         # 1-based index of the failed attempt


@dataclass(frozen=True, slots=True)
class TaskRetry:
    """The AppMaster re-ran a task lost to an injected fault."""

    kind: ClassVar[str] = TASK_RETRY
    t: float
    source: str          # the application id
    task: str            # task name, e.g. "map3"
    node: str            # the node the failed attempt ran on
    attempt: int         # 1-based index of the failed attempt


@dataclass(frozen=True, slots=True)
class BrokerOutage:
    """The Scheduling Broker went down (or came back)."""

    kind: ClassVar[str] = BROKER_OUTAGE
    t: float
    source: str          # always "broker"
    down: bool           # True at outage start, False at recovery


@dataclass(frozen=True, slots=True)
class Span:
    """One request's full dataplane life, emitted at its terminal state.

    Decomposes end-to-end latency into queue wait (admission to
    dispatch) and device service (dispatch to completion) straight from
    the request's lifecycle timestamps.  ``state`` is the terminal
    lifecycle state; cancelled requests report the wait they accumulated
    before withdrawal and zero service.  Only built when a subscriber
    asked for spans — the hot path stays span-free otherwise.
    """

    kind: ClassVar[str] = SPAN
    t: float
    source: str          # the scheduler the request was queued at
    app_id: str
    op: str
    nbytes: int
    io_class: str
    state: str           # "completed" | "failed" | "cancelled"
    queue_wait: float    # seconds from queue admission to dispatch
    service: float       # seconds from dispatch to device completion


EVENT_KINDS: tuple[str, ...] = (
    REQUEST_SUBMITTED,
    REQUEST_DISPATCHED,
    REQUEST_COMPLETED,
    DEPTH_CHANGED,
    BROKER_SYNC,
    FLUSH_SPIKE,
    FAULT_INJECTED,
    NODE_DOWN,
    NODE_UP,
    REPLICA_FAILOVER,
    TASK_RETRY,
    BROKER_OUTAGE,
    SPAN,
)


def event_record(ev: Any) -> dict[str, Any]:
    """Flatten an event into a JSON-ready dict (``kind`` + its fields)."""
    rec: dict[str, Any] = {"kind": ev.kind}
    for f in dataclasses.fields(ev):
        rec[f.name] = getattr(ev, f.name)
    return rec
