"""Unified telemetry plane: event bus, structured events, pluggable sinks.

The observability side of the interposition refactor: schedulers,
devices, the SFQ(D2) controller and the Scheduling Broker *publish*
structured events onto one :class:`TelemetryBus` per cluster, and
everything that used to poke component internals — per-app service
accounting, throughput meters, the Fig. 7 depth/latency traces, the
JSON trace export — is a *sink* subscribed to it.

* :mod:`repro.telemetry.events` — the event vocabulary
  (``request_submitted/dispatched/completed``, ``depth_changed``,
  ``broker_sync``, ``flush_spike``).
* :mod:`repro.telemetry.bus` — scoped publish/subscribe dispatch.
* :mod:`repro.telemetry.sinks` — rate meters, latency windows,
  time-series recorders, counters.
* :mod:`repro.telemetry.trace` — JSON-lines export + trace schema.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import (
    BROKER_OUTAGE,
    BROKER_SYNC,
    DEPTH_CHANGED,
    EVENT_KINDS,
    FAULT_INJECTED,
    FLUSH_SPIKE,
    NODE_DOWN,
    NODE_UP,
    REPLICA_FAILOVER,
    REQUEST_COMPLETED,
    REQUEST_DISPATCHED,
    REQUEST_SUBMITTED,
    SPAN,
    TASK_RETRY,
    BrokerOutage,
    BrokerSync,
    DepthChanged,
    FaultInjected,
    FlushSpike,
    NodeDown,
    NodeUp,
    ReplicaFailover,
    RequestCompleted,
    RequestDispatched,
    RequestSubmitted,
    Span,
    TaskRetry,
    event_record,
)
from repro.telemetry.sinks import (
    AppRateMeterSink,
    CounterSink,
    LatencyWindowSink,
    TimeSeriesSink,
)
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    JsonLinesTraceSink,
    validate_trace_file,
    validate_trace_line,
    validate_trace_record,
)

__all__ = [
    "BROKER_OUTAGE",
    "BROKER_SYNC",
    "DEPTH_CHANGED",
    "EVENT_KINDS",
    "FAULT_INJECTED",
    "FLUSH_SPIKE",
    "NODE_DOWN",
    "NODE_UP",
    "REPLICA_FAILOVER",
    "REQUEST_COMPLETED",
    "REQUEST_DISPATCHED",
    "REQUEST_SUBMITTED",
    "SPAN",
    "TASK_RETRY",
    "AppRateMeterSink",
    "BrokerOutage",
    "BrokerSync",
    "CounterSink",
    "DepthChanged",
    "FaultInjected",
    "FlushSpike",
    "JsonLinesTraceSink",
    "LatencyWindowSink",
    "NodeDown",
    "NodeUp",
    "ReplicaFailover",
    "RequestCompleted",
    "RequestDispatched",
    "RequestSubmitted",
    "Span",
    "TRACE_SCHEMA",
    "TaskRetry",
    "TelemetryBus",
    "TimeSeriesSink",
    "event_record",
    "validate_trace_file",
    "validate_trace_line",
    "validate_trace_record",
]
