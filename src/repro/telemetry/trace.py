"""JSON-lines trace export and its schema.

:class:`JsonLinesTraceSink` streams every telemetry event as one JSON
object per line — the machine-readable record of a run, consumable by
external tooling (pandas, jq) without importing this package.
``TRACE_SCHEMA``/:func:`validate_trace_record` define exactly what a
line may contain; the test suite holds exported traces to it.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Iterable, Optional, Sequence, Union

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import EVENT_KINDS, event_record

__all__ = [
    "JsonLinesTraceSink",
    "TRACE_SCHEMA",
    "validate_trace_file",
    "validate_trace_line",
    "validate_trace_record",
]

#: Required fields (beyond ``kind``) and their types, per event kind.
#: ``float`` accepts ints too (JSON numbers round-trip that way).
TRACE_SCHEMA: dict[str, dict[str, type]] = {
    "request_submitted": {
        "t": float, "source": str, "app_id": str, "op": str,
        "nbytes": int, "io_class": str, "queued": int,
    },
    "request_dispatched": {
        "t": float, "source": str, "app_id": str, "op": str,
        "nbytes": int, "io_class": str, "wait": float,
    },
    "request_completed": {
        "t": float, "source": str, "app_id": str, "op": str,
        "nbytes": int, "io_class": str, "latency": float, "weight": float,
    },
    "depth_changed": {
        "t": float, "source": str, "depth": float, "latency": float,
        "samples": int,
    },
    "broker_sync": {
        "t": float, "source": str, "scope": str, "apps": int,
        "message_bytes": int,
    },
    "flush_spike": {
        "t": float, "source": str, "until": float, "factor": float,
    },
    "fault_injected": {
        "t": float, "source": str, "fault": str, "target": str,
        "duration": float,
    },
    "node_down": {
        "t": float, "source": str, "permanent": bool,
    },
    "node_up": {
        "t": float, "source": str,
    },
    "replica_failover": {
        "t": float, "source": str, "app_id": str, "block_id": int,
        "failed": str, "attempt": int,
    },
    "task_retry": {
        "t": float, "source": str, "task": str, "node": str,
        "attempt": int,
    },
    "broker_outage": {
        "t": float, "source": str, "down": bool,
    },
    "span": {
        "t": float, "source": str, "app_id": str, "op": str,
        "nbytes": int, "io_class": str, "state": str,
        "queue_wait": float, "service": float,
    },
}

_IO_CLASSES = ("persistent", "intermediate", "network")
_OPS = ("read", "write")
_SPAN_STATES = ("completed", "failed", "cancelled")


def validate_trace_record(rec: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``rec`` is a schema-valid trace record."""
    if not isinstance(rec, dict):
        raise ValueError(f"trace record must be an object, got {type(rec).__name__}")
    kind = rec.get("kind")
    if kind not in TRACE_SCHEMA:
        raise ValueError(f"unknown trace record kind {kind!r}")
    fields = TRACE_SCHEMA[kind]
    for name, typ in fields.items():
        if name not in rec:
            raise ValueError(f"{kind} record missing field {name!r}")
        value = rec[name]
        if typ is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif typ is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, typ)
        if not ok:
            raise ValueError(
                f"{kind} field {name!r} must be {typ.__name__}, "
                f"got {type(value).__name__}"
            )
    extras = set(rec) - set(fields) - {"kind"}
    if extras:
        raise ValueError(f"{kind} record has unknown fields {sorted(extras)}")
    if "op" in fields and rec["op"] not in _OPS:
        raise ValueError(f"bad op {rec['op']!r}")
    if "io_class" in fields and rec["io_class"] not in _IO_CLASSES:
        raise ValueError(f"bad io_class {rec['io_class']!r}")
    if "state" in fields and rec["state"] not in _SPAN_STATES:
        raise ValueError(f"bad span state {rec['state']!r}")


def validate_trace_line(line: str) -> dict[str, Any]:
    """Parse and validate one trace line; returns the record."""
    rec = json.loads(line)
    validate_trace_record(rec)
    return rec


class JsonLinesTraceSink:
    """Stream telemetry events to a JSON-lines file.

    Subscribes (wildcard) to the given event ``kinds`` — all of them by
    default.  Use as a context manager, or call :meth:`close` when the
    run finishes; records are written as they are published, so a trace
    of a crashed run is still useful up to the crash.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        path_or_file: Union[str, os.PathLike, io.TextIOBase],
        kinds: Optional[Sequence[str]] = None,
    ):
        if isinstance(path_or_file, (str, os.PathLike)):
            self._fh: Any = open(path_or_file, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = path_or_file
            self._owns_fh = False
        self.records = 0
        self._bus = bus
        self._kinds: tuple[str, ...] = tuple(kinds) if kinds else EVENT_KINDS
        unknown = [k for k in self._kinds if k not in TRACE_SCHEMA]
        if unknown:
            raise ValueError(f"cannot trace unknown event kinds {unknown}")
        for kind in self._kinds:
            bus.subscribe(kind, self._on_event, source=None)
        self._closed = False

    def _on_event(self, ev: Any) -> None:
        self._fh.write(json.dumps(event_record(ev), sort_keys=True))
        self._fh.write("\n")
        self.records += 1

    def close(self) -> None:
        """Detach from the bus and close the file (if this sink opened it)."""
        if self._closed:
            return
        self._closed = True
        for kind in self._kinds:
            self._bus.unsubscribe(kind, self._on_event, source=None)
        if self._owns_fh:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonLinesTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def validate_trace_file(lines: Iterable[str]) -> int:
    """Validate every non-empty line; returns the number of records."""
    n = 0
    for line in lines:
        if line.strip():
            validate_trace_line(line)
            n += 1
    return n
