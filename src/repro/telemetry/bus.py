"""The telemetry event bus.

One bus serves a whole cluster: every scheduler, device and the broker
publish onto it, and any number of sinks subscribe.  Subscriptions are
keyed by event kind and optionally *scoped* to one source, so a
per-scheduler accumulator pays nothing for the other 23 schedulers'
events, and a trace sink can watch everything.

The bus sits on the simulation's hot path (one ``request_completed``
per I/O), so dispatch is two dict lookups and publication of the
optional event kinds is guarded by :meth:`TelemetryBus.publishes` —
producers skip even constructing an event nobody listens for.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["TelemetryBus"]

Subscriber = Callable[[Any], None]


class TelemetryBus:
    """Publish/subscribe hub for telemetry events.

    Subscribers for a ``(kind, source)`` pair run before wildcard
    ``(kind, None)`` subscribers, in subscription order — so a
    component's own accounting sink observes an event before any
    cluster-wide exporter does.
    """

    __slots__ = ("_subs", "_kind_counts")

    def __init__(self) -> None:
        self._subs: dict[tuple[str, Optional[str]], list[Subscriber]] = {}
        self._kind_counts: dict[str, int] = {}

    def subscribe(
        self, kind: str, fn: Subscriber, source: Optional[str] = None
    ) -> Subscriber:
        """Register ``fn`` for events of ``kind`` (from ``source`` only,
        or from every source when ``source`` is None).  Returns ``fn``."""
        self._subs.setdefault((kind, source), []).append(fn)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        return fn

    def unsubscribe(
        self, kind: str, fn: Subscriber, source: Optional[str] = None
    ) -> None:
        subs = self._subs.get((kind, source))
        if not subs or fn not in subs:
            raise ValueError(f"no such subscriber for {kind!r}/{source!r}")
        subs.remove(fn)
        if not subs:
            del self._subs[(kind, source)]
        remaining = self._kind_counts[kind] - 1
        if remaining:
            self._kind_counts[kind] = remaining
        else:
            del self._kind_counts[kind]

    def publishes(self, kind: str) -> bool:
        """True if any subscriber (scoped or wildcard) wants ``kind``.

        Producers use this to skip building optional events entirely.
        """
        return kind in self._kind_counts

    def publish(self, ev: Any) -> None:
        """Deliver one event to its scoped, then wildcard, subscribers."""
        subs = self._subs
        scoped = subs.get((ev.kind, ev.source))
        if scoped:
            for fn in scoped:
                fn(ev)
        wild = subs.get((ev.kind, None))
        if wild:
            for fn in wild:
                fn(ev)
