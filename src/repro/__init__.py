"""IBIS: Interposed Big-data I/O Scheduler — HPDC'16 reproduction.

A complete, from-scratch Python implementation of the paper's system on
a deterministic discrete-event simulation of a Hadoop/YARN cluster:

* :mod:`repro.core` — IBIS itself: I/O interposition, the SFQ(D)/SFQ(D2)
  proportional-share schedulers, the Scheduling Broker with DSFQ
  total-service coordination, and the cgroups baseline.
* :mod:`repro.simcore`, :mod:`repro.storage`, :mod:`repro.net`,
  :mod:`repro.hdfs`, :mod:`repro.localfs`, :mod:`repro.yarnsim`,
  :mod:`repro.mapreduce`, :mod:`repro.hive` — the substrates.
* :mod:`repro.workloads` — TeraGen/TeraSort/TeraValidate/WordCount,
  the Facebook2009-like SWIM trace, and TPC-H query models.
* :mod:`repro.experiments` — one function per figure/table of §7.
"""

from repro.cluster import BigDataCluster
from repro.config import (
    GB,
    HDD_PROFILE,
    KB,
    MB,
    SSD_PROFILE,
    TB,
    ClusterConfig,
    StorageProfile,
    YarnConfig,
    default_cluster,
)
from repro.core import DepthController, IOClass, IOTag, NodePolicy, PolicySpec
from repro.faults import FaultEvent, FaultPlan
from repro.mapreduce import JobSpec

__version__ = "1.0.0"

__all__ = [
    "BigDataCluster",
    "ClusterConfig",
    "DepthController",
    "FaultEvent",
    "FaultPlan",
    "GB",
    "HDD_PROFILE",
    "IOClass",
    "IOTag",
    "JobSpec",
    "KB",
    "MB",
    "NodePolicy",
    "PolicySpec",
    "SSD_PROFILE",
    "StorageProfile",
    "TB",
    "YarnConfig",
    "default_cluster",
    "__version__",
]
