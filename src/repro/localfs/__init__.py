"""Local file system substrate for intermediate (spill/merge) data."""

from repro.localfs.filesystem import LocalFS

__all__ = ["LocalFS"]
