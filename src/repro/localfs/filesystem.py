"""Chunked intermediate I/O against a node's temporary-data disk.

Map and reduce tasks spill and merge in-progress data on the node's
local file system (§3, "Intermediate I/Os").  IBIS tags these I/Os and
routes them through the INTERMEDIATE-class interposed scheduler; the
shuffle servlet's reads of map outputs go through the NETWORK-class
scheduler on the same disk.

Writes are pipelined (write-behind through the page cache), reads use
a modest readahead — same windows as the HDFS streams.
"""

from __future__ import annotations

from repro.core import DataNodeIO, IOClass, IOTag
from repro.dataplane.streams import request_stream
from repro.simcore import Simulator

__all__ = ["LocalFS"]


class LocalFS:
    """Intermediate-data I/O entry point for one node."""

    def __init__(
        self,
        sim: Simulator,
        node: DataNodeIO,
        chunk: int,
        read_window: int = 2,
        write_window: int = 4,
    ):
        self.sim = sim
        self.node = node
        self.chunk = chunk
        self.read_window = read_window
        self.write_window = write_window

    def write(self, nbytes: int, tag: IOTag):
        """Generator: spill ``nbytes`` of intermediate data."""
        return (yield from self._stream(
            "write", nbytes, tag, IOClass.INTERMEDIATE, self.write_window
        ))

    def read(self, nbytes: int, tag: IOTag):
        """Generator: read ``nbytes`` of intermediate data (merge input)."""
        return (yield from self._stream(
            "read", nbytes, tag, IOClass.INTERMEDIATE, self.read_window
        ))

    def servlet_read(self, nbytes: int, tag: IOTag):
        """Generator: the Node Manager shuffle servlet reading a map
        output on behalf of a remote reduce task (NETWORK class, §3)."""
        return (yield from self._stream(
            "read", nbytes, tag, IOClass.NETWORK, self.read_window
        ))

    def _stream(self, op, nbytes, tag, io_class, window):
        return (yield from request_stream(
            self.sim, self.node.path(io_class).submit, tag, op, nbytes,
            io_class, self.chunk, window,
        ))
