"""Shared experiment plumbing: result records, cached controllers,
standard run helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import BigDataCluster
from repro.config import MB, ClusterConfig, StorageProfile, default_cluster
from repro.core import DepthController, PolicySpec
from repro.core.profiling import calibrate_controller
from repro.mapreduce import Job, JobSpec

__all__ = [
    "ExperimentResult",
    "controller_for",
    "run_single_job",
    "total_throughput_mbs",
]


@dataclass
class ExperimentResult:
    """What an experiment produced: named rows and optional series.

    ``rows`` is a list of dicts (one per bar/line of the figure);
    ``series`` maps a name to ``(times, values)`` pairs for
    time-series figures (Fig. 2, Fig. 7) and CDFs (Fig. 9).
    """

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def row(self, **kv: Any) -> None:
        self.rows.append(kv)

    def find(self, **match: Any) -> dict[str, Any]:
        """The first row whose fields match (for assertions in tests)."""
        for r in self.rows:
            if all(r.get(k) == v for k, v in match.items()):
                return r
        raise KeyError(f"no row matching {match} in {self.name}")


# The §4 profiling procedure is deterministic per storage profile, so
# experiments share one calibration per profile.
_CONTROLLERS: dict[tuple, DepthController] = {}


def controller_for(config: ClusterConfig, **kwargs) -> DepthController:
    """Cached ``calibrate_controller`` (one profiling pass per setup)."""
    key = (config.storage, config.io_chunk, tuple(sorted(kwargs.items())))
    ctrl = _CONTROLLERS.get(key)
    if ctrl is None:
        ctrl = _CONTROLLERS[key] = calibrate_controller(config, **kwargs)
    return ctrl


def run_single_job(
    config: ClusterConfig,
    policy: PolicySpec,
    spec: JobSpec,
    preloads: dict[str, float],
    max_cores: Optional[int] = None,
    io_weight: float = 1.0,
) -> tuple[Job, BigDataCluster]:
    """Run one job to completion on a fresh cluster."""
    cluster = BigDataCluster(config, policy)
    for path, size in preloads.items():
        cluster.preload_input(path, size)
    job = cluster.submit(spec, io_weight=io_weight, max_cores=max_cores)
    cluster.run()
    return job, cluster


def total_throughput_mbs(cluster: BigDataCluster, t_end: float) -> float:
    """Aggregate storage throughput (MB/s) over [0, t_end) — Fig. 6b/8b."""
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    total = 0.0
    for node in cluster.nodes.values():
        for dev in (node.hdfs_device, node.tmp_device):
            total += dev.read_meter.window_total(0.0, t_end)
            total += dev.write_meter.window_total(0.0, t_end)
    return total / t_end / MB
