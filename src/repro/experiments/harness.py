"""Shared experiment plumbing: result records, cached controllers,
standard run helpers."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster import BigDataCluster
from repro.config import MB, ClusterConfig
from repro.core import DepthController, NodePolicy, PolicySpec, canonical_json
from repro.core.profiling import calibrate_controller
from repro.execution.atomic import atomic_write_json
from repro.mapreduce import Job, JobSpec
from repro.telemetry import JsonLinesTraceSink

__all__ = [
    "ExperimentResult",
    "calibration_cache_dir",
    "controller_for",
    "run_single_job",
    "total_throughput_mbs",
]


@dataclass
class ExperimentResult:
    """What an experiment produced: named rows and optional series.

    ``rows`` is a list of dicts (one per bar/line of the figure);
    ``series`` maps a name to ``(times, values)`` pairs for
    time-series figures (Fig. 2, Fig. 7) and CDFs (Fig. 9).
    """

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def row(self, **kv: Any) -> None:
        self.rows.append(kv)

    def find(self, **match: Any) -> dict[str, Any]:
        """The first row whose fields match (for assertions in tests).

        Raises a :class:`KeyError` that lists the keys and values the
        rows actually carry, so a typo'd case name fails with the menu
        of valid ones instead of a bare "no row matching".
        """
        for r in self.rows:
            if all(r.get(k) == v for k, v in match.items()):
                return r
        available: dict[str, list] = {}
        for r in self.rows:
            for key in match:
                if key in r and r[key] not in available.setdefault(key, []):
                    available[key].append(r[key])
        detail = (
            "; ".join(f"{k} in {vals}" for k, vals in available.items())
            if available
            else f"no row has any of {sorted(match)}; "
                 f"row keys: {sorted({k for r in self.rows for k in r})}"
        )
        raise KeyError(
            f"no row matching {match} in {self.name} "
            f"({len(self.rows)} rows; {detail})"
        )


# The §4 profiling procedure is deterministic per storage profile, so
# experiments share one calibration per profile.  Two cache layers:
# an in-process dict, and a disk cache shared across worker processes
# and invocations (so a parallel `run all` profiles each storage setup
# exactly once instead of once per worker).
_CONTROLLERS: dict[tuple, DepthController] = {}

#: bump to invalidate every on-disk calibration (e.g. when the device
#: model or the §4 profiling procedure changes)
_CALIBRATION_VERSION = 1


def calibration_cache_dir() -> pathlib.Path:
    """Disk-cache location: ``$REPRO_CACHE_DIR``, else ``$IBIS_CACHE_DIR``
    (the historical name), else ``~/.cache/ibis-repro``."""
    for var in ("REPRO_CACHE_DIR", "IBIS_CACHE_DIR"):
        override = os.environ.get(var)
        if override:
            return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "ibis-repro"


def _calibration_path(config: ClusterConfig, kwargs: dict) -> pathlib.Path:
    payload = canonical_json(
        {
            "version": _CALIBRATION_VERSION,
            "storage": dataclasses.asdict(config.storage),
            "io_chunk": config.io_chunk,
            "kwargs": kwargs,
        }
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return calibration_cache_dir() / f"calib-{config.storage.name}-{digest}.json"


def _load_calibration(path: pathlib.Path) -> Optional[DepthController]:
    try:
        fields = json.loads(path.read_text())["controller"]
        return DepthController(**fields)
    except (OSError, ValueError, KeyError, TypeError):
        return None  # missing or corrupt cache entry: recalibrate


def _store_calibration(path: pathlib.Path, ctrl: DepthController) -> None:
    """Best-effort atomic write: a parallel cold start has every worker
    profile then publish concurrently, and readers must only ever see a
    complete JSON document (temp file + rename; last writer wins)."""
    try:
        atomic_write_json(path, {"controller": dataclasses.asdict(ctrl)})
    except OSError:
        pass  # read-only cache dir etc.: the in-memory cache still works


def controller_for(config: ClusterConfig, **kwargs) -> DepthController:
    """Cached ``calibrate_controller`` (one profiling pass per setup).

    Set ``IBIS_NO_CALIB_CACHE=1`` to bypass the disk layer (the
    in-process cache is always on).
    """
    key = (config.storage, config.io_chunk, tuple(sorted(kwargs.items())))
    ctrl = _CONTROLLERS.get(key)
    if ctrl is not None:
        return ctrl
    use_disk = os.environ.get("IBIS_NO_CALIB_CACHE") != "1"
    path = _calibration_path(config, dict(kwargs)) if use_disk else None
    if path is not None:
        ctrl = _load_calibration(path)
    if ctrl is None:
        ctrl = calibrate_controller(config, **kwargs)
        if path is not None:
            _store_calibration(path, ctrl)
    _CONTROLLERS[key] = ctrl
    return ctrl


def run_single_job(
    config: ClusterConfig,
    policy: "PolicySpec | NodePolicy",
    spec: JobSpec,
    preloads: dict[str, float],
    max_cores: Optional[int] = None,
    io_weight: float = 1.0,
    trace_path: Optional[pathlib.Path] = None,
) -> tuple[Job, BigDataCluster]:
    """Run one job to completion on a fresh cluster.

    With ``trace_path`` set, every telemetry event of the run is
    exported as one JSON line (see :mod:`repro.telemetry.trace`).
    """
    cluster = BigDataCluster(config, policy)
    for path, size in preloads.items():
        cluster.preload_input(path, size)
    trace = (JsonLinesTraceSink(cluster.telemetry, trace_path)
             if trace_path is not None else None)
    try:
        job = cluster.submit(spec, io_weight=io_weight, max_cores=max_cores)
        cluster.run()
    finally:
        if trace is not None:
            trace.close()
    return job, cluster


def total_throughput_mbs(cluster: BigDataCluster, t_end: float) -> float:
    """Aggregate storage throughput (MB/s) over [0, t_end) — Fig. 6b/8b."""
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    return cluster.windowed_throughput(0.0, t_end) / MB
