"""One function per figure/table of the paper's evaluation (§7).

All experiments run at ``scale`` (default 1/64 of the paper's data
volumes) on the simulated 8-worker testbed; paper-vs-measured notes for
each are kept in EXPERIMENTS.md.

Structure: every independent cluster run inside a figure is a
module-level ``_*`` worker function wrapped in a picklable
:class:`~repro.experiments.parallel.RunSpec` and executed through
:func:`~repro.experiments.parallel.run_specs`.  With an active worker
pool the variants of one figure run concurrently; results are merged in
spec order, so the assembled :class:`ExperimentResult` is identical to
a serial run (see parallel.py's determinism guarantee).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.cluster import BigDataCluster
from repro.config import (
    GB,
    MB,
    SSD_PROFILE,
    TB,
    ClusterConfig,
    default_cluster,
)
from repro.core import NodePolicy, PolicySpec
from repro.core.metrics import relative_performance, slowdown
from repro.experiments.harness import (
    ExperimentResult,
    controller_for,
    run_single_job,
    total_throughput_mbs,
)
from repro.experiments.parallel import RunSpec, run_specs
from repro.faults import FaultEvent, FaultPlan
from repro.hive import run_query, tpch_q9, tpch_q21
from repro.telemetry import (
    DEPTH_CHANGED,
    REPLICA_FAILOVER,
    TASK_RETRY,
    CounterSink,
    TimeSeriesSink,
)
from repro.workloads import (
    facebook2009_trace,
    teragen,
    terasort,
    teravalidate,
    wordcount,
)

__all__ = [
    "fig2_io_profiles",
    "fig3_contention",
    "fig6_isolation_hdd",
    "fig7_depth_adaptation",
    "fig8_isolation_ssd",
    "fig9_facebook",
    "fig10_multiframework",
    "fig11_proportional_slowdown",
    "fig12_coordination",
    "fig13_overhead",
    "faults_experiment",
    "mixed_policy_ablation",
    "tab2_resource_usage",
    "tab3_loc",
]

#: interferer sizes for the contention studies: the paper runs TeraSort
#: with 50–400 GB inputs; the large end keeps the aggressor I/O-active
#: for the victim's whole run at simulation scale.
_BIG_SORT = 400 * GB

#: cgroups throttle cap (Fig. 10): the paper throttles TeraSort to
#: 1 MB/s per container; one node runs ~12 containers and spill writes
#: land in the page cache before the block layer sees them, so the
#: effective per-node cap on scheduled intermediate I/O is far higher.
_THROTTLE_BPS = 48.0 * MB


# --------------------------------------------------------------------- Fig 2
def _fig2_profile(config: ClusterConfig, app: str) -> dict:
    """One app running alone: per-second read/write MB/s + runtime."""
    if app == "terasort":
        spec = terasort(config, "/in/tera", input_bytes=100 * GB)
        preloads = {"/in/tera": 100 * GB}
    else:
        spec = wordcount(config, "/in/wiki")
        preloads = {"/in/wiki": 50 * GB}
    job, cluster = run_single_job(
        config, PolicySpec.native(), spec, preloads, max_cores=None
    )
    t_end = job.finish_time
    out = {"runtime": job.runtime, "series": {}}
    for op in ("read", "write"):
        agg = np.zeros(max(1, int(np.ceil(t_end)) + 1))
        times = np.arange(len(agg), dtype=float)
        for meter in cluster.device_meters(op):
            ts = meter.rate_series(bucket=1.0, t_end=t_end + 1.0)
            vals = np.asarray(ts.values)
            agg[: len(vals)] += vals / MB
        out["series"][op] = (times.tolist(), agg.tolist())
    return out


def fig2_io_profiles(config: ClusterConfig | None = None) -> ExperimentResult:
    """I/O demand (read/write MB/s vs time) of TeraSort and WordCount,
    each running alone with the full cluster."""
    config = config or default_cluster()
    result = ExperimentResult("fig2_io_profiles")
    apps = ("terasort", "wordcount")
    runs = run_specs([
        RunSpec.of(_fig2_profile, config, app, label=f"fig2:{app}")
        for app in apps
    ])
    for label, run in zip(apps, runs):
        for op in ("read", "write"):
            result.series[f"{label}:{op}"] = run["series"][op]
        result.row(app=label, runtime=run["runtime"],
                   peak_read=float(max(result.series[f"{label}:read"][1])),
                   peak_write=float(max(result.series[f"{label}:write"][1])))
    return result


# --------------------------------------------------------------------- Fig 3
def _fig3_wc_run(config: ClusterConfig, interferer: str | None) -> float:
    """WC runtime (CPU fixed at half the cluster) vs one interferer."""
    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(config, "/in/wiki"),
                        io_weight=1.0, max_cores=48)
    if interferer == "teravalidate":
        cluster.preload_input("/in/sorted", _BIG_SORT)
        cluster.submit(teravalidate(config, "/in/sorted"),
                       io_weight=1.0, max_cores=48)
    elif interferer == "teragen":
        cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
    elif interferer == "terasort":
        cluster.preload_input("/in/tera", _BIG_SORT)
        cluster.submit(terasort(config, "/in/tera", input_bytes=_BIG_SORT),
                       io_weight=1.0, max_cores=48)
    cluster.run(wc.done)
    return wc.runtime


def fig3_contention(config: ClusterConfig | None = None) -> ExperimentResult:
    """WordCount runtime alone vs against TeraValidate/TeraGen/TeraSort
    on native Hadoop, with WC's CPU allocation fixed at half the cluster."""
    config = config or default_cluster()
    result = ExperimentResult(f"fig3_contention_{config.storage.name}")
    interferers: list[str | None] = [None, "teravalidate", "teragen", "terasort"]
    runtimes = run_specs([
        RunSpec.of(_fig3_wc_run, config, who, label=f"fig3:wc+{who or 'alone'}")
        for who in interferers
    ])
    standalone = runtimes[0]
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0)
    for who, rt in zip(interferers[1:], runtimes[1:]):
        result.row(case=f"wc+{who}", runtime=rt,
                   slowdown=slowdown(rt, standalone))
    return result


# --------------------------------------------------------------------- Fig 6
def _isolation_workload(cluster: BigDataCluster, config: ClusterConfig,
                        io_weight: float = 32.0):
    """Submit and run WC (weighted) + TeraGen on a prepared cluster;
    returns the WC job.  Split from :func:`_isolation_run` so callers
    (Fig. 7) can attach telemetry sinks to ``cluster.telemetry`` first."""
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(config, "/in/wiki"),
                        io_weight=io_weight, max_cores=48)
    cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
    cluster.run(wc.done)
    return wc


def _isolation_run(config, policy, io_weight=32.0):
    """WC (weighted) + TeraGen on the given policy; returns the WC job
    and the cluster (for throughput accounting)."""
    cluster = BigDataCluster(config, policy)
    wc = _isolation_workload(cluster, config, io_weight=io_weight)
    return wc, cluster


def _wc_alone(config: ClusterConfig) -> float:
    """WC standalone at full weight, half the cluster's cores."""
    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(config, "/in/wiki"),
                        io_weight=1.0, max_cores=48)
    cluster.run()
    return wc.runtime


def _isolation_case(
    config: ClusterConfig, policy: PolicySpec | NodePolicy
) -> tuple[float, float]:
    """One WC+TG isolation run -> (wc runtime, aggregate MB/s)."""
    wc, cluster = _isolation_run(config, policy)
    return wc.runtime, total_throughput_mbs(cluster, wc.finish_time)


def fig6_isolation_hdd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 6a/6b: WC+TG under native, SFQ(D=12/8/4/2), and SFQ(D2),
    with the 32:1 sharing ratio favouring WordCount (HDD setup)."""
    config = config or default_cluster()
    result = ExperimentResult("fig6_isolation_hdd")

    cases = [("native", PolicySpec.native())]
    cases += [(f"sfq(d={d})", PolicySpec.sfqd(depth=d)) for d in (12, 8, 4, 2)]
    cases.append(("sfq(d2)", PolicySpec.sfqd2(controller_for(config))))

    specs = [RunSpec.of(_wc_alone, config, label="fig6:wc_alone")]
    specs += [RunSpec.of(_isolation_case, config, policy, label=f"fig6:{label}")
              for label, policy in cases]
    outcomes = run_specs(specs)

    standalone = outcomes[0]
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None, throughput_loss=None)
    native_thr = outcomes[1][1]
    for (label, _policy), (runtime, thr) in zip(cases, outcomes[1:]):
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=thr,
                   throughput_loss=thr / native_thr - 1.0)
    return result


# --------------------------------------------------------------------- Fig 7
def fig7_depth_adaptation(config: ClusterConfig | None = None) -> ExperimentResult:
    """The SFQ(D2) controller's D and observed latency over time on one
    datanode during the WC+TG isolation run (flush storms included).

    Observed purely over the cluster's telemetry bus: the scheduler at
    ``dn00:persistent`` publishes one ``depth_changed`` event per control
    period, and two :class:`TimeSeriesSink` subscriptions reconstruct
    the paper's D and latency traces — no scheduler internals touched.
    """
    config = config or default_cluster()
    result = ExperimentResult("fig7_depth_adaptation")
    ctrl = controller_for(config)
    cluster = BigDataCluster(config, PolicySpec.sfqd2(ctrl))
    depth_sink = TimeSeriesSink(
        cluster.telemetry, DEPTH_CHANGED, source="dn00:persistent",
        value=lambda ev: ev.depth, name="fig7:depth",
    )
    latency_sink = TimeSeriesSink(
        cluster.telemetry, DEPTH_CHANGED, source="dn00:persistent",
        value=lambda ev: ev.latency, when=lambda ev: ev.samples > 0,
        name="fig7:latency",
    )
    _isolation_workload(cluster, config)
    depth, latency = depth_sink.series, latency_sink.series
    result.series["depth"] = (list(depth.times), list(depth.values))
    result.series["latency_ms"] = (
        list(latency.times),
        [v * 1000.0 for v in latency.values],
    )
    d_vals = depth.values
    result.row(
        samples=len(d_vals),
        d_min=float(min(d_vals)),
        d_max=float(max(d_vals)),
        d_mean=float(np.mean(d_vals)),
        lref_ms=ctrl.ref_latency_read * 1000.0,
        latency_p95_ms=float(np.percentile(latency.values, 95)) * 1000.0
        if len(latency) else None,
    )
    return result


# --------------------------------------------------------------------- Fig 8
def fig8_isolation_ssd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 8a/8b: the WC+TG isolation study on the SSD storage setup,
    where SFQ(D2) blends split read/write reference latencies."""
    config = config or default_cluster(storage=SSD_PROFILE)
    result = ExperimentResult("fig8_isolation_ssd")
    ctrl = controller_for(config)

    outcomes = run_specs([
        RunSpec.of(_wc_alone, config, label="fig8:wc_alone"),
        RunSpec.of(_isolation_case, config, PolicySpec.native(),
                   label="fig8:native"),
        RunSpec.of(_isolation_case, config, PolicySpec.sfqd2(ctrl),
                   label="fig8:sfq(d2)"),
    ])
    standalone = outcomes[0]
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None)
    for label, (runtime, thr) in zip(("native", "sfq(d2)"), outcomes[1:]):
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=thr)
    result.notes.append(
        f"SSD split references: read {ctrl.ref_latency_read * 1000:.1f} ms, "
        f"write {ctrl.ref_latency_write * 1000:.1f} ms"
    )
    return result


# ------------------------------------------------------- mixed NodePolicy
def mixed_policy_ablation(config: ClusterConfig | None = None) -> ExperimentResult:
    """Which interposition point needs managed I/O?  (NodePolicy ablation.)

    The WC+TG isolation study (Fig. 6's setup, 32:1 in favour of WC)
    with IBIS attached to *subsets* of a node's scheduling points via
    per-class :class:`NodePolicy` — something the paper's architecture
    enables (§3) but its evaluation only exercises uniformly:

    * ``native``            — no management anywhere (the §2.3 baseline);
    * ``ibis-persistent``   — SFQ(D2) on the HDFS path only;
    * ``ibis-intermediate`` — SFQ(D2) on the spill + shuffle paths only;
    * ``ibis-uniform``      — the paper's configuration, all three points.

    WC vs TeraGen contention is dominated by the HDFS disk (TG writes
    replicated output blocks), so managing PERSISTENT alone should
    recover most of the isolation and INTERMEDIATE alone very little.
    """
    config = config or default_cluster()
    result = ExperimentResult("mixed_policy_ablation")
    ctrl = controller_for(config)
    ibis = PolicySpec.sfqd2(ctrl)
    nat = PolicySpec.native()
    cases = [
        ("native", NodePolicy.uniform(nat)),
        ("ibis-persistent",
         NodePolicy(persistent=ibis, intermediate=nat, network=nat)),
        ("ibis-intermediate",
         NodePolicy(persistent=nat, intermediate=ibis, network=ibis)),
        ("ibis-uniform", NodePolicy.uniform(ibis)),
    ]

    specs = [RunSpec.of(_wc_alone, config, label="mixed:wc_alone")]
    specs += [RunSpec.of(_isolation_case, config, policy,
                         label=f"mixed:{label}") for label, policy in cases]
    outcomes = run_specs(specs)

    standalone = outcomes[0]
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None, policy=None)
    for (label, policy), (runtime, thr) in zip(cases, outcomes[1:]):
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=thr,
                   policy=policy.to_json())
    return result


# --------------------------------------------------------------------- Fig 9
def _fig9_trace(config: ClusterConfig, policy: PolicySpec,
                with_teragen: bool, n_jobs: int) -> list[float]:
    """One Facebook2009 trace replay -> sorted job runtimes."""
    trace = facebook2009_trace(config, n_jobs=n_jobs)
    cluster = BigDataCluster(config, policy)
    fb_jobs = []
    for sj in trace:
        cluster.preload_input(sj.spec.input_path, sj.input_bytes)
        fb_jobs.append(
            cluster.submit(sj.spec, io_weight=32.0, max_cores=48,
                           delay=sj.arrival)
        )
    if with_teragen:
        cluster.submit(teragen(config, output_bytes=4 * TB),
                       io_weight=1.0, max_cores=48)
    cluster.run(*[j.done for j in fb_jobs])
    return sorted(j.runtime for j in fb_jobs)


def fig9_facebook(
    config: ClusterConfig | None = None, n_jobs: int = 50
) -> ExperimentResult:
    """Cumulative distribution of Facebook2009 job runtimes: standalone,
    interfered by TeraGen on native, and isolated by SFQ(D2) at 32:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig9_facebook")
    cases = [
        ("standalone", PolicySpec.native(), False),
        ("interfered", PolicySpec.native(), True),
        ("sfq(d2)", PolicySpec.sfqd2(controller_for(config)), True),
    ]
    traces = run_specs([
        RunSpec.of(_fig9_trace, config, policy, with_tg, n_jobs,
                   label=f"fig9:{label}")
        for label, policy, with_tg in cases
    ])
    for (label, _policy, _with_tg), runtimes in zip(cases, traces):
        cdf_y = [(i + 1) / len(runtimes) for i in range(len(runtimes))]
        result.series[label] = (runtimes, cdf_y)
        result.row(case=label,
                   mean_runtime=float(np.mean(runtimes)),
                   p50=float(np.percentile(runtimes, 50)),
                   p90=float(np.percentile(runtimes, 90)))
    return result


# -------------------------------------------------------------------- Fig 10
_FIG10_QUERIES = {"q21": tpch_q21, "q9": tpch_q9}


def _fig10_ts_standalone(config: ClusterConfig) -> float:
    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/tera", 100 * GB)
    ts = cluster.submit(terasort(config, "/in/tera"), max_cores=96)
    cluster.run()
    return ts.runtime


def _fig10_q_standalone(config: ClusterConfig, qname: str) -> float:
    cluster = BigDataCluster(config, PolicySpec.native())
    q = _FIG10_QUERIES[qname](config)
    cluster.preload_input(q.table_paths[0], q.table_bytes[0])
    run = run_query(cluster, q, max_cores=96)
    cluster.run(run.done)
    return run.runtime


def _fig10_contend(config: ClusterConfig, qname: str, policy: PolicySpec,
                   io_weight: float) -> tuple[float, float]:
    """TPC-H query vs TeraSort under one policy -> (query, TS) runtimes."""
    cluster = BigDataCluster(config, policy)
    q = _FIG10_QUERIES[qname](config)
    cluster.preload_input(q.table_paths[0], q.table_bytes[0])
    cluster.preload_input("/in/tera", 100 * GB)
    run = run_query(cluster, q, io_weight=io_weight, max_cores=48)
    ts = cluster.submit(terasort(config, "/in/tera"),
                        io_weight=1.0, max_cores=48)
    cluster.run(run.done, ts.done)
    return run.runtime, ts.runtime


def fig10_multiframework(config: ClusterConfig | None = None) -> ExperimentResult:
    """TPC-H queries on Hive vs TeraSort on MapReduce under native,
    cgroups (weight 100:1 / throttle), and IBIS 100:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig10_multiframework")
    ctrl = controller_for(config)

    policies = [
        ("native", PolicySpec.native(), 1.0),
        ("cg(weight)-100:1", PolicySpec.cgroups_weight(), 100.0),
        ("cg(throttle)", PolicySpec.cgroups_throttle({"terasort": _THROTTLE_BPS}),
         100.0),
        ("ibis-100:1", PolicySpec.sfqd2(ctrl), 100.0),
    ]
    qnames = list(_FIG10_QUERIES)

    specs = [RunSpec.of(_fig10_ts_standalone, config, label="fig10:ts_solo")]
    specs += [RunSpec.of(_fig10_q_standalone, config, qname,
                         label=f"fig10:{qname}_solo") for qname in qnames]
    specs += [
        RunSpec.of(_fig10_contend, config, qname, policy, w,
                   label=f"fig10:{qname}+{label}")
        for qname in qnames
        for label, policy, w in policies
    ]
    outcomes = run_specs(specs)

    ts_solo = outcomes[0]
    q_solos = dict(zip(qnames, outcomes[1:1 + len(qnames)]))
    contend = iter(outcomes[1 + len(qnames):])
    for qname in qnames:
        solo = q_solos[qname]
        for label, _policy, _w in policies:
            q_rt, ts_rt = next(contend)
            q_rel = relative_performance(q_rt, solo)
            ts_rel = relative_performance(ts_rt, ts_solo)
            result.row(query=qname, case=label,
                       query_rel_perf=q_rel, ts_rel_perf=ts_rel,
                       avg_rel_perf=(q_rel + ts_rel) / 2.0)
    return result


# -------------------------------------------------------------------- Fig 11
def _fig11_solo(config: ClusterConfig, which: str, cores: int = 96) -> float:
    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/tera", 100 * GB)
    spec = teragen(config) if which == "teragen" else terasort(config, "/in/tera")
    j = cluster.submit(spec, max_cores=cores)
    cluster.run()
    return j.runtime


def _fig11_pair(config: ClusterConfig, policy: PolicySpec, ts_cores: int,
                tg_cores: int, ts_w: float, tg_w: float) -> tuple[float, float]:
    """TS + TG sharing the cluster -> (TS runtime, TG runtime)."""
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/tera", 100 * GB)
    ts = cluster.submit(terasort(config, "/in/tera"),
                        io_weight=ts_w, max_cores=ts_cores)
    tg = cluster.submit(teragen(config), io_weight=tg_w, max_cores=tg_cores)
    cluster.run()
    return ts.runtime, tg.runtime


def fig11_proportional_slowdown(
    config: ClusterConfig | None = None,
) -> ExperimentResult:
    """Equal slowdown for TeraSort vs TeraGen: CPU-only tuning (Fair
    Scheduler 5:1) vs CPU 2:1 + IBIS I/O 2:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig11_proportional_slowdown")
    ctrl = controller_for(config)

    # The paper's methodology is manual tuning toward equal slowdown; we
    # search the same small knob grids and report the best of each mode.
    fs_grid = [(PolicySpec.native(), ts_cores, 96 - ts_cores, 1.0, 1.0,
                f"fs-{ts_cores}:{96 - ts_cores}")
               for ts_cores in (80, 72, 64, 56)]
    ibis_grid = [(PolicySpec.sfqd2(ctrl), ts_cores, 96 - ts_cores, io_ratio, 1.0,
                  f"fs-{ts_cores}:{96 - ts_cores}+io-{io_ratio:g}:1")
                 for ts_cores in (64, 56, 48)
                 for io_ratio in (2.0, 4.0, 8.0)]

    specs = [RunSpec.of(_fig11_solo, config, "terasort", label="fig11:ts_solo"),
             RunSpec.of(_fig11_solo, config, "teragen", label="fig11:tg_solo")]
    specs += [RunSpec.of(_fig11_pair, config, policy, tsc, tgc, tsw, tgw,
                         label=f"fig11:{label}")
              for policy, tsc, tgc, tsw, tgw, label in fs_grid + ibis_grid]
    outcomes = run_specs(specs)

    ts_solo, tg_solo = outcomes[0], outcomes[1]
    pair_runtimes = outcomes[2:]

    def best(grid, runtimes):
        candidates = [
            (abs(slowdown(ts_rt, ts_solo) - slowdown(tg_rt, tg_solo)),
             slowdown(ts_rt, ts_solo), slowdown(tg_rt, tg_solo), label)
            for (_p, _tc, _gc, _tw, _gw, label), (ts_rt, tg_rt)
            in zip(grid, runtimes)
        ]
        return min(candidates)

    gap, t, g, label = best(fs_grid, pair_runtimes[: len(fs_grid)])
    result.row(case=f"cpu only ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)
    gap, t, g, label = best(ibis_grid, pair_runtimes[len(fs_grid):])
    result.row(case=f"cpu+ibis ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)
    return result


# -------------------------------------------------------------------- Fig 12
def _fig12_skew_nodes(config: ClusterConfig) -> list[str]:
    return [f"dn{i:02d}" for i in range(config.n_workers // 2)]


def _fig12_windowed_ratio(config: ClusterConfig, policy: PolicySpec,
                          window: float = 8.0) -> float:
    """Total-service ratio (wide/hot) over a fixed window (target 1.0)."""
    skew_nodes = _fig12_skew_nodes(config)
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/hot", 800 * GB, nodes=skew_nodes)
    cluster.preload_input("/in/wide", 800 * GB)
    cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                   io_weight=1.0, max_cores=48)
    cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                   io_weight=1.0, max_cores=48)
    cluster.run_for(window)
    svc = cluster.total_service_by_app()
    hot = next(v for k, v in svc.items() if "hot" in k)
    wide = next(v for k, v in svc.items() if "wide" in k)
    return wide / hot


def _fig12_solo(config: ClusterConfig, path: str, skewed: bool,
                name: str) -> float:
    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input(path, 200 * GB,
                          nodes=_fig12_skew_nodes(config) if skewed else None)
    j = cluster.submit(teravalidate(config, path, name=name), max_cores=96)
    cluster.run()
    return j.runtime


def _fig12_pair(config: ClusterConfig, policy: PolicySpec) -> tuple[float, float]:
    """Skewed + wide scans sharing the cluster -> their runtimes."""
    skew_nodes = _fig12_skew_nodes(config)
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/hot", 200 * GB, nodes=skew_nodes)
    cluster.preload_input("/in/wide", 200 * GB)
    hot = cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                         io_weight=1.0, max_cores=48)
    wide = cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                          io_weight=1.0, max_cores=48)
    cluster.run()
    return hot.runtime, wide.runtime


def fig12_coordination(config: ClusterConfig | None = None) -> ExperimentResult:
    """Distributed scheduling coordination on vs off (§5, §7.6).

    The paper's testbed develops uneven per-node service naturally; at
    simulation scale we induce it the way §5 describes it arising —
    skewed data distribution: a scan whose data lives on half the nodes
    shares the cluster with a scan over evenly spread data, at equal
    weights.  Reported: the total-service ratio over a fixed window
    (target 1.0) and each application's slowdown, with coordination
    disabled (No Sync) and enabled (Sync)."""
    config = config or default_cluster()
    result = ExperimentResult("fig12_coordination")
    ctrl = controller_for(config)
    modes = [(False, "no sync"), (True, "sync")]

    specs = [
        RunSpec.of(_fig12_windowed_ratio, config,
                   PolicySpec.sfqd2(ctrl, coordinated=coordinated),
                   label=f"fig12:ratio:{label}")
        for coordinated, label in modes
    ]
    specs += [
        RunSpec.of(_fig12_solo, config, "/in/hot", True, "scan-hot",
                   label="fig12:hot_solo"),
        RunSpec.of(_fig12_solo, config, "/in/wide", False, "scan-wide",
                   label="fig12:wide_solo"),
    ]
    specs += [
        RunSpec.of(_fig12_pair, config,
                   PolicySpec.sfqd2(ctrl, coordinated=coordinated),
                   label=f"fig12:pair:{label}")
        for coordinated, label in modes
    ]
    outcomes = run_specs(specs)

    ratios = outcomes[:2]
    hot_solo, wide_solo = outcomes[2], outcomes[3]
    pairs = outcomes[4:]
    for (coordinated, label), ratio, (hot_rt, wide_rt) in zip(modes, ratios, pairs):
        result.row(case=label,
                   total_service_ratio=ratio,
                   ratio_error=abs(ratio - 1.0),
                   hot_slowdown=slowdown(hot_rt, hot_solo),
                   wide_slowdown=slowdown(wide_rt, wide_solo))
    return result


# -------------------------------------------------------------------- Fig 13
def _single_app_run(config: ClusterConfig, app: str,
                    policy: PolicySpec) -> float:
    """One app alone with the full cluster -> runtime (Fig. 13)."""
    job, _cluster = _single_app_job(config, app, policy)
    return job.runtime


def _single_app_job(config: ClusterConfig, app: str, policy: PolicySpec):
    preloads = {}
    if app == "wordcount":
        preloads["/in/wiki"] = 50 * GB
        spec = wordcount(config, "/in/wiki")
    elif app == "terasort":
        preloads["/in/tera"] = 100 * GB
        spec = terasort(config, "/in/tera")
    else:
        spec = teragen(config)
    return run_single_job(config, policy, spec, preloads, max_cores=96)


def fig13_overhead(config: ClusterConfig | None = None) -> ExperimentResult:
    """Per-application overhead of IBIS interposition and scheduling:
    WC/TG/TS each alone with the full cluster, native vs IBIS."""
    config = config or default_cluster()
    result = ExperimentResult("fig13_overhead")
    ctrl = controller_for(config)
    apps = ("wordcount", "teragen", "terasort")

    runtimes = run_specs([
        RunSpec.of(_single_app_run, config, app, policy,
                   label=f"fig13:{app}:{label}")
        for app in apps
        for policy, label in ((PolicySpec.native(), "native"),
                              (PolicySpec.sfqd2(ctrl), "ibis"))
    ])
    it = iter(runtimes)
    for app in apps:
        rt_native, rt_ibis = next(it), next(it)
        result.row(app=app, native=rt_native, ibis=rt_ibis,
                   overhead=rt_ibis / rt_native - 1.0)
    return result


# -------------------------------------------------------------------- Tab 2
def _tab2_run(config: ClusterConfig, app: str, policy: PolicySpec) -> dict:
    """One instrumented run -> the scalars Table 2 is computed from."""
    job, cluster = _single_app_job(config, app, policy)
    return {
        "runtime": job.runtime,
        "requests": sum(s.stats.total_requests for s in cluster.schedulers()),
        "broker_messages": cluster.broker.messages if cluster.broker else 0,
        "broker_message_bytes":
            cluster.broker.message_bytes if cluster.broker else 0.0,
    }


def tab2_resource_usage(config: ClusterConfig | None = None) -> ExperimentResult:
    """Daemon CPU/memory usage attributable to I/O management.

    The simulation does not execute daemon code on real CPUs, so the
    paper's utilisation numbers are estimated from the measured volume
    of scheduler work: requests queued/dispatched (CPU) and peak queue
    plus broker-table footprints (memory).  Costs per operation follow
    the prototype's ballpark (tens of microseconds per request, ~100
    bytes of queue state per request)."""
    config = config or default_cluster()
    result = ExperimentResult("tab2_resource_usage")
    ctrl = controller_for(config)
    # Native interposition just forwards a request; IBIS additionally
    # tags it, computes SFQ start/finish tags, and maintains the queue.
    cpu_s_per_request = {"native": 8e-6, "ibis": 25e-6}
    bytes_per_queued_request = 120.0   # request object + heap slot

    apps = ("wordcount", "teragen", "terasort")
    policies = [(PolicySpec.native(), "native"),
                (PolicySpec.sfqd2(ctrl, coordinated=True), "ibis")]
    stats = run_specs([
        RunSpec.of(_tab2_run, config, app, policy,
                   label=f"tab2:{app}:{label}")
        for app in apps
        for policy, label in policies
    ])
    it = iter(stats)
    for app in apps:
        for _policy, label in policies:
            s = next(it)
            requests = s["requests"]
            sched_cpu_s = requests * cpu_s_per_request[label]
            if label == "ibis":
                sched_cpu_s += s["broker_messages"] * 50e-6
            # per-core %, over the run, across the cluster's daemon cores
            cpu_pct = 100.0 * sched_cpu_s / (s["runtime"] * config.n_workers)
            mem_bytes = (requests / max(1.0, s["runtime"])
                         * bytes_per_queued_request)
            if label == "ibis":
                mem_bytes += s["broker_message_bytes"] / max(1.0, s["runtime"])
            result.row(app=app, case=label,
                       cpu_pct=cpu_pct,
                       mem_mb_per_node=mem_bytes / MB,
                       requests=requests)
    return result


# ------------------------------------------------------------------- faults
#: per-scan input volume of the fault-tolerance study (paper-sized;
#: scaled by ``config.scale`` like every other experiment input)
_FAULT_SCAN = 200 * GB


def _faults_plan(config: ClusterConfig) -> FaultPlan:
    """The study's fault schedule, timed relative to a deterministic
    estimate of the run length so it lands mid-run at any ``--scale``:
    a transient datanode crash early, a broker outage through the
    middle, and a fail-slow HDFS disk in the second half."""
    # Two scans reading _FAULT_SCAN each over the cluster's aggregate
    # peak storage bandwidth — a deliberately crude lower bound.
    t_est = 2.0 * config.scaled(_FAULT_SCAN) / (
        config.n_workers * config.storage.peak_rate
    )
    return FaultPlan(
        events=(
            FaultEvent.node_crash(0.2 * t_est, "dn01", duration=0.3 * t_est),
            FaultEvent.broker_outage(0.3 * t_est, duration=0.2 * t_est),
            FaultEvent.slow_disk(
                0.6 * t_est, "dn02", duration=0.3 * t_est, factor=0.25
            ),
        ),
    )


def _faults_case(
    config: ClusterConfig,
    policy: PolicySpec,
    with_faults: bool,
) -> dict:
    """Two weighted TeraValidate scans (4:1) under one policy, with or
    without the fault schedule; returns the realised service ratio over
    the shared window plus fault-handling counters."""
    plan = _faults_plan(config) if with_faults else None
    cluster = BigDataCluster(config, policy, faults=plan)
    failovers = CounterSink(cluster.telemetry, REPLICA_FAILOVER)
    retries = CounterSink(cluster.telemetry, TASK_RETRY)
    cluster.preload_input("/in/scan-hi", _FAULT_SCAN)
    cluster.preload_input("/in/scan-lo", _FAULT_SCAN)
    hi = cluster.submit(teravalidate(config, "/in/scan-hi", name="scan-hi"),
                        io_weight=32.0, max_cores=48)
    lo = cluster.submit(teravalidate(config, "/in/scan-lo", name="scan-lo"),
                        io_weight=1.0, max_cores=48)
    cluster.run()
    t_end = min(hi.finish_time, lo.finish_time)

    def service(job):
        return sum(
            m.window_total(0.0, t_end)
            for m in cluster.app_throughput_meters(job.app_id)
        )

    svc_lo = service(lo)
    return {
        "ratio": service(hi) / svc_lo if svc_lo > 0 else float("inf"),
        "hi_runtime": hi.runtime,
        "lo_runtime": lo.runtime,
        "failovers": failovers.count,
        "retries": retries.count,
        "orphaned": cluster.sim.orphaned_faults,
    }


def faults_experiment(config: ClusterConfig | None = None) -> ExperimentResult:
    """Proportional sharing under faults: does the 4:1 share survive a
    datanode crash, a broker outage, and a fail-slow disk?

    The paper's evaluation (§7) assumes a healthy cluster; this
    experiment injects the failure modes real YARN clusters exhibit and
    shows IBIS still delivers weight-proportional sharing (all jobs
    finishing, via replica failover and task re-attempts) while the
    native and cgroups baselines never had a share to defend.
    """
    config = config or default_cluster()
    result = ExperimentResult("faults_experiment")
    cases = [
        ("native", PolicySpec.native()),
        ("cgroups", PolicySpec.cgroups_weight()),
        ("ibis", PolicySpec.sfqd2(controller_for(config), coordinated=True)),
    ]
    specs = [RunSpec.of(_faults_case, config, cases[-1][1], False,
                        label="faults:ibis-healthy")]
    specs += [
        RunSpec.of(_faults_case, config, policy, True, label=f"faults:{label}")
        for label, policy in cases
    ]
    outcomes = run_specs(specs)
    healthy = outcomes[0]
    result.row(case="ibis-healthy", faulted=False, ratio=healthy["ratio"],
               ratio_preserved=1.0,
               hi_runtime=healthy["hi_runtime"],
               lo_runtime=healthy["lo_runtime"],
               failovers=healthy["failovers"], retries=healthy["retries"])
    for (label, _policy), out in zip(cases, outcomes[1:]):
        result.row(case=label, faulted=True, ratio=out["ratio"],
                   ratio_preserved=out["ratio"] / healthy["ratio"],
                   hi_runtime=out["hi_runtime"], lo_runtime=out["lo_runtime"],
                   failovers=out["failovers"], retries=out["retries"])
    result.notes.append(
        "io_weight 32:1; 'ratio' is realised service over the window both "
        "scans run (closed-loop scans demand-cap it well below 32 — the "
        "per-policy differentiation, not the nominal weight, is the "
        "signal); 'ratio_preserved' compares against the healthy IBIS run; "
        "faults: dn01 crash (transient), broker outage, dn02 fail-slow "
        "HDFS disk at 25% rate"
    )
    return result


# -------------------------------------------------------------------- Tab 3
def tab3_loc(config: ClusterConfig | None = None) -> ExperimentResult:
    """Development cost (lines of code) per IBIS component — this
    reproduction's equivalent of the paper's Table 3."""
    result = ExperimentResult("tab3_loc")
    root = pathlib.Path(__file__).resolve().parent.parent
    components = {
        "interposition": ["core/tags.py", "core/request.py", "core/base.py",
                          "core/interposition.py"],
        "sfq(d) scheduler": ["core/sfq.py"],
        "sfq(d2) scheduler": ["core/sfqd2.py", "core/profiling.py"],
        "scheduling coordination": ["core/broker.py"],
        "cgroups baseline": ["core/cgroups.py"],
    }
    total = 0
    for component, files in components.items():
        loc = 0
        for rel in files:
            text = (root / rel).read_text().splitlines()
            loc += sum(
                1 for line in text
                if line.strip() and not line.strip().startswith("#")
            )
        result.row(component=component, loc=loc)
        total += loc
    result.row(component="total", loc=total)
    return result
