"""One function per figure/table of the paper's evaluation (§7).

All experiments run at ``scale`` (default 1/64 of the paper's data
volumes) on the simulated 8-worker testbed; paper-vs-measured notes for
each are kept in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.cluster import BigDataCluster
from repro.config import (
    GB,
    MB,
    SSD_PROFILE,
    TB,
    ClusterConfig,
    default_cluster,
)
from repro.core import IOClass, PolicySpec
from repro.core.metrics import relative_performance, slowdown
from repro.core.sfqd2 import SFQD2Scheduler
from repro.experiments.harness import (
    ExperimentResult,
    controller_for,
    run_single_job,
    total_throughput_mbs,
)
from repro.hive import run_query, tpch_q9, tpch_q21
from repro.workloads import (
    facebook2009_trace,
    teragen,
    terasort,
    teravalidate,
    wordcount,
)

__all__ = [
    "fig2_io_profiles",
    "fig3_contention",
    "fig6_isolation_hdd",
    "fig7_depth_adaptation",
    "fig8_isolation_ssd",
    "fig9_facebook",
    "fig10_multiframework",
    "fig11_proportional_slowdown",
    "fig12_coordination",
    "fig13_overhead",
    "tab2_resource_usage",
    "tab3_loc",
]

#: interferer sizes for the contention studies: the paper runs TeraSort
#: with 50–400 GB inputs; the large end keeps the aggressor I/O-active
#: for the victim's whole run at simulation scale.
_BIG_SORT = 400 * GB

#: cgroups throttle cap (Fig. 10): the paper throttles TeraSort to
#: 1 MB/s per container; one node runs ~12 containers and spill writes
#: land in the page cache before the block layer sees them, so the
#: effective per-node cap on scheduled intermediate I/O is far higher.
_THROTTLE_BPS = 48.0 * MB


# --------------------------------------------------------------------- Fig 2
def fig2_io_profiles(config: ClusterConfig | None = None) -> ExperimentResult:
    """I/O demand (read/write MB/s vs time) of TeraSort and WordCount,
    each running alone with the full cluster."""
    config = config or default_cluster()
    result = ExperimentResult("fig2_io_profiles")
    for label, spec, preloads in (
        ("terasort", terasort(config, "/in/tera", input_bytes=100 * GB),
         {"/in/tera": 100 * GB}),
        ("wordcount", wordcount(config, "/in/wiki"), {"/in/wiki": 50 * GB}),
    ):
        job, cluster = run_single_job(
            config, PolicySpec.native(), spec, preloads, max_cores=None
        )
        t_end = job.finish_time
        for op in ("read", "write"):
            agg = np.zeros(max(1, int(np.ceil(t_end)) + 1))
            times = np.arange(len(agg), dtype=float)
            for meter in cluster.device_meters(op):
                ts = meter.rate_series(bucket=1.0, t_end=t_end + 1.0)
                vals = np.asarray(ts.values)
                agg[: len(vals)] += vals / MB
            result.series[f"{label}:{op}"] = (times.tolist(), agg.tolist())
        result.row(app=label, runtime=job.runtime,
                   peak_read=float(max(result.series[f"{label}:read"][1])),
                   peak_write=float(max(result.series[f"{label}:write"][1])))
    return result


# --------------------------------------------------------------------- Fig 3
def fig3_contention(config: ClusterConfig | None = None) -> ExperimentResult:
    """WordCount runtime alone vs against TeraValidate/TeraGen/TeraSort
    on native Hadoop, with WC's CPU allocation fixed at half the cluster."""
    config = config or default_cluster()
    result = ExperimentResult(f"fig3_contention_{config.storage.name}")

    def run_wc(interferer: str | None) -> float:
        cluster = BigDataCluster(config, PolicySpec.native())
        cluster.preload_input("/in/wiki", 50 * GB)
        wc = cluster.submit(wordcount(config, "/in/wiki"),
                            io_weight=1.0, max_cores=48)
        if interferer == "teravalidate":
            cluster.preload_input("/in/sorted", _BIG_SORT)
            cluster.submit(teravalidate(config, "/in/sorted"),
                           io_weight=1.0, max_cores=48)
        elif interferer == "teragen":
            cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
        elif interferer == "terasort":
            cluster.preload_input("/in/tera", _BIG_SORT)
            cluster.submit(terasort(config, "/in/tera", input_bytes=_BIG_SORT),
                           io_weight=1.0, max_cores=48)
        cluster.run(wc.done)
        return wc.runtime

    standalone = run_wc(None)
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0)
    for interferer in ("teravalidate", "teragen", "terasort"):
        rt = run_wc(interferer)
        result.row(case=f"wc+{interferer}", runtime=rt,
                   slowdown=slowdown(rt, standalone))
    return result


# --------------------------------------------------------------------- Fig 6
def _isolation_run(config, policy, io_weight=32.0):
    """WC (weighted) + TeraGen on the given policy; returns the WC job
    and the cluster (for throughput accounting)."""
    cluster = BigDataCluster(config, policy)
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(config, "/in/wiki"),
                        io_weight=io_weight, max_cores=48)
    cluster.submit(teragen(config), io_weight=1.0, max_cores=48)
    cluster.run(wc.done)
    return wc, cluster


def fig6_isolation_hdd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 6a/6b: WC+TG under native, SFQ(D=12/8/4/2), and SFQ(D2),
    with the 32:1 sharing ratio favouring WordCount (HDD setup)."""
    config = config or default_cluster()
    result = ExperimentResult("fig6_isolation_hdd")

    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/wiki", 50 * GB)
    wc_alone = cluster.submit(wordcount(config, "/in/wiki"),
                              io_weight=1.0, max_cores=48)
    cluster.run()
    standalone = wc_alone.runtime
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None, throughput_loss=None)

    wc, cl = _isolation_run(config, PolicySpec.native())
    native_thr = total_throughput_mbs(cl, wc.finish_time)
    result.row(case="native", runtime=wc.runtime,
               slowdown=slowdown(wc.runtime, standalone),
               throughput_mbs=native_thr, throughput_loss=0.0)

    cases = [(f"sfq(d={d})", PolicySpec.sfqd(depth=d)) for d in (12, 8, 4, 2)]
    cases.append(("sfq(d2)", PolicySpec.sfqd2(controller_for(config))))
    for label, policy in cases:
        wc, cl = _isolation_run(config, policy)
        thr = total_throughput_mbs(cl, wc.finish_time)
        result.row(case=label, runtime=wc.runtime,
                   slowdown=slowdown(wc.runtime, standalone),
                   throughput_mbs=thr,
                   throughput_loss=thr / native_thr - 1.0)
    return result


# --------------------------------------------------------------------- Fig 7
def fig7_depth_adaptation(config: ClusterConfig | None = None) -> ExperimentResult:
    """The SFQ(D2) controller's D and observed latency over time on one
    datanode during the WC+TG isolation run (flush storms included)."""
    config = config or default_cluster()
    result = ExperimentResult("fig7_depth_adaptation")
    ctrl = controller_for(config)
    _wc, cluster = _isolation_run(config, PolicySpec.sfqd2(ctrl))
    sched = cluster.nodes["dn00"].schedulers[IOClass.PERSISTENT]
    assert isinstance(sched, SFQD2Scheduler)
    result.series["depth"] = (list(sched.depth_series.times),
                              list(sched.depth_series.values))
    result.series["latency_ms"] = (
        list(sched.latency_series.times),
        [v * 1000.0 for v in sched.latency_series.values],
    )
    d_vals = sched.depth_series.values
    result.row(
        samples=len(d_vals),
        d_min=float(min(d_vals)),
        d_max=float(max(d_vals)),
        d_mean=float(np.mean(d_vals)),
        lref_ms=ctrl.ref_latency_read * 1000.0,
        latency_p95_ms=float(np.percentile(sched.latency_series.values, 95)) * 1000.0
        if len(sched.latency_series) else None,
    )
    return result


# --------------------------------------------------------------------- Fig 8
def fig8_isolation_ssd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 8a/8b: the WC+TG isolation study on the SSD storage setup,
    where SFQ(D2) blends split read/write reference latencies."""
    config = config or default_cluster(storage=SSD_PROFILE)
    result = ExperimentResult("fig8_isolation_ssd")

    cluster = BigDataCluster(config, PolicySpec.native())
    cluster.preload_input("/in/wiki", 50 * GB)
    wc_alone = cluster.submit(wordcount(config, "/in/wiki"),
                              io_weight=1.0, max_cores=48)
    cluster.run()
    standalone = wc_alone.runtime
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None)

    wc, cl = _isolation_run(config, PolicySpec.native())
    native_thr = total_throughput_mbs(cl, wc.finish_time)
    result.row(case="native", runtime=wc.runtime,
               slowdown=slowdown(wc.runtime, standalone),
               throughput_mbs=native_thr)

    ctrl = controller_for(config)
    wc, cl = _isolation_run(config, PolicySpec.sfqd2(ctrl))
    thr = total_throughput_mbs(cl, wc.finish_time)
    result.row(case="sfq(d2)", runtime=wc.runtime,
               slowdown=slowdown(wc.runtime, standalone),
               throughput_mbs=thr)
    result.notes.append(
        f"SSD split references: read {ctrl.ref_latency_read * 1000:.1f} ms, "
        f"write {ctrl.ref_latency_write * 1000:.1f} ms"
    )
    return result


# --------------------------------------------------------------------- Fig 9
def fig9_facebook(
    config: ClusterConfig | None = None, n_jobs: int = 50
) -> ExperimentResult:
    """Cumulative distribution of Facebook2009 job runtimes: standalone,
    interfered by TeraGen on native, and isolated by SFQ(D2) at 32:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig9_facebook")
    trace = facebook2009_trace(config, n_jobs=n_jobs)

    def run_trace(policy, with_teragen):
        cluster = BigDataCluster(config, policy)
        fb_jobs = []
        for sj in trace:
            cluster.preload_input(sj.spec.input_path, sj.input_bytes)
            fb_jobs.append(
                cluster.submit(sj.spec, io_weight=32.0, max_cores=48,
                               delay=sj.arrival)
            )
        if with_teragen:
            cluster.submit(teragen(config, output_bytes=4 * TB),
                           io_weight=1.0, max_cores=48)
        cluster.run(*[j.done for j in fb_jobs])
        return sorted(j.runtime for j in fb_jobs)

    for label, policy, with_tg in (
        ("standalone", PolicySpec.native(), False),
        ("interfered", PolicySpec.native(), True),
        ("sfq(d2)", PolicySpec.sfqd2(controller_for(config)), True),
    ):
        runtimes = run_trace(policy, with_tg)
        cdf_y = [(i + 1) / len(runtimes) for i in range(len(runtimes))]
        result.series[label] = (runtimes, cdf_y)
        result.row(case=label,
                   mean_runtime=float(np.mean(runtimes)),
                   p50=float(np.percentile(runtimes, 50)),
                   p90=float(np.percentile(runtimes, 90)))
    return result


# -------------------------------------------------------------------- Fig 10
def fig10_multiframework(config: ClusterConfig | None = None) -> ExperimentResult:
    """TPC-H queries on Hive vs TeraSort on MapReduce under native,
    cgroups (weight 100:1 / throttle), and IBIS 100:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig10_multiframework")
    ctrl = controller_for(config)

    def ts_standalone():
        cluster = BigDataCluster(config, PolicySpec.native())
        cluster.preload_input("/in/tera", 100 * GB)
        ts = cluster.submit(terasort(config, "/in/tera"), max_cores=96)
        cluster.run()
        return ts.runtime

    def q_standalone(query_fn):
        cluster = BigDataCluster(config, PolicySpec.native())
        q = query_fn(config)
        cluster.preload_input(q.table_paths[0], q.table_bytes[0])
        run = run_query(cluster, q, max_cores=96)
        cluster.run(run.done)
        return run.runtime

    def contend(query_fn, policy, io_weight):
        cluster = BigDataCluster(config, policy)
        q = query_fn(config)
        cluster.preload_input(q.table_paths[0], q.table_bytes[0])
        cluster.preload_input("/in/tera", 100 * GB)
        run = run_query(cluster, q, io_weight=io_weight, max_cores=48)
        ts = cluster.submit(terasort(config, "/in/tera"),
                            io_weight=1.0, max_cores=48)
        cluster.run(run.done, ts.done)
        return run.runtime, ts.runtime

    ts_solo = ts_standalone()
    policies = [
        ("native", PolicySpec.native(), 1.0),
        ("cg(weight)-100:1", PolicySpec.cgroups_weight(), 100.0),
        ("cg(throttle)", PolicySpec.cgroups_throttle({"terasort": _THROTTLE_BPS}),
         100.0),
        ("ibis-100:1", PolicySpec.sfqd2(ctrl), 100.0),
    ]
    for qname, query_fn in (("q21", tpch_q21), ("q9", tpch_q9)):
        solo = q_standalone(query_fn)
        for label, policy, w in policies:
            q_rt, ts_rt = contend(query_fn, policy, w)
            q_rel = relative_performance(q_rt, solo)
            ts_rel = relative_performance(ts_rt, ts_solo)
            result.row(query=qname, case=label,
                       query_rel_perf=q_rel, ts_rel_perf=ts_rel,
                       avg_rel_perf=(q_rel + ts_rel) / 2.0)
    return result


# -------------------------------------------------------------------- Fig 11
def fig11_proportional_slowdown(
    config: ClusterConfig | None = None,
) -> ExperimentResult:
    """Equal slowdown for TeraSort vs TeraGen: CPU-only tuning (Fair
    Scheduler 5:1) vs CPU 2:1 + IBIS I/O 2:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig11_proportional_slowdown")

    def solo(builder, cores=96):
        cluster = BigDataCluster(config, PolicySpec.native())
        cluster.preload_input("/in/tera", 100 * GB)
        spec = builder(config) if builder is teragen else builder(config, "/in/tera")
        j = cluster.submit(spec, max_cores=cores)
        cluster.run()
        return j.runtime

    ts_solo = solo(terasort)
    tg_solo = solo(teragen)

    def pair(policy, ts_cores, tg_cores, ts_w, tg_w):
        cluster = BigDataCluster(config, policy)
        cluster.preload_input("/in/tera", 100 * GB)
        ts = cluster.submit(terasort(config, "/in/tera"),
                            io_weight=ts_w, max_cores=ts_cores)
        tg = cluster.submit(teragen(config), io_weight=tg_w, max_cores=tg_cores)
        cluster.run()
        return slowdown(ts.runtime, ts_solo), slowdown(tg.runtime, tg_solo)

    # The paper's methodology is manual tuning toward equal slowdown; we
    # search the same small knob grids and report the best of each mode.
    def best(candidates):
        outcomes = [(abs(t - g), t, g, label) for (t, g, label) in candidates]
        return min(outcomes)

    fs_only = []
    for ts_cores in (80, 72, 64, 56):
        t, g = pair(PolicySpec.native(), ts_cores, 96 - ts_cores, 1.0, 1.0)
        fs_only.append((t, g, f"fs-{ts_cores}:{96 - ts_cores}"))
    gap, t, g, label = best(fs_only)
    result.row(case=f"cpu only ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)

    ctrl = controller_for(config)
    with_ibis = []
    for ts_cores in (64, 56, 48):
        for io_ratio in (2.0, 4.0, 8.0):
            t, g = pair(PolicySpec.sfqd2(ctrl), ts_cores, 96 - ts_cores,
                        io_ratio, 1.0)
            with_ibis.append(
                (t, g, f"fs-{ts_cores}:{96 - ts_cores}+io-{io_ratio:g}:1")
            )
    gap, t, g, label = best(with_ibis)
    result.row(case=f"cpu+ibis ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)
    return result


# -------------------------------------------------------------------- Fig 12
def fig12_coordination(config: ClusterConfig | None = None) -> ExperimentResult:
    """Distributed scheduling coordination on vs off (§5, §7.6).

    The paper's testbed develops uneven per-node service naturally; at
    simulation scale we induce it the way §5 describes it arising —
    skewed data distribution: a scan whose data lives on half the nodes
    shares the cluster with a scan over evenly spread data, at equal
    weights.  Reported: the total-service ratio over a fixed window
    (target 1.0) and each application's slowdown, with coordination
    disabled (No Sync) and enabled (Sync)."""
    config = config or default_cluster()
    result = ExperimentResult("fig12_coordination")
    skew_nodes = [f"dn{i:02d}" for i in range(config.n_workers // 2)]
    ctrl = controller_for(config)

    def windowed_ratio(coordinated: bool, window: float = 8.0) -> float:
        cluster = BigDataCluster(
            config, PolicySpec.sfqd2(ctrl, coordinated=coordinated)
        )
        cluster.preload_input("/in/hot", 800 * GB, nodes=skew_nodes)
        cluster.preload_input("/in/wide", 800 * GB)
        cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                       io_weight=1.0, max_cores=48)
        cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                       io_weight=1.0, max_cores=48)
        cluster.run_for(window)
        svc = cluster.total_service_by_app()
        hot = next(v for k, v in svc.items() if "hot" in k)
        wide = next(v for k, v in svc.items() if "wide" in k)
        return wide / hot

    def solo(path, nodes=None, name="scan"):
        cluster = BigDataCluster(config, PolicySpec.native())
        cluster.preload_input(path, 200 * GB, nodes=nodes)
        j = cluster.submit(teravalidate(config, path, name=name), max_cores=96)
        cluster.run()
        return j.runtime

    hot_solo = solo("/in/hot", nodes=skew_nodes, name="scan-hot")
    wide_solo = solo("/in/wide", name="scan-wide")

    def pair(coordinated: bool):
        cluster = BigDataCluster(
            config, PolicySpec.sfqd2(ctrl, coordinated=coordinated)
        )
        cluster.preload_input("/in/hot", 200 * GB, nodes=skew_nodes)
        cluster.preload_input("/in/wide", 200 * GB)
        hot = cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                             io_weight=1.0, max_cores=48)
        wide = cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                              io_weight=1.0, max_cores=48)
        cluster.run()
        return slowdown(hot.runtime, hot_solo), slowdown(wide.runtime, wide_solo)

    for coordinated, label in ((False, "no sync"), (True, "sync")):
        ratio = windowed_ratio(coordinated)
        hot_sd, wide_sd = pair(coordinated)
        result.row(case=label,
                   total_service_ratio=ratio,
                   ratio_error=abs(ratio - 1.0),
                   hot_slowdown=hot_sd, wide_slowdown=wide_sd)
    return result


# -------------------------------------------------------------------- Fig 13
def fig13_overhead(config: ClusterConfig | None = None) -> ExperimentResult:
    """Per-application overhead of IBIS interposition and scheduling:
    WC/TG/TS each alone with the full cluster, native vs IBIS."""
    config = config or default_cluster()
    result = ExperimentResult("fig13_overhead")
    ctrl = controller_for(config)

    def run(builder, policy):
        preloads = {}
        if builder is wordcount:
            preloads["/in/wiki"] = 50 * GB
            spec = wordcount(config, "/in/wiki")
        elif builder is terasort:
            preloads["/in/tera"] = 100 * GB
            spec = terasort(config, "/in/tera")
        else:
            spec = teragen(config)
        job, _ = run_single_job(config, policy, spec, preloads, max_cores=96)
        return job.runtime

    for builder, name in ((wordcount, "wordcount"), (teragen, "teragen"),
                          (terasort, "terasort")):
        rt_native = run(builder, PolicySpec.native())
        rt_ibis = run(builder, PolicySpec.sfqd2(ctrl))
        result.row(app=name, native=rt_native, ibis=rt_ibis,
                   overhead=rt_ibis / rt_native - 1.0)
    return result


# -------------------------------------------------------------------- Tab 2
def tab2_resource_usage(config: ClusterConfig | None = None) -> ExperimentResult:
    """Daemon CPU/memory usage attributable to I/O management.

    The simulation does not execute daemon code on real CPUs, so the
    paper's utilisation numbers are estimated from the measured volume
    of scheduler work: requests queued/dispatched (CPU) and peak queue
    plus broker-table footprints (memory).  Costs per operation follow
    the prototype's ballpark (tens of microseconds per request, ~100
    bytes of queue state per request)."""
    config = config or default_cluster()
    result = ExperimentResult("tab2_resource_usage")
    ctrl = controller_for(config)
    # Native interposition just forwards a request; IBIS additionally
    # tags it, computes SFQ start/finish tags, and maintains the queue.
    cpu_s_per_request = {"native": 8e-6, "ibis": 25e-6}
    bytes_per_queued_request = 120.0   # request object + heap slot

    def run(builder, policy):
        preloads = {}
        if builder is wordcount:
            preloads["/in/wiki"] = 50 * GB
            spec = wordcount(config, "/in/wiki")
        elif builder is terasort:
            preloads["/in/tera"] = 100 * GB
            spec = terasort(config, "/in/tera")
        else:
            spec = teragen(config)
        return run_single_job(config, policy, spec, preloads, max_cores=96)

    for builder, name in ((wordcount, "wordcount"), (teragen, "teragen"),
                          (terasort, "terasort")):
        for policy, label in ((PolicySpec.native(), "native"),
                              (PolicySpec.sfqd2(ctrl, coordinated=True), "ibis")):
            job, cluster = run(builder, policy)
            requests = sum(s.stats.total_requests for s in cluster.schedulers())
            sched_cpu_s = requests * cpu_s_per_request[label]
            if label == "ibis":
                sched_cpu_s += (cluster.broker.messages if cluster.broker else 0) * 50e-6
            # per-core %, over the run, across the cluster's daemon cores
            cpu_pct = 100.0 * sched_cpu_s / (job.runtime * config.n_workers)
            mem_bytes = requests / max(1.0, job.runtime) * bytes_per_queued_request
            if label == "ibis" and cluster.broker is not None:
                mem_bytes += cluster.broker.message_bytes / max(1.0, job.runtime)
            result.row(app=name, case=label,
                       cpu_pct=cpu_pct,
                       mem_mb_per_node=mem_bytes / MB,
                       requests=requests)
    return result


# -------------------------------------------------------------------- Tab 3
def tab3_loc(config: ClusterConfig | None = None) -> ExperimentResult:
    """Development cost (lines of code) per IBIS component — this
    reproduction's equivalent of the paper's Table 3."""
    result = ExperimentResult("tab3_loc")
    root = pathlib.Path(__file__).resolve().parent.parent
    components = {
        "interposition": ["core/tags.py", "core/request.py", "core/base.py",
                          "core/interposition.py"],
        "sfq(d) scheduler": ["core/sfq.py"],
        "sfq(d2) scheduler": ["core/sfqd2.py", "core/profiling.py"],
        "scheduling coordination": ["core/broker.py"],
        "cgroups baseline": ["core/cgroups.py"],
    }
    total = 0
    for component, files in components.items():
        loc = 0
        for rel in files:
            text = (root / rel).read_text().splitlines()
            loc += sum(
                1 for line in text
                if line.strip() and not line.strip().startswith("#")
            )
        result.row(component=component, loc=loc)
        total += loc
    result.row(component="total", loc=total)
    return result
