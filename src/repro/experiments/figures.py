"""One function per figure/table of the paper's evaluation (§7).

All experiments run at ``scale`` (default 1/64 of the paper's data
volumes) on the simulated 8-worker testbed; paper-vs-measured notes for
each are kept in EXPERIMENTS.md.

Structure: every figure is now declarative — each independent cluster
run is a :class:`~repro.scenario.Scenario` (topology + policy +
workload + faults + measurement as one canonical-JSON value), built
here or taken from :mod:`repro.scenario.library`, and executed through
the repo-wide execution core
(:class:`~repro.execution.core.ExecutionCore`).  With an active worker
pool the variants of one figure run concurrently; manifests are merged
in submission order, so the assembled :class:`ExperimentResult` is
identical to a serial run (see :mod:`repro.execution.pool`'s
determinism guarantee).  The figure functions only *shape* manifest
rows; any scenario can equally be serialised to JSON and re-run via
``python -m repro.experiments.run scenario <file.json>``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.config import (
    GB,
    MB,
    SSD_PROFILE,
    TB,
    ClusterConfig,
    default_cluster,
)
from repro.core import NodePolicy, PolicySpec
from repro.core.metrics import relative_performance, slowdown
from repro.execution import ExecutionCore
from repro.experiments.harness import ExperimentResult, controller_for
from repro.faults import FaultEvent, FaultPlan
from repro.hive import TPCH_QUERIES
from repro.scenario import (
    JobEntry,
    MeasurementSpec,
    PreloadSpec,
    Scenario,
    WorkloadSpec,
    single_app,
    wc_alone,
    wc_teragen_isolation,
    weighted_scan_pair,
)

__all__ = [
    "fig2_io_profiles",
    "fig3_contention",
    "fig6_isolation_hdd",
    "fig7_depth_adaptation",
    "fig8_isolation_ssd",
    "fig9_facebook",
    "fig10_multiframework",
    "fig11_proportional_slowdown",
    "fig12_coordination",
    "fig13_overhead",
    "faults_experiment",
    "mixed_policy_ablation",
    "tab2_resource_usage",
    "tab3_loc",
]

#: interferer sizes for the contention studies: the paper runs TeraSort
#: with 50–400 GB inputs; the large end keeps the aggressor I/O-active
#: for the victim's whole run at simulation scale.
_BIG_SORT = 400 * GB

#: cgroups throttle cap (Fig. 10): the paper throttles TeraSort to
#: 1 MB/s per container; one node runs ~12 containers and spill writes
#: land in the page cache before the block layer sees them, so the
#: effective per-node cap on scheduled intermediate I/O is far higher.
_THROTTLE_BPS = 48.0 * MB


# The figures' shared core: no persistent store — a figure always
# re-simulates, so golden outputs never depend on cache state.
_CORE = ExecutionCore()


def _run_all(scenarios: list[Scenario]) -> list:
    """Fan the scenarios out through the execution core, manifests in
    submission order."""
    return _CORE.run(scenarios)


# --------------------------------------------------------------------- Fig 2
def _fig2_scenario(config: ClusterConfig, app: str) -> Scenario:
    """One app running alone with the full cluster, profiled per second."""
    if app == "terasort":
        params = {"input_path": "/in/tera", "input_bytes": 100 * GB}
        preloads = (("/in/tera", 100 * GB),)
    else:
        params = {"input_path": "/in/wiki"}
        preloads = (("/in/wiki", 50 * GB),)
    return single_app(
        config, PolicySpec.native(), app,
        name=f"fig2:{app}", params=params, preloads=preloads,
        metrics=("runtime", "device_series"), window="min_finish",
    )


def fig2_io_profiles(config: ClusterConfig | None = None) -> ExperimentResult:
    """I/O demand (read/write MB/s vs time) of TeraSort and WordCount,
    each running alone with the full cluster."""
    config = config or default_cluster()
    result = ExperimentResult("fig2_io_profiles")
    apps = ("terasort", "wordcount")
    runs = _run_all([_fig2_scenario(config, app) for app in apps])
    for label, man in zip(apps, runs):
        for op in ("read", "write"):
            result.series[f"{label}:{op}"] = man.series[op]
        result.row(app=label, runtime=man.runtime(label),
                   peak_read=float(max(result.series[f"{label}:read"][1])),
                   peak_write=float(max(result.series[f"{label}:write"][1])))
    return result


# --------------------------------------------------------------------- Fig 3
def _fig3_scenario(config: ClusterConfig, interferer: str | None) -> Scenario:
    """WC (CPU fixed at half the cluster) vs one interferer."""
    preloads = [PreloadSpec("/in/wiki", 50 * GB)]
    jobs = [JobEntry(app="wordcount", io_weight=1.0, max_cores=48,
                     params={"input_path": "/in/wiki"})]
    if interferer == "teravalidate":
        preloads.append(PreloadSpec("/in/sorted", _BIG_SORT))
        jobs.append(JobEntry(app="teravalidate", io_weight=1.0, max_cores=48,
                             params={"input_path": "/in/sorted"}))
    elif interferer == "teragen":
        jobs.append(JobEntry(app="teragen", io_weight=1.0, max_cores=48))
    elif interferer == "terasort":
        preloads.append(PreloadSpec("/in/tera", _BIG_SORT))
        jobs.append(JobEntry(app="terasort", io_weight=1.0, max_cores=48,
                             params={"input_path": "/in/tera",
                                     "input_bytes": _BIG_SORT}))
    return Scenario(
        name=f"fig3:wc+{interferer or 'alone'}",
        cluster=config,
        policy=PolicySpec.native(),
        workload=WorkloadSpec(jobs=tuple(jobs), preloads=tuple(preloads)),
        measure=MeasurementSpec(until=("wordcount",)),
    )


def fig3_contention(config: ClusterConfig | None = None) -> ExperimentResult:
    """WordCount runtime alone vs against TeraValidate/TeraGen/TeraSort
    on native Hadoop, with WC's CPU allocation fixed at half the cluster."""
    config = config or default_cluster()
    result = ExperimentResult(f"fig3_contention_{config.storage.name}")
    interferers: list[str | None] = [None, "teravalidate", "teragen", "terasort"]
    runs = _run_all([_fig3_scenario(config, who) for who in interferers])
    standalone = runs[0].runtime("wordcount")
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0)
    for who, man in zip(interferers[1:], runs[1:]):
        rt = man.runtime("wordcount")
        result.row(case=f"wc+{who}", runtime=rt,
                   slowdown=slowdown(rt, standalone))
    return result


# --------------------------------------------------------------------- Fig 6
def fig6_isolation_hdd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 6a/6b: WC+TG under native, SFQ(D=12/8/4/2), and SFQ(D2),
    with the 32:1 sharing ratio favouring WordCount (HDD setup)."""
    config = config or default_cluster()
    result = ExperimentResult("fig6_isolation_hdd")

    cases = [("native", PolicySpec.native())]
    cases += [(f"sfq(d={d})", PolicySpec.sfqd(depth=d)) for d in (12, 8, 4, 2)]
    cases.append(("sfq(d2)", PolicySpec.sfqd2(controller_for(config))))

    scenarios = [wc_alone(config, name="fig6:wc_alone")]
    scenarios += [
        wc_teragen_isolation(config, policy, name=f"fig6:{label}")
        for label, policy in cases
    ]
    runs = _run_all(scenarios)

    standalone = runs[0].runtime("wordcount")
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None, throughput_loss=None)
    native_thr = runs[1].summary["throughput_mbs"]
    for (label, _policy), man in zip(cases, runs[1:]):
        runtime = man.runtime("wordcount")
        thr = man.summary["throughput_mbs"]
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=thr,
                   throughput_loss=thr / native_thr - 1.0)
    return result


# --------------------------------------------------------------------- Fig 7
def fig7_depth_adaptation(config: ClusterConfig | None = None) -> ExperimentResult:
    """The SFQ(D2) controller's D and observed latency over time on one
    datanode during the WC+TG isolation run (flush storms included).

    Observed purely over the cluster's telemetry bus: the scheduler at
    ``dn00:persistent`` publishes one ``depth_changed`` event per control
    period, and the runner's ``depth_trace`` metric reconstructs the
    paper's D and latency traces — no scheduler internals touched.
    """
    config = config or default_cluster()
    result = ExperimentResult("fig7_depth_adaptation")
    ctrl = controller_for(config)
    scenario = wc_teragen_isolation(
        config, PolicySpec.sfqd2(ctrl), name="fig7",
        metrics=("runtime", "depth_trace"),
        options={"depth_source": "dn00:persistent"},
    )
    man = _CORE.submit(scenario)
    d_times, d_vals = man.series["depth"]
    l_times, l_vals = man.series["latency"]
    result.series["depth"] = (list(d_times), list(d_vals))
    result.series["latency_ms"] = (
        list(l_times),
        [v * 1000.0 for v in l_vals],
    )
    result.row(
        samples=len(d_vals),
        d_min=float(min(d_vals)),
        d_max=float(max(d_vals)),
        d_mean=float(np.mean(d_vals)),
        lref_ms=ctrl.ref_latency_read * 1000.0,
        latency_p95_ms=float(np.percentile(l_vals, 95)) * 1000.0
        if len(l_vals) else None,
    )
    return result


# --------------------------------------------------------------------- Fig 8
def fig8_isolation_ssd(config: ClusterConfig | None = None) -> ExperimentResult:
    """Fig. 8a/8b: the WC+TG isolation study on the SSD storage setup,
    where SFQ(D2) blends split read/write reference latencies."""
    config = config or default_cluster(storage=SSD_PROFILE)
    result = ExperimentResult("fig8_isolation_ssd")
    ctrl = controller_for(config)

    runs = _run_all([
        wc_alone(config, name="fig8:wc_alone"),
        wc_teragen_isolation(config, PolicySpec.native(), name="fig8:native"),
        wc_teragen_isolation(config, PolicySpec.sfqd2(ctrl),
                             name="fig8:sfq(d2)"),
    ])
    standalone = runs[0].runtime("wordcount")
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None)
    for label, man in zip(("native", "sfq(d2)"), runs[1:]):
        runtime = man.runtime("wordcount")
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=man.summary["throughput_mbs"])
    result.notes.append(
        f"SSD split references: read {ctrl.ref_latency_read * 1000:.1f} ms, "
        f"write {ctrl.ref_latency_write * 1000:.1f} ms"
    )
    return result


# ------------------------------------------------------- mixed NodePolicy
def mixed_policy_ablation(config: ClusterConfig | None = None) -> ExperimentResult:
    """Which interposition point needs managed I/O?  (NodePolicy ablation.)

    The WC+TG isolation study (Fig. 6's setup, 32:1 in favour of WC)
    with IBIS attached to *subsets* of a node's scheduling points via
    per-class :class:`NodePolicy` — something the paper's architecture
    enables (§3) but its evaluation only exercises uniformly:

    * ``native``            — no management anywhere (the §2.3 baseline);
    * ``ibis-persistent``   — SFQ(D2) on the HDFS path only;
    * ``ibis-intermediate`` — SFQ(D2) on the spill + shuffle paths only;
    * ``ibis-uniform``      — the paper's configuration, all three points.

    WC vs TeraGen contention is dominated by the HDFS disk (TG writes
    replicated output blocks), so managing PERSISTENT alone should
    recover most of the isolation and INTERMEDIATE alone very little.
    """
    config = config or default_cluster()
    result = ExperimentResult("mixed_policy_ablation")
    ctrl = controller_for(config)
    ibis = PolicySpec.sfqd2(ctrl)
    nat = PolicySpec.native()
    cases = [
        ("native", NodePolicy.uniform(nat)),
        ("ibis-persistent",
         NodePolicy(persistent=ibis, intermediate=nat, network=nat)),
        ("ibis-intermediate",
         NodePolicy(persistent=nat, intermediate=ibis, network=ibis)),
        ("ibis-uniform", NodePolicy.uniform(ibis)),
    ]

    scenarios = [wc_alone(config, name="mixed:wc_alone")]
    scenarios += [
        wc_teragen_isolation(config, policy, name=f"mixed:{label}")
        for label, policy in cases
    ]
    runs = _run_all(scenarios)

    standalone = runs[0].runtime("wordcount")
    result.row(case="wc_alone", runtime=standalone, slowdown=0.0,
               throughput_mbs=None, policy=None)
    for (label, policy), man in zip(cases, runs[1:]):
        runtime = man.runtime("wordcount")
        result.row(case=label, runtime=runtime,
                   slowdown=slowdown(runtime, standalone),
                   throughput_mbs=man.summary["throughput_mbs"],
                   policy=policy.to_json())
    return result


# --------------------------------------------------------------------- Fig 9
def _fig9_scenario(config: ClusterConfig, label: str, policy: PolicySpec,
                   with_teragen: bool, n_jobs: int) -> Scenario:
    """One Facebook2009 trace replay, optionally against TeraGen."""
    jobs = [JobEntry(app="swim", name="facebook2009", io_weight=32.0,
                     max_cores=48, params={"n_jobs": n_jobs})]
    if with_teragen:
        jobs.append(JobEntry(app="teragen", io_weight=1.0, max_cores=48,
                             params={"output_bytes": 4 * TB}))
    return Scenario(
        name=f"fig9:{label}",
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(jobs=tuple(jobs)),
        measure=MeasurementSpec(until=("facebook2009",)),
    )


def fig9_facebook(
    config: ClusterConfig | None = None, n_jobs: int = 50
) -> ExperimentResult:
    """Cumulative distribution of Facebook2009 job runtimes: standalone,
    interfered by TeraGen on native, and isolated by SFQ(D2) at 32:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig9_facebook")
    cases = [
        ("standalone", PolicySpec.native(), False),
        ("interfered", PolicySpec.native(), True),
        ("sfq(d2)", PolicySpec.sfqd2(controller_for(config)), True),
    ]
    runs = _run_all([
        _fig9_scenario(config, label, policy, with_tg, n_jobs)
        for label, policy, with_tg in cases
    ])
    for (label, _policy, _with_tg), man in zip(cases, runs):
        runtimes = sorted(
            row["runtime"] for row in man.job_rows("facebook2009")
        )
        cdf_y = [(i + 1) / len(runtimes) for i in range(len(runtimes))]
        result.series[label] = (runtimes, cdf_y)
        result.row(case=label,
                   mean_runtime=float(np.mean(runtimes)),
                   p50=float(np.percentile(runtimes, 50)),
                   p90=float(np.percentile(runtimes, 90)))
    return result


# -------------------------------------------------------------------- Fig 10
def _fig10_ts_solo(config: ClusterConfig) -> Scenario:
    return single_app(
        config, PolicySpec.native(), "terasort", name="fig10:ts_solo",
        params={"input_path": "/in/tera"},
        preloads=(("/in/tera", 100 * GB),), max_cores=96,
    )


def _fig10_query_scenario(
    config: ClusterConfig,
    qname: str,
    policy: PolicySpec,
    io_weight: float = 1.0,
    max_cores: int = 96,
    with_terasort: bool = False,
    name: str = "",
) -> Scenario:
    """A TPC-H query (entry named after the query), alone or contending
    with TeraSort under one policy."""
    query = TPCH_QUERIES[qname](config)
    preloads = [PreloadSpec(query.table_paths[0], query.table_bytes[0])]
    jobs = [JobEntry(app="hive", name=qname, io_weight=io_weight,
                     max_cores=max_cores, params={"query": qname})]
    until = [qname]
    if with_terasort:
        preloads.append(PreloadSpec("/in/tera", 100 * GB))
        jobs.append(JobEntry(app="terasort", io_weight=1.0, max_cores=48,
                             params={"input_path": "/in/tera"}))
        until.append("terasort")
    return Scenario(
        name=name or f"fig10:{qname}_solo",
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(jobs=tuple(jobs), preloads=tuple(preloads)),
        measure=MeasurementSpec(until=tuple(until)),
    )


def fig10_multiframework(config: ClusterConfig | None = None) -> ExperimentResult:
    """TPC-H queries on Hive vs TeraSort on MapReduce under native,
    cgroups (weight 100:1 / throttle), and IBIS 100:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig10_multiframework")
    ctrl = controller_for(config)

    policies = [
        ("native", PolicySpec.native(), 1.0),
        ("cg(weight)-100:1", PolicySpec.cgroups_weight(), 100.0),
        ("cg(throttle)", PolicySpec.cgroups_throttle({"terasort": _THROTTLE_BPS}),
         100.0),
        ("ibis-100:1", PolicySpec.sfqd2(ctrl), 100.0),
    ]
    qnames = ["q21", "q9"]

    scenarios = [_fig10_ts_solo(config)]
    scenarios += [_fig10_query_scenario(config, qname, PolicySpec.native())
                  for qname in qnames]
    scenarios += [
        _fig10_query_scenario(
            config, qname, policy, io_weight=w, max_cores=48,
            with_terasort=True, name=f"fig10:{qname}+{label}",
        )
        for qname in qnames
        for label, policy, w in policies
    ]
    runs = _run_all(scenarios)

    ts_solo = runs[0].runtime("terasort")
    q_solos = {
        qname: man.runtime(qname)
        for qname, man in zip(qnames, runs[1:1 + len(qnames)])
    }
    contend = iter(runs[1 + len(qnames):])
    for qname in qnames:
        solo = q_solos[qname]
        for label, _policy, _w in policies:
            man = next(contend)
            q_rel = relative_performance(man.runtime(qname), solo)
            ts_rel = relative_performance(man.runtime("terasort"), ts_solo)
            result.row(query=qname, case=label,
                       query_rel_perf=q_rel, ts_rel_perf=ts_rel,
                       avg_rel_perf=(q_rel + ts_rel) / 2.0)
    return result


# -------------------------------------------------------------------- Fig 11
def _fig11_solo(config: ClusterConfig, which: str, cores: int = 96) -> Scenario:
    params = ({} if which == "teragen"
              else {"input_path": "/in/tera"})
    short = "tg" if which == "teragen" else "ts"
    return single_app(
        config, PolicySpec.native(), which, name=f"fig11:{short}_solo",
        params=params, preloads=(("/in/tera", 100 * GB),), max_cores=cores,
    )


def _fig11_pair(config: ClusterConfig, policy: PolicySpec, ts_cores: int,
                tg_cores: int, ts_w: float, tg_w: float,
                label: str) -> Scenario:
    """TS + TG sharing the cluster under one CPU/IO split."""
    return Scenario(
        name=f"fig11:{label}",
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(
                JobEntry(app="terasort", io_weight=ts_w, max_cores=ts_cores,
                         params={"input_path": "/in/tera"}),
                JobEntry(app="teragen", io_weight=tg_w, max_cores=tg_cores),
            ),
            preloads=(PreloadSpec("/in/tera", 100 * GB),),
        ),
    )


def fig11_proportional_slowdown(
    config: ClusterConfig | None = None,
) -> ExperimentResult:
    """Equal slowdown for TeraSort vs TeraGen: CPU-only tuning (Fair
    Scheduler 5:1) vs CPU 2:1 + IBIS I/O 2:1."""
    config = config or default_cluster()
    result = ExperimentResult("fig11_proportional_slowdown")
    ctrl = controller_for(config)

    # The paper's methodology is manual tuning toward equal slowdown; we
    # search the same small knob grids and report the best of each mode.
    fs_grid = [(PolicySpec.native(), ts_cores, 96 - ts_cores, 1.0, 1.0,
                f"fs-{ts_cores}:{96 - ts_cores}")
               for ts_cores in (80, 72, 64, 56)]
    ibis_grid = [(PolicySpec.sfqd2(ctrl), ts_cores, 96 - ts_cores, io_ratio, 1.0,
                  f"fs-{ts_cores}:{96 - ts_cores}+io-{io_ratio:g}:1")
                 for ts_cores in (64, 56, 48)
                 for io_ratio in (2.0, 4.0, 8.0)]

    scenarios = [_fig11_solo(config, "terasort"),
                 _fig11_solo(config, "teragen")]
    scenarios += [
        _fig11_pair(config, policy, tsc, tgc, tsw, tgw, label)
        for policy, tsc, tgc, tsw, tgw, label in fs_grid + ibis_grid
    ]
    runs = _run_all(scenarios)

    ts_solo = runs[0].runtime("terasort")
    tg_solo = runs[1].runtime("teragen")
    pairs = runs[2:]

    def best(grid, manifests):
        candidates = []
        for (_p, _tc, _gc, _tw, _gw, label), man in zip(grid, manifests):
            ts_rt = man.runtime("terasort")
            tg_rt = man.runtime("teragen")
            candidates.append(
                (abs(slowdown(ts_rt, ts_solo) - slowdown(tg_rt, tg_solo)),
                 slowdown(ts_rt, ts_solo), slowdown(tg_rt, tg_solo), label)
            )
        return min(candidates)

    gap, t, g, label = best(fs_grid, pairs[: len(fs_grid)])
    result.row(case=f"cpu only ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)
    gap, t, g, label = best(ibis_grid, pairs[len(fs_grid):])
    result.row(case=f"cpu+ibis ({label})", ts_slowdown=t, tg_slowdown=g,
               gap=gap, avg=(t + g) / 2)
    return result


# -------------------------------------------------------------------- Fig 12
def _fig12_skew_nodes(config: ClusterConfig) -> list[str]:
    return [f"dn{i:02d}" for i in range(config.n_workers // 2)]


def _fig12_scan(name: str, io_weight: float, max_cores: int) -> JobEntry:
    return JobEntry(app="teravalidate", name=name, io_weight=io_weight,
                    max_cores=max_cores,
                    params={"input_path": f"/in/{name[5:]}"})


def _fig12_ratio_scenario(config: ClusterConfig, policy: PolicySpec,
                          label: str, window: float = 8.0) -> Scenario:
    """Skewed + wide scans over a fixed window (service-ratio probe)."""
    return Scenario(
        name=f"fig12:ratio:{label}",
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(_fig12_scan("scan-hot", 1.0, 48),
                  _fig12_scan("scan-wide", 1.0, 48)),
            preloads=(
                PreloadSpec("/in/hot", 800 * GB,
                            nodes=tuple(_fig12_skew_nodes(config))),
                PreloadSpec("/in/wide", 800 * GB),
            ),
        ),
        measure=MeasurementSpec(horizon=window, metrics=("total_service",)),
    )


def _fig12_solo_scenario(config: ClusterConfig, path: str, skewed: bool,
                         name: str) -> Scenario:
    return Scenario(
        name=f"fig12:{name}_solo",
        cluster=config,
        policy=PolicySpec.native(),
        workload=WorkloadSpec(
            jobs=(JobEntry(app="teravalidate", name=name, max_cores=96,
                           params={"input_path": path}),),
            preloads=(PreloadSpec(
                path, 200 * GB,
                nodes=tuple(_fig12_skew_nodes(config)) if skewed else (),
            ),),
        ),
    )


def _fig12_pair_scenario(config: ClusterConfig, policy: PolicySpec,
                         label: str) -> Scenario:
    """Skewed + wide scans sharing the cluster, both run to completion."""
    return Scenario(
        name=f"fig12:pair:{label}",
        cluster=config,
        policy=policy,
        workload=WorkloadSpec(
            jobs=(_fig12_scan("scan-hot", 1.0, 48),
                  _fig12_scan("scan-wide", 1.0, 48)),
            preloads=(
                PreloadSpec("/in/hot", 200 * GB,
                            nodes=tuple(_fig12_skew_nodes(config))),
                PreloadSpec("/in/wide", 200 * GB),
            ),
        ),
    )


def fig12_coordination(config: ClusterConfig | None = None) -> ExperimentResult:
    """Distributed scheduling coordination on vs off (§5, §7.6).

    The paper's testbed develops uneven per-node service naturally; at
    simulation scale we induce it the way §5 describes it arising —
    skewed data distribution: a scan whose data lives on half the nodes
    shares the cluster with a scan over evenly spread data, at equal
    weights.  Reported: the total-service ratio over a fixed window
    (target 1.0) and each application's slowdown, with coordination
    disabled (No Sync) and enabled (Sync)."""
    config = config or default_cluster()
    result = ExperimentResult("fig12_coordination")
    ctrl = controller_for(config)
    modes = [(False, "no sync"), (True, "sync")]

    scenarios = [
        _fig12_ratio_scenario(
            config, PolicySpec.sfqd2(ctrl, coordinated=coordinated), label
        )
        for coordinated, label in modes
    ]
    scenarios += [
        _fig12_solo_scenario(config, "/in/hot", True, "scan-hot"),
        _fig12_solo_scenario(config, "/in/wide", False, "scan-wide"),
    ]
    scenarios += [
        _fig12_pair_scenario(
            config, PolicySpec.sfqd2(ctrl, coordinated=coordinated), label
        )
        for coordinated, label in modes
    ]
    runs = _run_all(scenarios)

    def windowed_ratio(man) -> float:
        svc = man.summary["total_service"]
        hot = next(v for k, v in svc.items() if "hot" in k)
        wide = next(v for k, v in svc.items() if "wide" in k)
        return wide / hot

    ratios = [windowed_ratio(man) for man in runs[:2]]
    hot_solo = runs[2].runtime("scan-hot")
    wide_solo = runs[3].runtime("scan-wide")
    pairs = runs[4:]
    for (coordinated, label), ratio, man in zip(modes, ratios, pairs):
        result.row(case=label,
                   total_service_ratio=ratio,
                   ratio_error=abs(ratio - 1.0),
                   hot_slowdown=slowdown(man.runtime("scan-hot"), hot_solo),
                   wide_slowdown=slowdown(man.runtime("scan-wide"), wide_solo))
    return result


# -------------------------------------------------------------------- Fig 13
def _single_app_scenario(config: ClusterConfig, app: str,
                         policy: "PolicySpec | NodePolicy", label: str,
                         metrics: tuple[str, ...] = ("runtime",)) -> Scenario:
    """One app alone with the full cluster (Fig. 13, Tab. 2)."""
    preloads = []
    params = {}
    if app == "wordcount":
        preloads.append(("/in/wiki", 50 * GB))
        params["input_path"] = "/in/wiki"
    elif app == "terasort":
        preloads.append(("/in/tera", 100 * GB))
        params["input_path"] = "/in/tera"
    return single_app(
        config, policy, app, name=label, params=params,
        preloads=tuple(preloads), max_cores=96, metrics=metrics,
    )


def fig13_overhead(config: ClusterConfig | None = None) -> ExperimentResult:
    """Per-application overhead of IBIS interposition and scheduling:
    WC/TG/TS each alone with the full cluster, native vs IBIS."""
    config = config or default_cluster()
    result = ExperimentResult("fig13_overhead")
    ctrl = controller_for(config)
    apps = ("wordcount", "teragen", "terasort")

    runs = _run_all([
        _single_app_scenario(config, app, policy, f"fig13:{app}:{label}")
        for app in apps
        for policy, label in ((PolicySpec.native(), "native"),
                              (PolicySpec.sfqd2(ctrl), "ibis"))
    ])
    it = iter(runs)
    for app in apps:
        rt_native = next(it).runtime(app)
        rt_ibis = next(it).runtime(app)
        result.row(app=app, native=rt_native, ibis=rt_ibis,
                   overhead=rt_ibis / rt_native - 1.0)
    return result


# -------------------------------------------------------------------- Tab 2
def tab2_resource_usage(config: ClusterConfig | None = None) -> ExperimentResult:
    """Daemon CPU/memory usage attributable to I/O management.

    The simulation does not execute daemon code on real CPUs, so the
    paper's utilisation numbers are estimated from the measured volume
    of scheduler work: requests queued/dispatched (CPU) and peak queue
    plus broker-table footprints (memory).  Costs per operation follow
    the prototype's ballpark (tens of microseconds per request, ~100
    bytes of queue state per request)."""
    config = config or default_cluster()
    result = ExperimentResult("tab2_resource_usage")
    ctrl = controller_for(config)
    # Native interposition just forwards a request; IBIS additionally
    # tags it, computes SFQ start/finish tags, and maintains the queue.
    cpu_s_per_request = {"native": 8e-6, "ibis": 25e-6}
    bytes_per_queued_request = 120.0   # request object + heap slot

    apps = ("wordcount", "teragen", "terasort")
    policies = [(PolicySpec.native(), "native"),
                (PolicySpec.sfqd2(ctrl, coordinated=True), "ibis")]
    runs = _run_all([
        _single_app_scenario(config, app, policy, f"tab2:{app}:{label}",
                             metrics=("runtime", "scheduler_stats"))
        for app in apps
        for policy, label in policies
    ])
    it = iter(runs)
    for app in apps:
        for _policy, label in policies:
            man = next(it)
            runtime = man.runtime(app)
            requests = man.counters["requests"]
            sched_cpu_s = requests * cpu_s_per_request[label]
            if label == "ibis":
                sched_cpu_s += man.counters["broker_messages"] * 50e-6
            # per-core %, over the run, across the cluster's daemon cores
            cpu_pct = 100.0 * sched_cpu_s / (runtime * config.n_workers)
            mem_bytes = (requests / max(1.0, runtime)
                         * bytes_per_queued_request)
            if label == "ibis":
                mem_bytes += (man.counters["broker_message_bytes"]
                              / max(1.0, runtime))
            result.row(app=app, case=label,
                       cpu_pct=cpu_pct,
                       mem_mb_per_node=mem_bytes / MB,
                       requests=requests)
    return result


# ------------------------------------------------------------------- faults
#: per-scan input volume of the fault-tolerance study (paper-sized;
#: scaled by ``config.scale`` like every other experiment input)
_FAULT_SCAN = 200 * GB


def _faults_plan(config: ClusterConfig) -> FaultPlan:
    """The study's fault schedule, timed relative to a deterministic
    estimate of the run length so it lands mid-run at any ``--scale``:
    a transient datanode crash early, a broker outage through the
    middle, and a fail-slow HDFS disk in the second half."""
    # Two scans reading _FAULT_SCAN each over the cluster's aggregate
    # peak storage bandwidth — a deliberately crude lower bound.
    t_est = 2.0 * config.scaled(_FAULT_SCAN) / (
        config.n_workers * config.storage.peak_rate
    )
    return FaultPlan(
        events=(
            FaultEvent.node_crash(0.2 * t_est, "dn01", duration=0.3 * t_est),
            FaultEvent.broker_outage(0.3 * t_est, duration=0.2 * t_est),
            FaultEvent.slow_disk(
                0.6 * t_est, "dn02", duration=0.3 * t_est, factor=0.25
            ),
        ),
    )


def _faults_scenario(config: ClusterConfig, policy: "PolicySpec | NodePolicy",
                     with_faults: bool, label: str) -> Scenario:
    """Two weighted TeraValidate scans (32:1) under one policy, with or
    without the fault schedule."""
    return weighted_scan_pair(
        config, policy, name=f"faults:{label}", scan_bytes=_FAULT_SCAN,
        hi_weight=32.0, lo_weight=1.0,
        faults=_faults_plan(config) if with_faults else None,
    )


def _faults_outcome(man) -> dict:
    """Realised service ratio over the shared window + fault counters."""
    svc_hi = man.job_row("scan-hi")["service"]
    svc_lo = man.job_row("scan-lo")["service"]
    return {
        "ratio": svc_hi / svc_lo if svc_lo > 0 else float("inf"),
        "hi_runtime": man.runtime("scan-hi"),
        "lo_runtime": man.runtime("scan-lo"),
        "failovers": man.counters["failovers"],
        "retries": man.counters["retries"],
        "orphaned": man.counters["orphaned"],
        "cancelled": man.counters["cancelled"],
    }


def faults_experiment(config: ClusterConfig | None = None) -> ExperimentResult:
    """Proportional sharing under faults: does the 4:1 share survive a
    datanode crash, a broker outage, and a fail-slow disk?

    The paper's evaluation (§7) assumes a healthy cluster; this
    experiment injects the failure modes real YARN clusters exhibit and
    shows IBIS still delivers weight-proportional sharing (all jobs
    finishing, via replica failover and task re-attempts) while the
    native and cgroups baselines never had a share to defend.
    """
    config = config or default_cluster()
    result = ExperimentResult("faults_experiment")
    cases = [
        ("native", PolicySpec.native()),
        ("cgroups", PolicySpec.cgroups_weight()),
        ("ibis", PolicySpec.sfqd2(controller_for(config), coordinated=True)),
    ]
    scenarios = [_faults_scenario(config, cases[-1][1], False, "ibis-healthy")]
    scenarios += [
        _faults_scenario(config, policy, True, label)
        for label, policy in cases
    ]
    runs = _run_all(scenarios)
    healthy = _faults_outcome(runs[0])
    result.row(case="ibis-healthy", faulted=False, ratio=healthy["ratio"],
               ratio_preserved=1.0,
               hi_runtime=healthy["hi_runtime"],
               lo_runtime=healthy["lo_runtime"],
               failovers=healthy["failovers"], retries=healthy["retries"])
    for (label, _policy), man in zip(cases, runs[1:]):
        out = _faults_outcome(man)
        result.row(case=label, faulted=True, ratio=out["ratio"],
                   ratio_preserved=out["ratio"] / healthy["ratio"],
                   hi_runtime=out["hi_runtime"], lo_runtime=out["lo_runtime"],
                   failovers=out["failovers"], retries=out["retries"])
    result.notes.append(
        "io_weight 32:1; 'ratio' is realised service over the window both "
        "scans run (closed-loop scans demand-cap it well below 32 — the "
        "per-policy differentiation, not the nominal weight, is the "
        "signal); 'ratio_preserved' compares against the healthy IBIS run; "
        "faults: dn01 crash (transient), broker outage, dn02 fail-slow "
        "HDFS disk at 25% rate"
    )
    return result


# -------------------------------------------------------------------- Tab 3
def tab3_loc(config: ClusterConfig | None = None) -> ExperimentResult:
    """Development cost (lines of code) per IBIS component — this
    reproduction's equivalent of the paper's Table 3."""
    result = ExperimentResult("tab3_loc")
    root = pathlib.Path(__file__).resolve().parent.parent
    components = {
        "interposition": ["dataplane/tags.py", "dataplane/request.py",
                          "dataplane/lifecycle.py", "dataplane/scope.py",
                          "dataplane/path.py", "core/base.py",
                          "core/interposition.py"],
        "sfq(d) scheduler": ["core/sfq.py"],
        "sfq(d2) scheduler": ["core/sfqd2.py", "core/profiling.py"],
        "scheduling coordination": ["core/broker.py"],
        "cgroups baseline": ["core/cgroups.py"],
    }
    total = 0
    for component, files in components.items():
        loc = 0
        for rel in files:
            text = (root / rel).read_text().splitlines()
            loc += sum(
                1 for line in text
                if line.strip() and not line.strip().startswith("#")
            )
        result.row(component=component, loc=loc)
        total += loc
    result.row(component="total", loc=total)
    return result
