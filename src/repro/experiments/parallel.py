"""Deprecated alias of :mod:`repro.execution.pool`.

The parallel fan-out grew into the repo-wide execution core: the
:class:`RunSpec` pool backend now lives in :mod:`repro.execution`
(alongside the persistent result store and the submission abstraction)
so the CLI, the figures, sweep grids, and the scenario service all
share one dispatch path.  This module re-exports the public entry
points so existing scripts keep working; new code should import from
:mod:`repro.execution`.
"""

from __future__ import annotations

import warnings

from repro.execution.pool import (  # noqa: F401  (re-exports)
    RunSpec,
    active_jobs,
    default_jobs,
    execute,
    parallel_jobs,
    run_specs,
)

__all__ = ["RunSpec", "execute", "run_specs", "parallel_jobs", "active_jobs",
           "default_jobs"]

warnings.warn(
    "repro.experiments.parallel is deprecated; import RunSpec/run_specs/"
    "parallel_jobs from repro.execution instead",
    DeprecationWarning,
    stacklevel=2,
)
