"""Command-line experiment runner.

Regenerate any figure or table of the paper from the shell::

    python -m repro.experiments.run fig6
    python -m repro.experiments.run fig10 fig11
    python -m repro.experiments.run all
    python -m repro.experiments.run all --jobs 4      # parallel fan-out
    python -m repro.experiments.run fig11 --jobs 0    # one worker per core
    python -m repro.experiments.run --list
    python -m repro.experiments.run fig6 --scale 128  # 1/128 volumes
    python -m repro.experiments.run fig8 --storage ssd
    python -m repro.experiments.run all --out results/
    python -m repro.experiments.run fig6 --profile    # cProfile + hotspots

Or run any declarative scenario file (see ``examples/scenarios/``)::

    python -m repro.experiments.run scenario examples/scenarios/fig6_isolation.json
    python -m repro.experiments.run scenario s.json --sweep cluster.seed=1,2,3
    python -m repro.experiments.run scenario s.json \\
        --sweep workload.jobs.0.io_weight=1,8,32 --jobs 4 --out results/

``--sweep key.path=v1,v2,...`` (repeatable) expands the file into a
cartesian grid of validated scenario variants; the grid rides the same
worker pool as the figures.  ``--scale/--storage/--seed`` do not apply
in scenario mode — a scenario file pins its whole cluster config.
Scenario runs route through the execution core's persistent result
store (``$REPRO_CACHE_DIR``): re-running a file or an interrupted sweep
re-simulates only the cells without a stored manifest (``--no-store``
opts out).

Or start the long-running scenario service and submit from a client::

    python -m repro.experiments.run serve --address tcp://127.0.0.1:8642 --jobs 4 \\
        --max-queue 64 --retries 2 --timeout 300 --store-max-bytes 500000000

    # elsewhere:
    from repro.service import ServiceClient
    with ServiceClient("tcp://127.0.0.1:8642") as client:
        sub = client.submit("examples/scenarios/latency_breakdown.json")
        manifest = client.result(sub)

The service journals every accepted submission to an fsynced
write-ahead log (``--journal``; default under ``$REPRO_CACHE_DIR``), so
a killed scheduler restarted over the same journal recovers and
finishes its queued work.  Trim the persistent result store from the
shell::

    python -m repro.experiments.run store stats
    python -m repro.experiments.run store gc --max-bytes 100000000
    python -m repro.experiments.run store gc --max-entries 500 --dry-run

Parallelism (``--jobs N``; 0 = all cores):

* several experiments requested — whole experiments fan out across the
  worker pool (each worker runs its figure's cluster runs serially);
* a single experiment requested — the figure's independent per-policy /
  per-weight cluster runs fan out instead (see figures.py).

Either way results are merged in deterministic order, so the output is
identical to ``--jobs 1`` (the wall-clock line reports per-experiment
worker time; the figure content is byte-identical).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import time

from repro.config import HDD_PROFILE, SSD_PROFILE, default_cluster
from repro.execution import (
    ExecutionCore,
    ResultStore,
    RunSpec,
    default_jobs,
    parallel_jobs,
    run_specs,
)
from repro.experiments import figures
from repro.experiments.harness import controller_for
from repro.experiments.report import (
    format_manifest,
    format_result,
    result_payload,
)
from repro.scenario import parse_sweep, run_scenario, sweep_scenarios

#: short name -> (function, description)
EXPERIMENTS = {
    "fig2": (figures.fig2_io_profiles, "I/O profiles of TeraSort & WordCount"),
    "fig3": (figures.fig3_contention, "WC contention on native Hadoop"),
    "fig6": (figures.fig6_isolation_hdd, "isolation: native vs SFQ(D) vs SFQ(D2)"),
    "fig7": (figures.fig7_depth_adaptation, "SFQ(D2) depth adaptation trace"),
    "fig8": (figures.fig8_isolation_ssd, "isolation on the SSD setup"),
    "fig9": (figures.fig9_facebook, "Facebook2009 runtime CDFs"),
    "fig10": (figures.fig10_multiframework, "TPC-H vs TeraSort: cgroups vs IBIS"),
    "fig11": (figures.fig11_proportional_slowdown, "proportional slowdown"),
    "fig12": (figures.fig12_coordination, "broker coordination on/off"),
    "fig13": (figures.fig13_overhead, "IBIS overhead"),
    "mixed": (figures.mixed_policy_ablation,
              "per-class NodePolicy ablation (which point needs IBIS?)"),
    "faults": (figures.faults_experiment,
               "proportional sharing under injected faults"),
    "tab2": (figures.tab2_resource_usage, "daemon resource usage"),
    "tab3": (figures.tab3_loc, "component development cost"),
}


def _timed_experiment(name: str, config) -> tuple:
    """Run one experiment; returns (result, worker wall seconds)."""
    fn, _desc = EXPERIMENTS[name]
    t0 = time.time()
    result = fn(config)
    return result, time.time() - t0


def _emit(name: str, result, elapsed: float,
          out_dir: pathlib.Path | None) -> None:
    text = format_result(result)
    print(text)
    print(f"({name} regenerated in {elapsed:.1f}s wall)\n")
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        (out_dir / f"{name}.json").write_text(result_payload(result) + "\n")


def _slug(name: str) -> str:
    """Scenario name -> safe output-file stem."""
    return re.sub(r"[^\w.+-]+", "_", name).strip("_")


def _write_profile(profiler, name: str,
                   out_dir: pathlib.Path | None) -> None:
    """Dump cProfile stats next to the run's outputs.

    Writes ``<name>.prof`` (binary, for snakeviz/pstats) and
    ``<name>.hotspots.txt`` (top-20 by internal and by cumulative time)
    into ``out_dir`` — or the working directory when no ``--out`` was
    given.
    """
    import io
    import pstats

    dest = out_dir if out_dir is not None else pathlib.Path.cwd()
    dest.mkdir(parents=True, exist_ok=True)
    prof_path = dest / f"{name}.prof"
    profiler.dump_stats(prof_path)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("tottime").print_stats(20)
    stats.sort_stats("cumulative").print_stats(20)
    (dest / f"{name}.hotspots.txt").write_text(buf.getvalue())
    print(f"(profile: {prof_path} + {name}.hotspots.txt)\n")


def _result_store(args) -> ResultStore | None:
    """The persistent manifest store the CLI routes through — disabled
    by ``--no-store`` or ``REPRO_RESULT_STORE=0``."""
    import os

    if getattr(args, "no_store", False):
        return None
    if os.environ.get("REPRO_RESULT_STORE") == "0":
        return None
    return ResultStore.default()


def run_scenarios(args, parser) -> int:
    """``run scenario <file.json>...`` — run declarative scenario files,
    each optionally expanded into a ``--sweep`` grid, through the
    execution core (repeated cells are result-store cache hits, so an
    interrupted grid resumes with only its missing cells)."""
    if not args.names:
        parser.error("scenario mode needs at least one JSON file")
    try:
        sweeps = [parse_sweep(s) for s in args.sweep]
    except ValueError as exc:
        parser.error(str(exc))

    scenarios = []
    for path in args.names:
        try:
            data = json.loads(pathlib.Path(path).read_text())
            scenarios.extend(sweep_scenarios(data, sweeps))
        except (OSError, ValueError, KeyError, IndexError) as exc:
            parser.error(f"{path}: {exc}")

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    core = ExecutionCore(store=_result_store(args))
    if args.profile:
        # Profiling is per-process (and a cache hit would profile
        # nothing): the grid runs serially, one profiler per cell,
        # bypassing the store.
        import cProfile

        manifests = []
        with parallel_jobs(1):
            for scenario in scenarios:
                profiler = cProfile.Profile()
                profiler.enable()
                manifest = run_scenario(scenario)
                profiler.disable()
                manifests.append(manifest)
                _write_profile(profiler, _slug(scenario.name), args.out)
    else:
        with parallel_jobs(jobs):
            manifests = core.run(scenarios)
    for manifest in manifests:
        print(format_manifest(manifest))
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            out = args.out / f"{_slug(manifest.scenario)}.json"
            out.write_text(manifest.to_json() + "\n")
    if core.store is not None:
        print(f"(result store: {core.cache_hits} hit(s), "
              f"{core.executed} run(s); {core.store.root})")
    return 0


def _journal_for(args):
    """The submission journal ``serve`` runs over: ``auto`` (default)
    puts it under the shared cache root, ``off`` disables it, anything
    else is a path."""
    from repro.service import SubmissionJournal

    if args.journal == "off":
        return None
    if args.journal == "auto":
        return SubmissionJournal.default()
    return SubmissionJournal(args.journal)


def run_serve(args, parser) -> int:
    """``run serve`` — the long-running scenario service: an async
    scheduler accepting submissions over ``--address``, fanning them
    out to warm workers through the execution core, journaling every
    accepted submission so a restart recovers queued work."""
    from repro.service import RetryPolicy, SchedulerService

    journal = _journal_for(args)
    service = SchedulerService(
        store=_result_store(args),
        jobs=args.jobs,
        journal=journal,
        retry=RetryPolicy(
            max_attempts=max(1, args.retries + 1),
            timeout=args.timeout if args.timeout > 0 else None,
        ),
        max_queue=args.max_queue,
        store_max_bytes=args.store_max_bytes,
    )
    try:
        service.start(args.address)
        print(f"scenario service listening on {service.address} "
              f"(jobs={args.jobs}, "
              f"store={'off' if service.core.store is None else service.core.store.root}, "
              f"journal={'off' if journal is None else journal.path}, "
              f"max_queue={args.max_queue or 'unbounded'}, "
              f"retries={args.retries}, "
              f"timeout={args.timeout or 'none'})",
              flush=True)
        if service.stats["recovered"]:
            print(f"(journal replay: {service.stats['recovered']} "
                  f"submission(s) recovered)", flush=True)
        service.join()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()
    return 0


def run_store(args, parser) -> int:
    """``run store gc`` — trim the persistent result store to a byte
    and/or entry budget, least-recently-used first (reads refresh an
    entry's age); ``run store stats`` reports its size."""
    from repro.execution import ResultStore

    if len(args.names) != 1 or args.names[0] not in ("gc", "stats"):
        parser.error("store mode: use 'store gc [--max-bytes N] "
                     "[--max-entries N] [--dry-run]' or 'store stats'")
    store = ResultStore.default()
    if args.names[0] == "stats":
        entries = store.entries()
        print(f"result store {store.root}: {len(entries)} entries, "
              f"{sum(s for _, _, s in entries)} bytes")
        return 0
    if args.max_bytes is None and args.max_entries is None:
        parser.error("store gc needs --max-bytes and/or --max-entries")
    report = store.evict(max_bytes=args.max_bytes,
                         max_entries=args.max_entries,
                         dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"result store {store.root}: {verb} {len(report.removed)} "
          f"entries ({report.freed_bytes} bytes); keeping "
          f"{report.kept_entries} entries ({report.kept_bytes} bytes)")
    for content_hash in report.removed:
        print(f"  - run-{content_hash}.json")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run",
        description="Regenerate figures/tables of the IBIS paper (§7).",
    )
    parser.add_argument("names", nargs="*",
                        help="experiment names (e.g. fig6 tab3), 'all', "
                             "'scenario FILE.json...' to run scenario files, "
                             "'serve' to start the scenario service, or "
                             "'store gc|stats' to manage the result store")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="PATH=V1,V2,...",
                        help="scenario mode only: sweep a dotted key path "
                             "over values (repeatable; combines as a grid)")
    parser.add_argument("--scale", type=float, default=64.0, metavar="N",
                        help="run at 1/N of the paper's data volumes (default 64)")
    parser.add_argument("--storage", choices=("hdd", "ssd"), default="hdd")
    parser.add_argument("--seed", type=int, default=20160531)
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the parallel fan-out "
                             "(default 1 = serial, 0 = one per core); output "
                             "is deterministic regardless of N")
    parser.add_argument("--out", type=pathlib.Path, default=None, metavar="DIR",
                        help="also write each result as DIR/<name>.{txt,json}")
    parser.add_argument("--no-store", action="store_true",
                        help="scenario/serve modes: bypass the persistent "
                             "result store (every cell re-simulates)")
    parser.add_argument("--address", default="tcp://127.0.0.1:8642",
                        metavar="URL",
                        help="serve mode: transport address to listen on "
                             "(tcp://host:port or inproc://name; default "
                             "%(default)s)")
    parser.add_argument("--journal", default="auto", metavar="PATH",
                        help="serve mode: submission journal path — 'auto' "
                             "(default, $REPRO_CACHE_DIR/service/"
                             "journal.jsonl), 'off', or a file path; a "
                             "restarted scheduler replays it and finishes "
                             "incomplete submissions")
    parser.add_argument("--max-queue", type=int, default=0, metavar="N",
                        help="serve mode: bounded admission — reject "
                             "submits with a structured 'busy' reply once "
                             "N submissions are queued (0 = unbounded)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="serve mode: retries after an infrastructure "
                             "failure (worker crash/timeout) before a "
                             "submission is quarantined (default 2)")
    parser.add_argument("--timeout", type=float, default=0.0, metavar="S",
                        help="serve mode: per-batch execution timeout in "
                             "seconds; an overrunning worker is replaced "
                             "and its submissions retried (0 = no timeout)")
    parser.add_argument("--store-max-bytes", type=int, default=0,
                        metavar="N",
                        help="serve mode: evict least-recently-used store "
                             "entries once the store exceeds N bytes "
                             "(0 = no budget)")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N",
                        help="store gc: byte budget to trim the store to")
    parser.add_argument("--max-entries", type=int, default=None, metavar="N",
                        help="store gc: entry-count budget")
    parser.add_argument("--dry-run", action="store_true",
                        help="store gc: report what would be evicted "
                             "without deleting")
    parser.add_argument("--profile", action="store_true",
                        help="run each experiment under cProfile; writes "
                             "<name>.prof and a top-20 <name>.hotspots.txt "
                             "next to the results (forces --jobs 1)")
    args = parser.parse_args(argv)
    if args.profile:
        args.jobs = 1

    if args.list or not args.names:
        for name, (_fn, desc) in EXPERIMENTS.items():
            print(f"{name:<6} {desc}")
        return 0

    if args.names and args.names[0] == "scenario":
        args.names = args.names[1:]
        return run_scenarios(args, parser)
    if args.names and args.names[0] == "serve":
        if args.names[1:]:
            parser.error("serve mode takes no experiment names "
                         "(submit scenarios through the client)")
        return run_serve(args, parser)
    if args.names and args.names[0] == "store":
        args.names = args.names[1:]
        return run_store(args, parser)
    if args.sweep:
        parser.error("--sweep only applies to scenario mode "
                     "(run scenario FILE.json --sweep ...)")

    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; "
                     f"use --list to see choices")
    jobs = args.jobs if args.jobs > 0 else default_jobs()

    storage = SSD_PROFILE if args.storage == "ssd" else HDD_PROFILE
    config = default_cluster(scale=1.0 / args.scale, storage=storage,
                             seed=args.seed)
    if jobs > 1:
        # Warm the calibration caches (memory + disk) once in the parent
        # so workers load the profiling result instead of redoing it.
        controller_for(config)

    if jobs > 1 and len(names) > 1:
        # Fan out across experiments: one task per figure/table.
        specs = [RunSpec.of(_timed_experiment, name, config, label=name)
                 for name in names]
        with parallel_jobs(jobs):
            outcomes = run_specs(specs)
        for name, (result, elapsed) in zip(names, outcomes):
            _emit(name, result, elapsed, args.out)
    elif args.profile:
        import cProfile

        with parallel_jobs(1):
            for name in names:
                profiler = cProfile.Profile()
                profiler.enable()
                result, elapsed = _timed_experiment(name, config)
                profiler.disable()
                _emit(name, result, elapsed, args.out)
                _write_profile(profiler, name, args.out)
    else:
        # Serial experiment loop; with jobs > 1 the independent cluster
        # runs *inside* each figure fan out over the shared pool.
        with parallel_jobs(jobs):
            for name in names:
                result, elapsed = _timed_experiment(name, config)
                _emit(name, result, elapsed, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
