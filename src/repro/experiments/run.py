"""Command-line experiment runner.

Regenerate any figure or table of the paper from the shell::

    python -m repro.experiments.run fig6
    python -m repro.experiments.run fig10 fig11
    python -m repro.experiments.run all
    python -m repro.experiments.run --list
    python -m repro.experiments.run fig6 --scale 128   # 1/128 volumes
    python -m repro.experiments.run fig8 --storage ssd
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import HDD_PROFILE, SSD_PROFILE, default_cluster
from repro.experiments import figures
from repro.experiments.report import format_result

#: short name -> (function, description)
EXPERIMENTS = {
    "fig2": (figures.fig2_io_profiles, "I/O profiles of TeraSort & WordCount"),
    "fig3": (figures.fig3_contention, "WC contention on native Hadoop"),
    "fig6": (figures.fig6_isolation_hdd, "isolation: native vs SFQ(D) vs SFQ(D2)"),
    "fig7": (figures.fig7_depth_adaptation, "SFQ(D2) depth adaptation trace"),
    "fig8": (figures.fig8_isolation_ssd, "isolation on the SSD setup"),
    "fig9": (figures.fig9_facebook, "Facebook2009 runtime CDFs"),
    "fig10": (figures.fig10_multiframework, "TPC-H vs TeraSort: cgroups vs IBIS"),
    "fig11": (figures.fig11_proportional_slowdown, "proportional slowdown"),
    "fig12": (figures.fig12_coordination, "broker coordination on/off"),
    "fig13": (figures.fig13_overhead, "IBIS overhead"),
    "tab2": (figures.tab2_resource_usage, "daemon resource usage"),
    "tab3": (figures.tab3_loc, "component development cost"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run",
        description="Regenerate figures/tables of the IBIS paper (§7).",
    )
    parser.add_argument("names", nargs="*",
                        help="experiment names (e.g. fig6 tab3) or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--scale", type=float, default=64.0, metavar="N",
                        help="run at 1/N of the paper's data volumes (default 64)")
    parser.add_argument("--storage", choices=("hdd", "ssd"), default="hdd")
    parser.add_argument("--seed", type=int, default=20160531)
    args = parser.parse_args(argv)

    if args.list or not args.names:
        for name, (_fn, desc) in EXPERIMENTS.items():
            print(f"{name:<6} {desc}")
        return 0

    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; "
                     f"use --list to see choices")

    storage = SSD_PROFILE if args.storage == "ssd" else HDD_PROFILE
    config = default_cluster(scale=1.0 / args.scale, storage=storage,
                             seed=args.seed)
    for name in names:
        fn, _desc = EXPERIMENTS[name]
        t0 = time.time()
        result = fn(config)
        print(format_result(result))
        print(f"({name} regenerated in {time.time() - t0:.1f}s wall)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
