"""Experiment harness: one function per figure/table of the paper's §7.

Each ``fig*``/``tab*`` function builds the clusters, runs the workloads,
and returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows mirror the bars/series the paper reports.  The benchmark
suite under ``benchmarks/`` drives exactly these functions.
"""

from repro.experiments.figures import (
    fig2_io_profiles,
    fig3_contention,
    fig6_isolation_hdd,
    fig7_depth_adaptation,
    fig8_isolation_ssd,
    fig9_facebook,
    fig10_multiframework,
    fig11_proportional_slowdown,
    fig12_coordination,
    fig13_overhead,
    mixed_policy_ablation,
    tab2_resource_usage,
    tab3_loc,
)
from repro.execution import RunSpec, parallel_jobs, run_specs
from repro.experiments.harness import ExperimentResult, controller_for
from repro.experiments.report import format_result, result_payload

__all__ = [
    "ExperimentResult",
    "RunSpec",
    "controller_for",
    "parallel_jobs",
    "result_payload",
    "run_specs",
    "fig2_io_profiles",
    "fig3_contention",
    "fig6_isolation_hdd",
    "fig7_depth_adaptation",
    "fig8_isolation_ssd",
    "fig9_facebook",
    "fig10_multiframework",
    "fig11_proportional_slowdown",
    "fig12_coordination",
    "fig13_overhead",
    "format_result",
    "mixed_policy_ablation",
    "tab2_resource_usage",
    "tab3_loc",
]
