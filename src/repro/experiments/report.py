"""ASCII rendering of experiment results (the benches print these)."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.experiments.harness import ExperimentResult

if TYPE_CHECKING:
    from repro.scenario import RunManifest

__all__ = ["format_manifest", "format_result", "format_rows", "result_payload"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 10:
            return f"{value:.3f}"
        return f"{value:.1f}"
    return str(value)


def format_rows(rows: list[dict[str, Any]]) -> str:
    """Align a list of row dicts into a text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return f"{header}\n{sep}\n{body}"


def result_payload(result: ExperimentResult) -> str:
    """Canonical JSON for an experiment result.

    Key order and float repr are fully determined by the result's
    content, so two runs that produced the same numbers serialize to the
    same bytes — this is what the parallel-vs-serial determinism checks
    (and ``run.py --out``) compare.
    """
    return json.dumps(
        {
            "name": result.name,
            "rows": result.rows,
            "series": result.series,
            "notes": result.notes,
        },
        indent=2,
        sort_keys=True,
    )


def _latency_lines(latency: "dict[str, Any]") -> list[str]:
    """Render the per-(app, class) span decomposition, one line each."""
    lines = ["latency (queue wait | device service, seconds):"]
    for app in sorted(latency):
        for io_class in sorted(latency[app]):
            cell = latency[app][io_class]
            wait, service = cell["queue_wait"], cell["service"]
            outcomes = ", ".join(
                f"{state}={n}" for state, n in sorted(cell["outcomes"].items())
            )
            lines.append(
                f"  {app}/{io_class}: "
                f"wait p50 {wait['p50']:.4f} p95 {wait['p95']:.4f} "
                f"p99 {wait['p99']:.4f} | "
                f"service p50 {service['p50']:.4f} p95 {service['p95']:.4f} "
                f"p99 {service['p99']:.4f} "
                f"({outcomes})"
            )
    return lines


def format_manifest(manifest: "RunManifest") -> str:
    """Full report of one scenario run: identity, rows, summaries."""
    parts = [
        f"== scenario {manifest.scenario} ==",
        f"scenario_hash {manifest.scenario_hash}  "
        f"metrics_hash {manifest.metrics_hash()}",
        f"seed {manifest.seed}  scale 1/{1.0 / manifest.scale:g}  "
        f"storage {manifest.storage}  sim_time {manifest.sim_time:.1f}s  "
        f"wall {manifest.wall_time:.2f}s",
    ]
    if manifest.rows:
        parts.append(format_rows(manifest.rows))
    for key, value in manifest.summary.items():
        if key == "latency":
            parts.extend(_latency_lines(value))
            continue
        parts.append(f"summary {key}: {_fmt(value)}")
    for key, value in manifest.counters.items():
        parts.append(f"counter {key}: {_fmt(value)}")
    for name, (times, values) in manifest.series.items():
        if not values:
            parts.append(f"series {name}: (empty)")
            continue
        parts.append(
            f"series {name}: {len(values)} points, "
            f"min {min(values):.2f}, max {max(values):.2f}, "
            f"last t {times[-1]:.1f}"
        )
    if manifest.trace_path:
        parts.append(f"trace {manifest.trace_path}")
    return "\n".join(parts)


def format_result(result: ExperimentResult) -> str:
    """Full report: name, rows, series summaries, notes."""
    parts = [f"== {result.name} =="]
    if result.rows:
        parts.append(format_rows(result.rows))
    for name, (times, values) in result.series.items():
        if not values:
            parts.append(f"series {name}: (empty)")
            continue
        parts.append(
            f"series {name}: {len(values)} points, "
            f"min {min(values):.2f}, max {max(values):.2f}, "
            f"last t {times[-1]:.1f}"
        )
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
