"""TPC-H Q9 and Q21 as Hive job chains (§7.4).

The paper characterises the two queries:

* **Q9** (product type profit): 53 GB of initial input from five
  tables, ~120 GB of intermediate I/O, up to 15 sequential Hadoop
  jobs, 5 KB final output.  Join-heavy: most of its I/O is
  *intermediate* (shuffle/spill) — which is why cgroups throttling,
  which can reach intermediate I/O, helps Q9 (§7.4).
* **Q21** (suppliers who kept orders waiting): 45 GB input from four
  tables, ~40 GB intermediate, 2.6 GB output.  Relatively more of its
  I/O is *persistent* (HDFS scans of lineitem several times), so
  cgroups barely helps while IBIS — which schedules HDFS I/O too —
  does.

Stage volumes below are a per-stage decomposition consistent with those
totals (the TPC-H spec fixes the table sizes; the per-stage split
follows the usual Hive plans: scan+join stages first, aggregation and
ordering at the tail).
"""

from __future__ import annotations

from repro.config import ClusterConfig, GB, KB, MB
from repro.hive.engine import HiveQuery
from repro.mapreduce import JobSpec

__all__ = ["TPCH_QUERIES", "build_query", "tpch_q9", "tpch_q21"]


def _stage(
    config: ClusterConfig,
    query: str,
    idx: int,
    input_path: str,
    shuffle: float,
    output: float,
    cpu: float = 0.012,
    n_reduces: int = 8,
) -> JobSpec:
    shuffle_scaled = config.scaled(shuffle) if shuffle > 0 else 0
    return JobSpec(
        name=f"{query}-s{idx}",
        input_path=input_path,
        shuffle_bytes=shuffle_scaled,
        output_bytes=max(1, config.scaled(output)),
        n_reduces=n_reduces if shuffle_scaled > 0 else 0,
        map_cpu_s_per_mb=cpu,
        reduce_cpu_s_per_mb=cpu,
        map_spill_factor=1.2,
        reduce_merge_factor=1.0,
    )


def tpch_q9(config: ClusterConfig, tables_path: str = "/tpch/q9-tables") -> HiveQuery:
    """Q9: five-table join cascade, intermediate-I/O heavy.

    Totals: 53 GB table input, ≈120 GB intermediate (sum of stage
    shuffles + spills), 5 KB output.
    """
    q = "q9"
    tmp = f"/tmp/{q}"
    stages = (
        # Join lineitem ⋈ part ⋈ supplier: big scan, big shuffle.
        _stage(config, q, 0, tables_path, shuffle=42 * GB, output=30 * GB),
        # ⋈ partsupp: re-shuffle of the joined relation.
        _stage(config, q, 1, f"{tmp}/s0", shuffle=30 * GB, output=22 * GB),
        # ⋈ orders ⋈ nation: still volume-heavy.
        _stage(config, q, 2, f"{tmp}/s1", shuffle=22 * GB, output=12 * GB),
        # Per-(nation, year) partial aggregation.
        _stage(config, q, 3, f"{tmp}/s2", shuffle=12 * GB, output=2 * GB),
        # Global aggregation.
        _stage(config, q, 4, f"{tmp}/s3", shuffle=2 * GB, output=64 * MB,
               n_reduces=4),
        # Final ordering: tiny.
        _stage(config, q, 5, f"{tmp}/s4", shuffle=64 * MB, output=5 * KB,
               n_reduces=1),
    )
    return HiveQuery(
        name="TPC-H Q9",
        stages=stages,
        table_paths=(tables_path,),
        table_bytes=(53 * GB,),
    )


def tpch_q21(config: ClusterConfig, tables_path: str = "/tpch/q21-tables") -> HiveQuery:
    """Q21: repeated lineitem scans (self-joins), persistent-I/O heavy.

    Totals: 45 GB table input read multiple times across stages,
    ≈40 GB intermediate, 2.6 GB output.
    """
    q = "q21"
    tmp = f"/tmp/{q}"
    stages = (
        # Scan lineitem ⋈ supplier ⋈ orders with exists-subquery: the
        # whole input, but a selective shuffle.
        _stage(config, q, 0, tables_path, shuffle=14 * GB, output=10 * GB),
        # Self-join against lineitem again: another full persistent scan.
        _stage(config, q, 1, tables_path, shuffle=12 * GB, output=8 * GB,
               cpu=0.010),
        # not-exists anti-join of the two intermediate relations.
        _stage(config, q, 2, f"{tmp}/s1", shuffle=8 * GB, output=4 * GB),
        # Count per supplier.
        _stage(config, q, 3, f"{tmp}/s2", shuffle=4 * GB, output=2.6 * GB,
               n_reduces=8),
        # Order/limit.
        _stage(config, q, 4, f"{tmp}/s3", shuffle=2 * GB, output=2.6 * GB,
               n_reduces=4),
    )
    return HiveQuery(
        name="TPC-H Q21",
        stages=stages,
        table_paths=(tables_path,),
        table_bytes=(45 * GB,),
    )


#: Declarative name -> query builder (``"app": "hive"`` scenario entries
#: select one of these via their ``query`` parameter).
TPCH_QUERIES = {
    "q9": tpch_q9,
    "q21": tpch_q21,
}


def build_query(config: ClusterConfig, query: str, **params) -> HiveQuery:
    """Build a TPC-H :class:`HiveQuery` by declarative name."""
    try:
        builder = TPCH_QUERIES[query]
    except KeyError:
        raise ValueError(
            f"unknown query {query!r}; expected one of {sorted(TPCH_QUERIES)}"
        ) from None
    return builder(config, **params)
