"""Hive substrate: SQL queries as DAGs of sequential MapReduce jobs."""

from repro.hive.engine import HiveQuery, run_query
from repro.hive.tpch import TPCH_QUERIES, build_query, tpch_q9, tpch_q21

__all__ = ["HiveQuery", "TPCH_QUERIES", "build_query", "run_query",
           "tpch_q9", "tpch_q21"]
