"""Hive execution engine: a query is a chain of MapReduce stages (§7.4).

Hive compiles a SQL query into a series of MapReduce jobs (up to 15 for
the TPC-H queries studied); each stage writes its result to HDFS and
the next stage reads it.  All stages of one query run under the same
application id and I/O weight, so IBIS schedules the whole query as one
flow — exactly how the prototype treats Hive applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import BigDataCluster
from repro.mapreduce import Job, JobSpec
from repro.simcore import Event

__all__ = ["HiveQuery", "run_query"]


@dataclass(frozen=True)
class HiveQuery:
    """A named query: ordered stages plus the table file(s) it scans."""

    name: str
    stages: tuple[JobSpec, ...]
    table_paths: tuple[str, ...]
    table_bytes: tuple[int, ...]   # paper-scale sizes, scaled at preload

    def __post_init__(self):
        if not self.stages:
            raise ValueError("a query needs at least one stage")
        if len(self.table_paths) != len(self.table_bytes):
            raise ValueError("table paths/sizes mismatch")


class QueryRun:
    """Handle for a submitted query: completion event + stage jobs."""

    def __init__(self, query: HiveQuery, done: Event):
        self.query = query
        self.done = done
        self.stage_jobs: list[Job] = []
        self.finish_time: float | None = None
        self.submit_time: float | None = None

    @property
    def runtime(self) -> float:
        if self.finish_time is None or self.submit_time is None:
            raise RuntimeError(f"query {self.query.name!r} has not finished")
        return self.finish_time - self.submit_time


def run_query(
    cluster: BigDataCluster,
    query: HiveQuery,
    io_weight: float = 1.0,
    cpu_weight: float = 1.0,
    max_cores: int | None = None,
    delay: float = 0.0,
) -> QueryRun:
    """Submit a Hive query: stages execute strictly in sequence.

    Stage *k*'s input file is materialised from stage *k−1*'s declared
    output volume (the write cost was paid by stage k−1's reducers; the
    re-registration is pure metadata).
    """
    run = QueryRun(query, cluster.sim.event(name=f"hive:{query.name}"))

    def driver():
        run.submit_time = cluster.sim.now
        for idx, stage in enumerate(query.stages):
            if stage.input_path is not None and not cluster.namenode.exists(
                stage.input_path
            ):
                # Stage input = previous stage's output volume.
                prev_out = query.stages[idx - 1].output_bytes if idx else 0
                if prev_out <= 0:
                    raise ValueError(
                        f"stage {idx} of {query.name!r} reads "
                        f"{stage.input_path!r} but no producer declared it"
                    )
                cluster.dfs.namenode.create_file(
                    stage.input_path, prev_out, spread=True
                )
            job = cluster.submit(
                stage,
                io_weight=io_weight,
                cpu_weight=cpu_weight,
                max_cores=max_cores,
            )
            run.stage_jobs.append(job)
            yield job.done
        run.finish_time = cluster.sim.now
        run.done.succeed(run)

    def start():
        cluster.sim.process(driver(), name=f"hive:{query.name}")

    if delay > 0:
        cluster.sim.call_in(delay, start)
    else:
        start()
    return run
