"""BigDataCluster: the whole simulated testbed, wired together.

One object owns the simulator, the eight worker nodes (two interposed
devices each), the network fabric, HDFS, the YARN Resource Manager, and
— when the policy asks for it — the IBIS Scheduling Broker.  Jobs are
submitted against it and it runs until they all finish.

This is the main entry point of the public API::

    from repro import BigDataCluster, PolicySpec, default_cluster
    from repro.workloads import wordcount, teragen

    cluster = BigDataCluster(default_cluster(), PolicySpec.native())
    cluster.preload_input("/in/wiki", 50 * GB)
    wc = cluster.submit(wordcount(cluster.config, "/in/wiki"),
                        io_weight=32.0, max_cores=48)
    tg = cluster.submit(teragen(cluster.config), io_weight=1.0, max_cores=48)
    cluster.run()
    print(wc.runtime, tg.runtime)
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import ClusterConfig
from repro.core import (
    DataNodeIO,
    IOClass,
    IOTag,
    NodePolicy,
    PolicySpec,
    SchedulingBroker,
)
from repro.core.metrics import aggregate_service
from repro.faults import FaultInjector, FaultPlan
from repro.hdfs import DFSClient, NameNode
from repro.hdfs.datanode import BlockService
from repro.localfs import LocalFS
from repro.mapreduce import AppMaster, Job, JobSpec
from repro.mapreduce.task import TaskEnv
from repro.net import NetFabric
from repro.simcore import RngRegistry, SimulationError, Simulator
from repro.telemetry import TelemetryBus

__all__ = ["BigDataCluster"]


class BigDataCluster:
    def __init__(
        self,
        config: ClusterConfig,
        policy: Union[PolicySpec, NodePolicy],
        faults: Optional[FaultPlan] = None,
    ):
        self.config = config
        self.policy = NodePolicy.coerce(policy)
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        # One bus for the whole testbed: every scheduler, device and the
        # broker publish here, so a single sink observes the cluster.
        self.telemetry = TelemetryBus()

        node_ids = [f"dn{i:02d}" for i in range(config.n_workers)]
        self.node_ids = node_ids
        self.broker: Optional[SchedulingBroker] = (
            SchedulingBroker(self.sim, telemetry=self.telemetry)
            if self.policy.coordinated else None
        )
        self.nodes: dict[str, DataNodeIO] = {
            nid: DataNodeIO(
                self.sim, nid, config, self.policy, broker=self.broker,
                telemetry=self.telemetry,
            )
            for nid in node_ids
        }
        self.net = NetFabric(self.sim, node_ids, config.nic_bandwidth)
        self.namenode = NameNode(
            node_ids,
            block_size=config.sim_block_size,
            replication=config.yarn.dfs_replication,
            rng=self.rng.stream("placement"),
        )
        self.block_service = BlockService(
            self.sim,
            self.nodes,
            self.net,
            config.io_chunk,
            read_window=config.read_window,
            write_window=config.write_window,
            telemetry=self.telemetry,
        )
        self.dfs = DFSClient(self.sim, self.namenode, self.block_service)
        self.localfs = {
            nid: LocalFS(
                self.sim,
                node,
                config.io_chunk,
                read_window=config.read_window,
                write_window=config.write_window,
            )
            for nid, node in self.nodes.items()
        }
        from repro.yarnsim import ResourceManager  # local import: avoid cycle

        self.rm = ResourceManager(
            self.sim,
            node_ids,
            cores_per_node=config.cores_per_node,
            memory_per_node=config.alloc_memory_per_node,
        )
        self.env = TaskEnv(
            sim=self.sim,
            dfs=self.dfs,
            localfs=self.localfs,
            net=self.net,
            rng=self.rng.stream("task-jitter"),
            telemetry=self.telemetry,
        )
        self.jobs: list[Job] = []

        # Fault injection: only armed when a plan is supplied; a healthy
        # run never touches any of the fault machinery.
        self.faults: Optional[FaultInjector] = None
        if faults is not None:
            self.faults = FaultInjector(self, faults)
            self.block_service.enable_failover(faults, self.faults)
            self.env.faults = self.faults
            self.faults.arm()

    # ------------------------------------------------------------------ api
    def preload_input(self, path: str, nbytes: int, nodes=None) -> None:
        """Materialise an input file (paper-sized; scaled internally),
        spread evenly over the datanodes — or over a subset (``nodes``)
        to induce skewed data distribution.  Not simulated I/O."""
        self.dfs.preload(path, self.config.scaled(nbytes), nodes=nodes)

    def submit(
        self,
        spec: JobSpec,
        io_weight: float = 1.0,
        cpu_weight: float = 1.0,
        max_cores: Optional[int] = None,
        delay: float = 0.0,
    ) -> Job:
        """Register a job; its AM starts after ``delay`` seconds.

        ``io_weight`` is the IBIS bandwidth share weight carried by every
        I/O the job issues; ``cpu_weight``/``max_cores`` control the Fair
        Scheduler's CPU allocation (the paper pins CPU with max_cores).
        """
        app_id = f"app{len(self.jobs) + 1:02d}-{spec.name}"
        job = Job(self.sim, spec, app_id, IOTag(app_id, io_weight))
        self.jobs.append(job)

        def start() -> None:
            job.submit_time = self.sim.now
            self.rm.register_app(app_id, weight=cpu_weight, max_cores=max_cores)
            am = AppMaster(self.env, self.rm, job, self.config.yarn)

            def am_and_cleanup():
                yield self.sim.process(am.run(), name=f"am:{app_id}")
                self.rm.unregister_app(app_id)

            self.sim.process(am_and_cleanup(), name=f"app:{app_id}")

        if delay > 0:
            self.sim.call_in(delay, start)
        else:
            start()
        return job

    def run(self, *events) -> None:
        """Run until the given events trigger, or (with no arguments)
        until every submitted job finishes.  The no-argument form loops,
        because multi-stage applications (Hive) submit jobs progressively.
        """
        if events:
            self._run_sim(self.sim.all_of(list(events)))
            return
        if not self.jobs:
            raise SimulationError("no jobs submitted")
        while True:
            unfinished = [j.done for j in self.jobs if j.finish_time is None]
            if not unfinished:
                return
            self._run_sim(self.sim.all_of(unfinished))

    def run_for(self, duration: float) -> None:
        """Run for a fixed window (used for throughput profiles)."""
        self._run_sim(duration)

    def _run_sim(self, until) -> None:
        """Run the engine, converting a task-process death into a
        :class:`SimulationError` naming the process — instead of the
        raw exception escaping with the job counter stuck and the next
        ``run()`` pass spinning to the horizon."""
        try:
            self.sim.run(until=until)
        except SimulationError:
            raise
        except Exception as exc:
            name = getattr(exc, "sim_process", None)
            who = f"process {name!r}" if name else "a simulation process"
            raise SimulationError(
                f"{who} died with {type(exc).__name__}: {exc}"
            ) from exc

    # -------------------------------------------------------------- results
    def total_service_by_app(self) -> dict[str, float]:
        """Total bytes serviced per application across all schedulers —
        the quantity whose proportional sharing §5 targets."""
        return aggregate_service(
            sched.stats.service_by_app
            for node in self.nodes.values()
            for sched in node.schedulers.values()
        )

    def cluster_throughput(self, t_end: Optional[float] = None) -> float:
        """Aggregate storage throughput (bytes/s) over the run."""
        end = t_end if t_end is not None else self.sim.now
        if end <= 0:
            return 0.0
        total = 0.0
        for node in self.nodes.values():
            for dev in (node.hdfs_device, node.tmp_device):
                total += dev.read_meter.total + dev.write_meter.total
        return total / end

    def windowed_throughput(self, t0: float, t1: float) -> float:
        """Aggregate storage throughput (bytes/s) over [t0, t1) —
        the Fig. 6b/8b accounting, owned by the cluster so experiments
        need not reach into per-node devices."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        total = 0.0
        for node in self.nodes.values():
            for dev in (node.hdfs_device, node.tmp_device):
                total += dev.read_meter.window_total(t0, t1)
                total += dev.write_meter.window_total(t0, t1)
        return total / (t1 - t0)

    def app_throughput_meters(self, app_id: str):
        """All per-scheduler rate meters of one application."""
        out = []
        for node in self.nodes.values():
            for sched in node.schedulers.values():
                meter = sched.stats.meter_by_app.get(app_id)
                if meter is not None:
                    out.append(meter)
        return out

    def device_meters(self, op: str):
        """Every device's read or write meter (Fig. 2 profiles)."""
        if op not in ("read", "write"):
            raise ValueError("op must be 'read' or 'write'")
        out = []
        for node in self.nodes.values():
            for dev in (node.hdfs_device, node.tmp_device):
                out.append(dev.read_meter if op == "read" else dev.write_meter)
        return out

    def schedulers(self, io_class: Optional[IOClass] = None):
        """Iterate interposed schedulers, optionally one class only."""
        for node in self.nodes.values():
            for cls, sched in node.schedulers.items():
                if io_class is None or cls is io_class:
                    yield sched
