"""Microbenchmark for the simcore event engine's hot path.

Reports simulated events per second for the dominant workload shapes of
the IBIS simulation and (optionally) compares against the committed
baseline in ``BENCH_engine.json`` so CI fails on regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_microbench.py                 # full tier
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --tier smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --tier scale    # 1000 devices, 1M requests
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --write         # refresh baseline
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --check         # fail below baseline

Workloads
---------
* ``timeouts``   — N processes each awaiting M sequential timeouts: the
  generator-resume + Timeout path that dominates every simulation run.
  The queue-pop count is analytic (``N * (M + 2)``: one start event, M
  timeouts, one process-completion event per process), so events/sec is
  comparable across engine versions regardless of internal changes.
* ``device``     — the same closed-loop storage workload measured two
  ways: ``device_requests_per_sec`` runs it through the vectorized
  :class:`~repro.simcore.vectorized.DeviceBank` (many devices batched
  per numpy tick — the 1000-node path), and
  ``device_eventloop_requests_per_sec`` through the event-driven
  ``repro.storage.device`` dispatch (one device, per-request Python).
* ``interrupts`` — processes that are repeatedly interrupted mid-wait:
  the ``_interrupts`` queue path in ``Process._resume``.

Tiers: ``full`` (default) and ``smoke`` cover all workloads; ``scale``
runs only the bank at cluster size — 1000 devices x 8 workers x 1000
requests = 1M requests — and is gated in CI with its own (looser)
tolerance recorded in ``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.config import HDD_PROFILE
from repro.simcore import Simulator
from repro.storage import StorageDevice

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: fail --check when a metric drops more than this fraction below baseline
REGRESSION_TOLERANCE = 0.20

#: per-tier tolerance overrides, recorded into the baseline on --write;
#: the scale tier mixes a 1M-request numpy solve with allocator noise,
#: so it gets more headroom than the steady microbenches.
TIER_TOLERANCE = {"scale": 0.30}


# ----------------------------------------------------------------- workloads
def bench_timeouts(n_procs: int, n_timeouts: int) -> float:
    """Events/sec for the sequential-timeout workload (analytic count)."""
    sim = Simulator()

    def proc():
        for _ in range(n_timeouts):
            yield sim.timeout(1.0)

    for _ in range(n_procs):
        sim.process(proc())
    n_events = n_procs * (n_timeouts + 2)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return n_events / elapsed


def bench_device(n_workers: int, n_requests: int) -> float:
    """Requests/sec through the event-driven device dispatch path."""
    sim = Simulator()
    device = StorageDevice(sim, HDD_PROFILE, name="bench")
    chunk = 1 << 20

    def worker():
        for i in range(n_requests):
            yield device.submit("read" if i % 2 else "write", chunk)

    for _ in range(n_workers):
        sim.process(worker())
    total = n_workers * n_requests
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return total / elapsed


def bench_device_bank(n_devices: int, n_workers: int, n_requests: int) -> float:
    """Requests/sec through the vectorized device bank.

    Same closed-loop workload shape as :func:`bench_device` (each worker
    alternates write/read at 1 MiB), but ``n_devices`` devices are
    solved in one batch — the path the 1000-node scale tier exercises.
    """
    import numpy as np

    from repro.simcore.vectorized import DeviceBank

    bank = DeviceBank(HDD_PROFILE, n_devices=n_devices)
    chunk = 1 << 20
    # Per-worker request i has op ("read" if i % 2 else "write"); with
    # round-robin submits the global index k maps to i = k // workers.
    is_write = (np.arange(n_requests) // n_workers) % 2 == 0
    t0 = time.perf_counter()
    res = bank.run_closed_loop(
        n_requests, chunk, is_write=is_write, workers=n_workers
    )
    elapsed = time.perf_counter() - t0
    assert res.total_requests == n_devices * n_requests
    assert float(res.makespan.min()) > 0.0
    return res.total_requests / elapsed


def bench_interrupts(n_pairs: int, n_rounds: int) -> float:
    """Interrupt deliveries/sec through the ``_interrupts`` queue path."""
    sim = Simulator()
    from repro.simcore import Interrupt

    def sleeper():
        while True:
            try:
                yield sim.timeout(1e9)
                return
            except Interrupt as intr:
                if intr.cause == "stop":
                    return

    def interrupter(target):
        for i in range(n_rounds):
            yield sim.timeout(1.0)
            target.interrupt(cause="stop" if i == n_rounds - 1 else None)

    for _ in range(n_pairs):
        target = sim.process(sleeper())
        sim.process(interrupter(target))
    total = n_pairs * n_rounds
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return total / elapsed


# ------------------------------------------------------------------- driver
#: workload sizes per tier; ``bank`` is (devices, workers, requests/device)
TIER_PARAMS = {
    "smoke": dict(
        timeouts=(200, 50),
        device=(8, 500),
        interrupts=(100, 20),
        bank=(16, 8, 500),
    ),
    "full": dict(
        timeouts=(1000, 200),
        device=(8, 5000),
        interrupts=(500, 100),
        bank=(64, 8, 2000),
    ),
    # The ROADMAP's 1000-node target: one batched solve, >= 1M requests.
    "scale": dict(bank=(1000, 8, 1000)),
}


def run_suite(tier: str, repeats: int) -> dict[str, float]:
    params = TIER_PARAMS[tier]
    benches: dict[str, object] = {}
    if "bank" in params:
        benches["device_requests_per_sec"] = (
            lambda: bench_device_bank(*params["bank"])
        )
    if "timeouts" in params:
        benches["timeouts_events_per_sec"] = (
            lambda: bench_timeouts(*params["timeouts"])
        )
    if "device" in params:
        benches["device_eventloop_requests_per_sec"] = (
            lambda: bench_device(*params["device"])
        )
    if "interrupts" in params:
        benches["interrupts_per_sec"] = (
            lambda: bench_interrupts(*params["interrupts"])
        )
    results: dict[str, float] = {}
    for name, fn in benches.items():
        best = max(fn() for _ in range(repeats))
        results[name] = round(best, 1)
        print(f"{name:<36} {best:>14,.0f}")
    return results


def check_against_baseline(results: dict[str, float], mode: str) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write first",
              file=sys.stderr)
        return 2
    payload = json.loads(BASELINE_PATH.read_text())
    baseline = payload.get(mode)
    if baseline is None:
        print(f"no '{mode}' baseline in {BASELINE_PATH}; "
              f"run with --write first", file=sys.stderr)
        return 2
    tolerance = baseline.get(
        "tolerance", payload.get("tolerance", REGRESSION_TOLERANCE)
    )
    baseline = baseline["metrics"]
    failed = False
    for name, base in baseline.items():
        got = results.get(name)
        if got is None:
            print(f"MISSING {name}", file=sys.stderr)
            failed = True
            continue
        floor = base * (1.0 - tolerance)
        status = "ok" if got >= floor else "REGRESSION"
        print(f"{name:<36} {got:>14,.0f} vs baseline {base:>14,.0f}  [{status}]")
        if got < floor:
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tier", choices=sorted(TIER_PARAMS),
                        default=None,
                        help="workload tier (default: full)")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for --tier smoke (CI-sized)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take best-of-N (default 3)")
    parser.add_argument("--write", action="store_true",
                        help="write results to BENCH_engine.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against BENCH_engine.json; exit 1 on "
                             "a regression beyond the tier's tolerance")
    args = parser.parse_args(argv)
    if args.tier and args.smoke and args.tier != "smoke":
        parser.error("--smoke conflicts with --tier " + args.tier)
    tier = args.tier or ("smoke" if args.smoke else "full")

    results = run_suite(tier, repeats=args.repeats)
    if args.write:
        # Baselines are stored per tier so CI compares like for like;
        # --write refreshes only the tier that was run.
        payload = {"tolerance": REGRESSION_TOLERANCE}
        if BASELINE_PATH.exists():
            payload.update(json.loads(BASELINE_PATH.read_text()))
        payload[tier] = {
            "metrics": results,
            "python": platform.python_version(),
        }
        if tier in TIER_TOLERANCE:
            payload[tier]["tolerance"] = TIER_TOLERANCE[tier]
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"{tier} baseline written to {BASELINE_PATH}")
    if args.check:
        return check_against_baseline(results, tier)
    return 0


if __name__ == "__main__":
    sys.exit(main())
