"""Microbenchmark for the simcore event engine's hot path.

Reports simulated events per second for the dominant workload shapes of
the IBIS simulation and (optionally) compares against the committed
baseline in ``BENCH_engine.json`` so CI fails on regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_microbench.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --write    # refresh baseline
    PYTHONPATH=src python benchmarks/bench_engine_microbench.py --check    # fail if >20% below baseline

Workloads
---------
* ``timeouts``   — N processes each awaiting M sequential timeouts: the
  generator-resume + Timeout path that dominates every simulation run.
  The heap-pop count is analytic (``N * (M + 2)``: one start event, M
  timeouts, one process-completion event per process), so events/sec is
  comparable across engine versions regardless of internal changes.
* ``device``     — a closed-loop storage-device workload (8 workers,
  fixed request count): exercises submit/tick dispatch in
  ``repro.storage.device``.  Reported as requests/sec.
* ``interrupts`` — processes that are repeatedly interrupted mid-wait:
  the ``_interrupts`` queue path in ``Process._resume``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.config import HDD_PROFILE
from repro.simcore import Simulator
from repro.storage import StorageDevice

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: fail --check when a metric drops more than this fraction below baseline
REGRESSION_TOLERANCE = 0.20


# ----------------------------------------------------------------- workloads
def bench_timeouts(n_procs: int, n_timeouts: int) -> float:
    """Events/sec for the sequential-timeout workload (analytic count)."""
    sim = Simulator()

    def proc():
        for _ in range(n_timeouts):
            yield sim.timeout(1.0)

    for _ in range(n_procs):
        sim.process(proc())
    n_events = n_procs * (n_timeouts + 2)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return n_events / elapsed


def bench_device(n_workers: int, n_requests: int) -> float:
    """Requests/sec through the storage device dispatch path."""
    sim = Simulator()
    device = StorageDevice(sim, HDD_PROFILE, name="bench")
    chunk = 1 << 20

    def worker():
        for i in range(n_requests):
            yield device.submit("read" if i % 2 else "write", chunk)

    for _ in range(n_workers):
        sim.process(worker())
    total = n_workers * n_requests
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return total / elapsed


def bench_interrupts(n_pairs: int, n_rounds: int) -> float:
    """Interrupt deliveries/sec through the ``_interrupts`` queue path."""
    sim = Simulator()
    from repro.simcore import Interrupt

    def sleeper():
        while True:
            try:
                yield sim.timeout(1e9)
                return
            except Interrupt as intr:
                if intr.cause == "stop":
                    return

    def interrupter(target):
        for i in range(n_rounds):
            yield sim.timeout(1.0)
            target.interrupt(cause="stop" if i == n_rounds - 1 else None)

    for _ in range(n_pairs):
        target = sim.process(sleeper())
        sim.process(interrupter(target))
    total = n_pairs * n_rounds
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return total / elapsed


# ------------------------------------------------------------------- driver
def run_suite(smoke: bool, repeats: int) -> dict[str, float]:
    if smoke:
        params = dict(timeouts=(200, 50), device=(8, 500), interrupts=(100, 20))
    else:
        params = dict(timeouts=(1000, 200), device=(8, 5000), interrupts=(500, 100))
    benches = {
        "timeouts_events_per_sec": lambda: bench_timeouts(*params["timeouts"]),
        "device_requests_per_sec": lambda: bench_device(*params["device"]),
        "interrupts_per_sec": lambda: bench_interrupts(*params["interrupts"]),
    }
    results: dict[str, float] = {}
    for name, fn in benches.items():
        best = max(fn() for _ in range(repeats))
        results[name] = round(best, 1)
        print(f"{name:<28} {best:>14,.0f}")
    return results


def check_against_baseline(results: dict[str, float], mode: str) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write first",
              file=sys.stderr)
        return 2
    payload = json.loads(BASELINE_PATH.read_text())
    baseline = payload.get(mode)
    if baseline is None:
        print(f"no '{mode}' baseline in {BASELINE_PATH}; "
              f"run with --write first", file=sys.stderr)
        return 2
    baseline = baseline["metrics"]
    failed = False
    for name, base in baseline.items():
        got = results.get(name)
        if got is None:
            print(f"MISSING {name}", file=sys.stderr)
            failed = True
            continue
        floor = base * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSION"
        print(f"{name:<28} {got:>14,.0f} vs baseline {base:>14,.0f}  [{status}]")
        if got < floor:
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads (CI-sized)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take best-of-N (default 3)")
    parser.add_argument("--write", action="store_true",
                        help="write results to BENCH_engine.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against BENCH_engine.json; exit 1 on "
                             f">{REGRESSION_TOLERANCE:.0%} regression")
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, repeats=args.repeats)
    mode = "smoke" if args.smoke else "full"
    if args.write:
        # Baselines are stored per mode so --smoke --check (CI) compares
        # like for like; --write refreshes only the mode that was run.
        payload = {"tolerance": REGRESSION_TOLERANCE}
        if BASELINE_PATH.exists():
            payload.update(json.loads(BASELINE_PATH.read_text()))
        payload[mode] = {
            "metrics": results,
            "python": platform.python_version(),
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"{mode} baseline written to {BASELINE_PATH}")
    if args.check:
        return check_against_baseline(results, mode)
    return 0


if __name__ == "__main__":
    sys.exit(main())
