"""Figure 7: SFQ(D2)'s depth adaptation and observed latency over time
on one datanode (including the write-back flush-storm latency spikes)."""

from repro.experiments import fig7_depth_adaptation


def test_fig7_depth_adaptation(benchmark, report):
    result = benchmark.pedantic(fig7_depth_adaptation, rounds=1, iterations=1)
    report(result)

    row = result.rows[0]
    # The controller actually moves D within its [1, 12] bounds.
    assert row["samples"] >= 5
    assert 1.0 <= row["d_min"] < row["d_max"] <= 12.0
    assert row["d_max"] - row["d_min"] >= 1.0  # real adaptation, not flat

    # Latency is steered around the reference; spikes (flush storms)
    # exceed it and are brought back down.
    lat_times, lat_values = result.series["latency_ms"]
    assert len(lat_values) >= 5
    assert max(lat_values) > row["lref_ms"]
    assert min(lat_values) < 1.8 * row["lref_ms"]

    # Depth falls when latency spikes: shortly after the worst-latency
    # sample, D sits clearly below its own peak.
    d_times, d_values = result.series["depth"]
    spike_t = lat_times[lat_values.index(max(lat_values))]
    after = [d for t, d in zip(d_times, d_values) if t >= spike_t]
    assert after and min(after[: max(3, len(after) // 4)]) < max(d_values) - 0.5
