"""Figure 9: CDF of Facebook2009 job runtimes — standalone, interfered
by TeraGen, and isolated by IBIS SFQ(D2) at 32:1."""

from repro.experiments import fig9_facebook


def test_fig9_facebook(benchmark, report):
    result = benchmark.pedantic(fig9_facebook, rounds=1, iterations=1)
    report(result)

    standalone = result.find(case="standalone")
    interfered = result.find(case="interfered")
    isolated = result.find(case="sfq(d2)")

    # Paper: interference shifts the CDF far right (90th percentile
    # 120 s -> 230 s); SFQ(D2) pulls it back near standalone (138 s).
    assert interfered["p90"] > 1.4 * standalone["p90"]
    assert isolated["p90"] < 0.75 * interfered["p90"]
    assert isolated["mean_runtime"] < interfered["mean_runtime"]
    # Recovery: most of the interference gap is closed.
    gap_closed = (interfered["p90"] - isolated["p90"]) / (
        interfered["p90"] - standalone["p90"]
    )
    assert gap_closed > 0.5
