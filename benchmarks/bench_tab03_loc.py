"""Table 3: development cost (lines of code) of the IBIS components."""

from repro.experiments import tab3_loc


def test_tab3_loc(benchmark, report):
    result = benchmark.pedantic(tab3_loc, rounds=1, iterations=1)
    report(result)

    by_component = {r["component"]: r["loc"] for r in result.rows}
    # Paper's Table 3 shape: interposition is the largest component;
    # a sophisticated scheduler is ~a thousand lines or less; the total
    # stays in the few-thousands.
    assert by_component["interposition"] >= by_component["sfq(d) scheduler"]
    assert by_component["sfq(d2) scheduler"] > by_component["sfq(d) scheduler"]
    assert by_component["sfq(d2) scheduler"] < 1000
    assert 300 < by_component["total"] < 8000
    assert by_component["total"] == sum(
        v for k, v in by_component.items() if k != "total"
    )
