"""Figure 2: I/O demand profiles of TeraSort and WordCount run alone."""

from repro.experiments import fig2_io_profiles


def test_fig2_io_profiles(benchmark, report):
    result = benchmark.pedantic(fig2_io_profiles, rounds=1, iterations=1)
    report(result)

    ts = result.find(app="terasort")
    wc = result.find(app="wordcount")
    # TeraSort's I/O is far more intensive than WordCount's (Fig. 2a vs
    # 2b): compare sustained demand (bytes moved per second of runtime).
    def sustained(label):
        read = sum(result.series[f"{label}:read"][1])
        write = sum(result.series[f"{label}:write"][1])
        return (read + write) / max(1.0, result.find(app=label)["runtime"])

    assert sustained("terasort") > 2.0 * sustained("wordcount")
    assert ts["peak_write"] > 1.5 * wc["peak_write"]
    # WordCount writes intermediate data throughout (its write series is
    # non-trivial even though its final output is small).
    wc_writes = result.series["wordcount:write"][1]
    assert max(wc_writes) > 50.0  # MB/s cluster-wide
    # Series cover each job's runtime.
    assert result.series["terasort:read"][0][-1] >= ts["runtime"] - 2.0
