"""Figure 6a/6b: performance isolation of WordCount vs TeraGen (HDD):
native vs SFQ(D=12/8/4/2) vs SFQ(D2), 32:1 sharing ratio."""

from repro.experiments import fig6_isolation_hdd


def test_fig6_isolation_hdd(benchmark, report):
    result = benchmark.pedantic(fig6_isolation_hdd, rounds=1, iterations=1)
    report(result)

    native = result.find(case="native")
    d12 = result.find(case="sfq(d=12)")
    d4 = result.find(case="sfq(d=4)")
    d2s = result.find(case="sfq(d=2)")
    dyn = result.find(case="sfq(d2)")

    # Paper: native 107% >> SFQ(D) improving as D shrinks (86..13%),
    # SFQ(D2) best-or-near-best (8%).
    assert native["slowdown"] > 0.45
    assert d12["slowdown"] < native["slowdown"]
    assert d4["slowdown"] < d12["slowdown"]
    assert d2s["slowdown"] < 0.5 * native["slowdown"]
    assert dyn["slowdown"] < 0.35 * native["slowdown"]

    # Fig. 6b: throughput losses are bounded; the smallest static depth
    # pays the most (paper: -20%), the dynamic scheduler pays much less.
    assert d2s["throughput_loss"] < -0.08
    assert dyn["throughput_loss"] > d2s["throughput_loss"]
    assert dyn["throughput_loss"] > -0.12
