"""Figure 11: proportional (equal) slowdown for TeraSort vs TeraGen —
CPU-only tuning vs CPU + IBIS I/O tuning."""

from repro.experiments import fig11_proportional_slowdown


def test_fig11_proportional_slowdown(benchmark, report):
    result = benchmark.pedantic(
        fig11_proportional_slowdown, rounds=1, iterations=1
    )
    report(result)

    cpu_only = next(r for r in result.rows if r["case"].startswith("cpu only"))
    cpu_ibis = next(r for r in result.rows if r["case"].startswith("cpu+ibis"))

    # Paper: CPU-only gets 83%/61% at best; CPU+IBIS reaches an equal
    # 42%/42% — 30% better average.  Shape: adding the I/O knob both
    # closes the gap and lowers the average slowdown.
    assert cpu_ibis["gap"] < cpu_only["gap"]
    assert cpu_ibis["gap"] < 0.10
    assert cpu_ibis["avg"] < 0.9 * cpu_only["avg"]
