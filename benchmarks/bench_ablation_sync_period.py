"""Ablation (§5): broker coordination frequency vs fairness and cost.

"More frequent coordination reduces transient unfairness but increases
the overhead; and vice versa."  Sweeps the sync period on the skewed
two-scan scenario and reports the total-service ratio error and the
broker message volume."""

import dataclasses

from repro.config import GB, default_cluster
from repro.core import PolicySpec
from repro.cluster import BigDataCluster
from repro.experiments import ExperimentResult, controller_for
from repro.workloads import teravalidate


def run_sweep():
    config = default_cluster()
    result = ExperimentResult("ablation_sync_period")
    skew = [f"dn{i:02d}" for i in range(config.n_workers // 2)]
    ctrl = controller_for(config)

    def ratio_for(period):
        if period is None:
            policy = PolicySpec.sfqd2(ctrl, coordinated=False)
        else:
            policy = dataclasses.replace(
                PolicySpec.sfqd2(ctrl, coordinated=True), sync_period=period
            )
        cluster = BigDataCluster(config, policy)
        cluster.preload_input("/in/hot", 800 * GB, nodes=skew)
        cluster.preload_input("/in/wide", 800 * GB)
        cluster.submit(teravalidate(config, "/in/hot", name="scan-hot"),
                       io_weight=1.0, max_cores=48)
        cluster.submit(teravalidate(config, "/in/wide", name="scan-wide"),
                       io_weight=1.0, max_cores=48)
        cluster.run_for(8.0)
        svc = cluster.total_service_by_app()
        hot = next(v for k, v in svc.items() if "hot" in k)
        wide = next(v for k, v in svc.items() if "wide" in k)
        messages = cluster.broker.messages if cluster.broker else 0
        return wide / hot, messages

    ratio, msgs = ratio_for(None)
    result.row(period="off", service_ratio=ratio, ratio_error=abs(ratio - 1),
               broker_messages=msgs)
    for period in (4.0, 1.0, 0.25):
        ratio, msgs = ratio_for(period)
        result.row(period=period, service_ratio=ratio,
                   ratio_error=abs(ratio - 1), broker_messages=msgs)
    return result


def test_ablation_sync_period(benchmark, report):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(result)

    off = result.find(period="off")
    fast = result.find(period=0.25)
    slow = result.find(period=4.0)
    # Frequent coordination clearly beats none; a period as long as half
    # the window barely gets to act (the §5 granularity trade-off).
    assert fast["ratio_error"] < 0.6 * off["ratio_error"]
    assert slow["ratio_error"] <= off["ratio_error"] + 0.1
    assert fast["ratio_error"] <= slow["ratio_error"] + 0.1
    # ... and costs proportionally more messages (the §5 trade-off).
    assert fast["broker_messages"] > slow["broker_messages"]
    assert off["broker_messages"] == 0
