"""Figure 13: runtime overhead of IBIS on standalone WC/TG/TS."""

from repro.experiments import fig13_overhead


def test_fig13_overhead(benchmark, report):
    result = benchmark.pedantic(fig13_overhead, rounds=1, iterations=1)
    report(result)

    # Paper: 1% (WC), 2% (TG), 4% (TS).  Shape: interposition +
    # scheduling costs little when there is no contention to manage.
    for row in result.rows:
        assert row["overhead"] < 0.15, row
    wc = result.find(app="wordcount")
    assert wc["overhead"] < 0.05
