"""Figure 3: WordCount under contention on native Hadoop (HDD and SSD)."""

from repro.config import SSD_PROFILE, default_cluster
from repro.experiments import fig3_contention


def test_fig3_contention_hdd(benchmark, report):
    result = benchmark.pedantic(fig3_contention, rounds=1, iterations=1)
    report(result)
    tg = result.find(case="wc+teragen")["slowdown"]
    ts = result.find(case="wc+terasort")["slowdown"]
    tv = result.find(case="wc+teravalidate")["slowdown"]
    # Paper (HDD): TeraValidate 62.6%, TeraGen 107%, TeraSort 108%.
    # Shape: all three interfere substantially; the writers hurt most.
    assert tg > 0.30
    assert ts > 0.15
    assert tv > 0.05
    assert max(tg, ts) > tv


def test_fig3_contention_ssd(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig3_contention(default_cluster(storage=SSD_PROFILE)),
        rounds=1, iterations=1,
    )
    report(result)
    tg = result.find(case="wc+teragen")["slowdown"]
    # Paper (SSD): contention persists on faster storage (TeraGen 50%).
    assert tg > 0.20
