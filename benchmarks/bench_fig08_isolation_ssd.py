"""Figure 8a/8b: the isolation study on the SSD setup, with split
read/write reference latencies for the SFQ(D2) controller."""

from repro.experiments import fig8_isolation_ssd


def test_fig8_isolation_ssd(benchmark, report):
    result = benchmark.pedantic(fig8_isolation_ssd, rounds=1, iterations=1)
    report(result)

    native = result.find(case="native")
    dyn = result.find(case="sfq(d2)")

    # Paper: WC still interfered on SSD (50%); SFQ(D2) restores it to
    # (or beyond) standalone, with total throughput >= native's.
    assert native["slowdown"] > 0.25
    assert dyn["slowdown"] < 0.5 * native["slowdown"]
    assert dyn["throughput_mbs"] > 0.85 * native["throughput_mbs"]
    # The controller's references reflect flash read/write asymmetry.
    assert any("write" in n for n in result.notes)
